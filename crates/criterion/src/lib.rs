//! Offline vendored mini-criterion.
//!
//! The real `criterion` crate cannot be fetched in this build environment,
//! so this workspace-local crate provides the API surface the benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`], and [`BenchmarkId`].
//!
//! Timing model: each benchmark warms up briefly, then runs batches until
//! ~`measure_ms` of wall-clock time has elapsed and reports mean time per
//! iteration. No statistics, plots, or baselines — just honest numbers on
//! stderr-free stdout, enough to compare before/after locally.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (stable `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function: S, p: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), p),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed closure.
pub struct Bencher {
    measure: Duration,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean per-call duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up: one call (also primes caches/allocations)
        black_box(f());
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t0.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, measure: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        measure,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "bench  {name:<52} {:>12}/iter   ({} iters)",
        human(b.mean_ns),
        b.iters
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // keep local runs quick; CRITERION_MEASURE_MS overrides
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.measure, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<N: fmt::Display, F: FnOnce(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.criterion.measure, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, N: fmt::Display, F>(
        &mut self,
        id: N,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.measure,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
