//! Durability plane for the JITS engine: a write-ahead log with CRC-framed
//! records and monotonic LSNs, plus checkpoint segments carrying full
//! engine-state snapshots.
//!
//! The paper's statistics plane (QSS archive, StatHistory, sample cache)
//! is as much engine state as the tables themselves — losing it on restart
//! silently re-degrades every estimate back to cold defaults. This crate
//! makes both planes crash-consistent: the engine appends one logical
//! record per durably-mutating operation ([`WalRecord`]), periodically
//! folds everything into a checkpoint segment, and on open gets back the
//! newest intact checkpoint plus the post-checkpoint record tail to
//! replay ([`Wal::open`]).
//!
//! Recovery is **redo-only** and **bit-identical**: records re-execute
//! through the normal engine paths against the restored deterministic
//! substrate (clock, RNG, setting), so the recovered process is
//! indistinguishable — mutation epochs, archive contents, metric counters
//! — from one that never crashed. The crash matrix in the repository's
//! recovery tests asserts exactly that at every injected crash point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod log;
pub mod record;

pub use codec::{crc32, Decoder, Encoder};
pub use log::{Checkpoint, Wal, WalOpen, CKPT_KEEP, CKPT_MAGIC, WAL_FILE, WAL_MAGIC};
pub use record::WalRecord;
