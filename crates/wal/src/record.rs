//! Logical WAL records — one per durably-mutating engine operation.
//!
//! The log is **statement-level** (command logging): a record carries the
//! operation, not the page deltas, and recovery re-executes it through the
//! normal engine paths. That is only sound because the engine is
//! deterministic given its restored substrate (logical clock, RNG stream,
//! statistics setting, flags) — which the checkpoint carries and the
//! record set below completes. Two consequences worth stating:
//!
//! * **SELECT and EXPLAIN are logged.** In this engine a read is a write:
//!   every statement ticks the logical clock and can refine the QSS
//!   archive, touch LRU stamps, and record StatHistory entries. Replaying
//!   only DML would recover the tables but desync the statistics plane.
//! * **Failed statements are logged too.** A statement that errors after
//!   mutating state (a bind error after the clock tick, a partial
//!   multi-row insert) must replay so the mutation it did make recurs;
//!   the error itself is deterministic and reproduces identically, so
//!   replay executes and ignores statement-level errors.

use crate::codec::{Decoder, Encoder};
use jits_common::{JitsError, Result, Schema, Value};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Any SQL statement run through `execute` — SELECT included (reads
    /// mutate the statistics plane).
    Statement {
        /// The statement text, verbatim.
        sql: String,
    },
    /// An `explain` call: it compiles the query, which ticks the clock and
    /// can refine the archive, without executing it.
    Explain {
        /// The explained statement text.
        sql: String,
    },
    /// `create_table`.
    CreateTable {
        /// New table's name.
        name: String,
        /// New table's schema.
        schema: Schema,
    },
    /// `create_index`.
    CreateIndex {
        /// Table name.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// `set_primary_key`.
    SetPrimaryKey {
        /// Table name.
        table: String,
        /// Key column name.
        column: String,
    },
    /// `load_rows` (bulk load outside SQL).
    LoadRows {
        /// Table name.
        table: String,
        /// The loaded rows, verbatim.
        rows: Vec<Vec<Value>>,
    },
    /// `reset_udi` on one table (id = registration ordinal, which replay
    /// reproduces).
    ResetUdi {
        /// Target table id ordinal.
        table: u32,
    },
    /// `runstats_all` — full RUNSTATS over every table.
    RunstatsAll,
    /// `precollect_query_stats` — warm statistics for one query shape.
    Precollect {
        /// The query whose statistics were pre-collected.
        sql: String,
    },
    /// `migrate_statistics` (the periodic trigger inside `execute` is
    /// covered by the `Statement` record that caused it; this covers the
    /// explicit admin call).
    MigrateStats,
    /// `clear_statistics`.
    ClearStats,
    /// `set_setting` — the statistics configuration changes how every
    /// later statement collects, so replay under the wrong setting would
    /// diverge. The payload is the engine's own encoding of the setting
    /// (opaque at this layer).
    SetSetting {
        /// Engine-encoded setting bytes.
        payload: Vec<u8>,
    },
    /// An engine flag flip (`profiling`, `batch_executor`,
    /// `data_skipping`) — all three are decision-bearing (profiling feeds
    /// q-error feedback; the executor flags pick code paths that tick
    /// different observability counters).
    SetFlag {
        /// Flag name.
        name: String,
        /// New value.
        on: bool,
    },
}

impl WalRecord {
    /// Short kind label for observability and flight-recorder events.
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Statement { .. } => "statement",
            WalRecord::Explain { .. } => "explain",
            WalRecord::CreateTable { .. } => "create_table",
            WalRecord::CreateIndex { .. } => "create_index",
            WalRecord::SetPrimaryKey { .. } => "set_primary_key",
            WalRecord::LoadRows { .. } => "load_rows",
            WalRecord::ResetUdi { .. } => "reset_udi",
            WalRecord::RunstatsAll => "runstats_all",
            WalRecord::Precollect { .. } => "precollect",
            WalRecord::MigrateStats => "migrate_stats",
            WalRecord::ClearStats => "clear_stats",
            WalRecord::SetSetting { .. } => "set_setting",
            WalRecord::SetFlag { .. } => "set_flag",
        }
    }

    /// Encodes the record payload (tag byte + fields; no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::Statement { sql } => {
                e.put_u8(1);
                e.put_str(sql);
            }
            WalRecord::Explain { sql } => {
                e.put_u8(2);
                e.put_str(sql);
            }
            WalRecord::CreateTable { name, schema } => {
                e.put_u8(3);
                e.put_str(name);
                e.put_schema(schema);
            }
            WalRecord::CreateIndex { table, column } => {
                e.put_u8(4);
                e.put_str(table);
                e.put_str(column);
            }
            WalRecord::SetPrimaryKey { table, column } => {
                e.put_u8(5);
                e.put_str(table);
                e.put_str(column);
            }
            WalRecord::LoadRows { table, rows } => {
                e.put_u8(6);
                e.put_str(table);
                e.put_u32(rows.len() as u32);
                for row in rows {
                    e.put_u32(row.len() as u32);
                    for v in row {
                        e.put_value(v);
                    }
                }
            }
            WalRecord::ResetUdi { table } => {
                e.put_u8(7);
                e.put_u32(*table);
            }
            WalRecord::RunstatsAll => e.put_u8(8),
            WalRecord::Precollect { sql } => {
                e.put_u8(9);
                e.put_str(sql);
            }
            WalRecord::MigrateStats => e.put_u8(10),
            WalRecord::ClearStats => e.put_u8(11),
            WalRecord::SetSetting { payload } => {
                e.put_u8(12);
                e.put_bytes(payload);
            }
            WalRecord::SetFlag { name, on } => {
                e.put_u8(13);
                e.put_str(name);
                e.put_bool(*on);
            }
        }
        e.into_bytes()
    }

    /// Decodes a record payload. The payload has already passed its CRC, so
    /// any failure here is real corruption (or a format version mismatch),
    /// reported as [`JitsError::Recovery`] — never a panic.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut d = Decoder::new(payload);
        let rec = match d.u8()? {
            1 => WalRecord::Statement { sql: d.str()? },
            2 => WalRecord::Explain { sql: d.str()? },
            3 => WalRecord::CreateTable {
                name: d.str()?,
                schema: d.schema()?,
            },
            4 => WalRecord::CreateIndex {
                table: d.str()?,
                column: d.str()?,
            },
            5 => WalRecord::SetPrimaryKey {
                table: d.str()?,
                column: d.str()?,
            },
            6 => {
                let table = d.str()?;
                let nrows = d.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(1 << 16));
                for _ in 0..nrows {
                    let ncols = d.u32()? as usize;
                    let mut row = Vec::with_capacity(ncols.min(1024));
                    for _ in 0..ncols {
                        row.push(d.value()?);
                    }
                    rows.push(row);
                }
                WalRecord::LoadRows { table, rows }
            }
            7 => WalRecord::ResetUdi { table: d.u32()? },
            8 => WalRecord::RunstatsAll,
            9 => WalRecord::Precollect { sql: d.str()? },
            10 => WalRecord::MigrateStats,
            11 => WalRecord::ClearStats,
            12 => WalRecord::SetSetting {
                payload: d.bytes()?,
            },
            13 => WalRecord::SetFlag {
                name: d.str()?,
                on: d.bool()?,
            },
            t => {
                return Err(JitsError::Recovery(format!(
                    "wal record: unknown tag {t} (format version mismatch?)"
                )))
            }
        };
        d.finish()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::DataType;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Statement {
                sql: "SELECT * FROM car WHERE year > 2000".into(),
            },
            WalRecord::Explain {
                sql: "SELECT 1".into(),
            },
            WalRecord::CreateTable {
                name: "car".into(),
                schema: Schema::from_pairs(&[("id", DataType::Int), ("make", DataType::Str)]),
            },
            WalRecord::CreateIndex {
                table: "car".into(),
                column: "make".into(),
            },
            WalRecord::SetPrimaryKey {
                table: "car".into(),
                column: "id".into(),
            },
            WalRecord::LoadRows {
                table: "car".into(),
                rows: vec![
                    vec![Value::Int(1), Value::str("Toyota")],
                    vec![Value::Int(2), Value::Null],
                ],
            },
            WalRecord::ResetUdi { table: 3 },
            WalRecord::RunstatsAll,
            WalRecord::Precollect {
                sql: "SELECT * FROM car".into(),
            },
            WalRecord::MigrateStats,
            WalRecord::ClearStats,
            WalRecord::SetSetting {
                payload: vec![9, 8, 7],
            },
            WalRecord::SetFlag {
                name: "profiling".into(),
                on: true,
            },
        ]
    }

    #[test]
    fn every_record_roundtrips() {
        for rec in samples() {
            let bytes = rec.encode();
            let back = WalRecord::decode(&bytes).unwrap();
            assert_eq!(back, rec, "{}", rec.kind());
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_recovery_errors() {
        assert!(matches!(
            WalRecord::decode(&[99]),
            Err(JitsError::Recovery(_))
        ));
        let mut bytes = WalRecord::RunstatsAll.encode();
        bytes.push(0);
        assert!(matches!(
            WalRecord::decode(&bytes),
            Err(JitsError::Recovery(_))
        ));
        assert!(matches!(
            WalRecord::decode(&[]),
            Err(JitsError::Recovery(_))
        ));
    }
}
