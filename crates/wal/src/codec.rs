//! Byte codec shared by WAL records and checkpoint segments.
//!
//! Everything is little-endian, length-prefixed, and tag-dispatched — a
//! deliberately boring format. Floats travel as IEEE-754 bit patterns
//! ([`f64::to_bits`]), never as text, because the whole durability plane
//! promises **bit-identical** recovery and a decimal round-trip would
//! quietly break it.
//!
//! Decoding never panics: every read is bounds-checked and every tag
//! validated, returning [`JitsError::Recovery`] on anything malformed.
//! This is what lets recovery treat "CRC valid but undecodable" as typed
//! corruption instead of a crash.

use jits_common::{ColumnDef, DataType, JitsError, Result, Schema, Value};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise and
/// dependency-free. Torn-write detection only needs a well-mixed checksum,
/// not speed: records are small and appends are fsync-bound anyway.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bit pattern (exact, including NaN payloads and -0.0).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Boolean as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Tagged [`Value`]: 0 NULL, 1 Int, 2 Float (bits), 3 Str.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.put_u64(*i as u64);
            }
            Value::Float(f) => {
                self.put_u8(2);
                self.put_f64(*f);
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
        }
    }

    /// Tagged [`DataType`]: 0 Int, 1 Float, 2 Str.
    pub fn put_dtype(&mut self, t: DataType) {
        self.put_u8(match t {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
        });
    }

    /// A [`Schema`] as a column-count-prefixed list of (name, type).
    pub fn put_schema(&mut self, s: &Schema) {
        self.put_u32(s.len() as u32);
        for c in s.columns() {
            self.put_str(&c.name);
            self.put_dtype(c.dtype);
        }
    }
}

/// Bounds-checked reader over an encoded byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> JitsError {
    JitsError::Recovery(format!("decode: truncated {what}"))
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — a CRC-valid payload with
    /// trailing garbage is corruption, not a successful decode.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(JitsError::Recovery(format!(
                "decode: {} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Boolean (strict: only 0 and 1 decode).
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(JitsError::Recovery(format!("decode: bad bool byte {other}"))),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.take(n, "string")?;
        String::from_utf8(b.to_vec())
            .map_err(|_| JitsError::Recovery("decode: invalid UTF-8 in string".into()))
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n, "bytes")?.to_vec())
    }

    /// Tagged [`Value`].
    pub fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(self.f64()?)),
            3 => Ok(Value::Str(self.str()?.into())),
            t => Err(JitsError::Recovery(format!("decode: bad value tag {t}"))),
        }
    }

    /// Tagged [`DataType`].
    pub fn dtype(&mut self) -> Result<DataType> {
        match self.u8()? {
            0 => Ok(DataType::Int),
            1 => Ok(DataType::Float),
            2 => Ok(DataType::Str),
            t => Err(JitsError::Recovery(format!("decode: bad dtype tag {t}"))),
        }
    }

    /// A [`Schema`].
    pub fn schema(&mut self) -> Result<Schema> {
        let n = self.u32()? as usize;
        let mut cols = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = self.str()?;
            let dtype = self.dtype()?;
            cols.push(ColumnDef::new(name, dtype));
        }
        Schema::new(cols).map_err(|e| JitsError::Recovery(format!("decode: bad schema: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_f64(-0.0);
        e.put_bool(true);
        e.put_str("héllo");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn value_and_schema_roundtrip() {
        let vals = [
            Value::Null,
            Value::Int(-5),
            Value::Float(f64::NAN),
            Value::str("x"),
        ];
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]);
        let mut e = Encoder::new();
        for v in &vals {
            e.put_value(v);
        }
        e.put_schema(&schema);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        for v in &vals {
            let got = d.value().unwrap();
            // NaN != NaN, so compare bit patterns for floats
            match (v, &got) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(*v, got),
            }
        }
        assert_eq!(d.schema().unwrap(), schema);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(d.u32(), Err(JitsError::Recovery(_))));
        let mut d = Decoder::new(&[9]);
        assert!(matches!(d.value(), Err(JitsError::Recovery(_))));
        let mut d = Decoder::new(&[2]);
        assert!(matches!(d.bool(), Err(JitsError::Recovery(_))));
        // a string whose length prefix overruns the buffer
        let mut e = Encoder::new();
        e.put_u32(100);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.str(), Err(JitsError::Recovery(_))));
        // trailing bytes fail finish()
        let mut d = Decoder::new(&[0, 0]);
        d.u8().unwrap();
        assert!(matches!(d.finish(), Err(JitsError::Recovery(_))));
    }
}
