//! The append-only log and its checkpoint segments.
//!
//! On-disk layout inside the data directory:
//!
//! ```text
//! wal.log            magic "JITSWAL1", then records:
//!                    [len: u32][crc32: u32][lsn: u64][payload: len bytes]
//!                    crc over lsn bytes ++ payload
//! ckpt-<lsn>.seg     magic "JITSCKP1", then
//!                    [lsn: u64][crc32: u32][len: u64][payload: len bytes]
//!                    crc over lsn bytes ++ payload
//! *.tmp              in-flight checkpoint writes (debris after a crash;
//!                    removed on open)
//! ```
//!
//! **Checkpoint protocol** (fuzzy only in the sense that it runs between
//! statements; the engine holds its state locks while producing the
//! payload): write `ckpt-<lsn>.seg.tmp`, fsync, atomically rename to
//! `ckpt-<lsn>.seg`, fsync the directory, then truncate `wal.log` back to
//! its magic. A crash between the rename and the truncate leaves records
//! with `lsn <= checkpoint lsn` in the log; recovery skips them. The two
//! newest segments are kept so a checkpoint torn *after* the rename (a
//! corrupt newest segment) still falls back to the previous one.
//!
//! **Torn-tail scan**: on open, records are read until the first frame
//! whose header overruns the file or whose CRC fails; everything from
//! that offset on is physically truncated (a crash mid-append is expected
//! state, not corruption). A frame whose CRC passes but whose payload
//! does not decode is the opposite — real corruption — and surfaces as
//! [`JitsError::Recovery`].
//!
//! **Durability contract (group commit)**: appends `write` their frame to
//! the OS (page cache) but do not fsync; the log is synced at every
//! checkpoint, on drop, and after recovery truncations. A power cut
//! therefore loses at most the statements since the last sync — exactly
//! the window the `wal.after_append_before_fsync` fault injects — and the
//! torn-tail scan turns any half-written frame back into that clean
//! prefix. Per-statement fsync costs more than the entire statistics
//! plane (measured >15% end-to-end; `wal_overhead` gates the relaxed
//! policy under 5%), which is why group commit is the default and only
//! policy here.
//!
//! **Poisoning**: any append or checkpoint failure (injected or real)
//! poisons the handle; every later durable operation fails fast with
//! [`JitsError::Recovery`]. This models the real-world rule that a
//! process which cannot write its log must stop accepting writes — the
//! caller reopens (recovering to the last durable state) to continue.

use crate::record::WalRecord;
use jits_common::fault::{
    FaultPlane, FP_WAL_AFTER_APPEND, FP_WAL_BEFORE_APPEND, FP_WAL_MID_CHECKPOINT,
    FP_WAL_TORN_TAIL,
};
use jits_common::{JitsError, Result};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of `wal.log`.
pub const WAL_MAGIC: &[u8; 8] = b"JITSWAL1";
/// Magic prefix of checkpoint segments.
pub const CKPT_MAGIC: &[u8; 8] = b"JITSCKP1";
/// Log file name inside the data directory.
pub const WAL_FILE: &str = "wal.log";
/// How many checkpoint segments are retained (newest first).
pub const CKPT_KEEP: usize = 2;

/// Per-record framing overhead: len (4) + crc (4) + lsn (8).
const FRAME_HEADER: usize = 16;

fn io_err(what: &str, e: std::io::Error) -> JitsError {
    JitsError::Recovery(format!("wal: {what}: {e}"))
}

/// The newest intact checkpoint found on open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// LSN the snapshot covers (every record with `lsn <=` this is
    /// reflected in the payload).
    pub lsn: u64,
    /// Engine-encoded state snapshot (opaque at this layer).
    pub payload: Vec<u8>,
}

/// Result of [`Wal::open`]: the live handle plus everything recovery needs.
#[derive(Debug)]
pub struct WalOpen {
    /// The opened log, positioned for appending.
    pub wal: Wal,
    /// Newest intact checkpoint, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Records to replay on top of the checkpoint, in LSN order (records
    /// the checkpoint already covers are filtered out).
    pub records: Vec<(u64, WalRecord)>,
    /// Bytes of torn tail physically truncated from the log.
    pub torn_bytes: u64,
    /// Checkpoint segments that failed validation and were discarded.
    pub corrupt_checkpoints: u32,
    /// `.tmp` debris files removed.
    pub tmp_removed: u32,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    /// LSN the next append will carry (LSNs start at 1).
    next_lsn: u64,
    /// Records appended since the last durable checkpoint (counts records
    /// recovered from the log tail on open).
    since_checkpoint: u64,
    /// Current physical length of `wal.log` — the rollback point for the
    /// lost-unsynced-tail fault.
    log_len: u64,
    /// Lifetime bytes appended through this handle (metrics).
    bytes_appended: u64,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, scanning checkpoint
    /// segments and the log tail. See the module docs for the recovery
    /// rules applied here.
    pub fn open(dir: &Path) -> Result<WalOpen> {
        fs::create_dir_all(dir).map_err(|e| io_err("create data dir", e))?;

        // 1. Sweep in-flight checkpoint debris.
        let mut tmp_removed = 0u32;
        for entry in fs::read_dir(dir).map_err(|e| io_err("read data dir", e))? {
            let entry = entry.map_err(|e| io_err("read data dir entry", e))?;
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".tmp") {
                fs::remove_file(entry.path()).map_err(|e| io_err("remove tmp debris", e))?;
                tmp_removed += 1;
            }
        }

        // 2. Load the newest intact checkpoint, discarding corrupt ones.
        let mut seg_lsns: Vec<u64> = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| io_err("read data dir", e))? {
            let entry = entry.map_err(|e| io_err("read data dir entry", e))?;
            if let Some(lsn) = parse_segment_name(&entry.file_name().to_string_lossy()) {
                seg_lsns.push(lsn);
            }
        }
        seg_lsns.sort_unstable_by(|a, b| b.cmp(a));
        let mut checkpoint = None;
        let mut corrupt_checkpoints = 0u32;
        for lsn in seg_lsns {
            let path = dir.join(segment_name(lsn));
            match read_segment(&path, lsn) {
                Ok(payload) => {
                    checkpoint = Some(Checkpoint { lsn, payload });
                    break;
                }
                Err(_) => {
                    corrupt_checkpoints += 1;
                    fs::remove_file(&path).map_err(|e| io_err("remove corrupt segment", e))?;
                }
            }
        }
        let ckpt_lsn = checkpoint.as_ref().map(|c| c.lsn).unwrap_or(0);

        // 3. Open the log, scan records, truncate any torn tail.
        let log_path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)
            .map_err(|e| io_err("open wal.log", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read wal.log", e))?;

        let mut torn_bytes = 0u64;
        let mut records: Vec<(u64, WalRecord)> = Vec::new();
        let keep: usize;
        if bytes.len() < WAL_MAGIC.len() {
            // A prefix cut inside the magic itself: an empty log.
            torn_bytes = bytes.len() as u64;
            keep = 0;
            file.set_len(0).map_err(|e| io_err("truncate torn magic", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek wal.log", e))?;
            file.write_all(WAL_MAGIC)
                .map_err(|e| io_err("write magic", e))?;
            file.sync_data().map_err(|e| io_err("fsync magic", e))?;
        } else if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(JitsError::Recovery(format!(
                "wal.log has bad magic {:02x?} (not a JITS wal)",
                &bytes[..WAL_MAGIC.len()]
            )));
        } else {
            let mut pos = WAL_MAGIC.len();
            let mut last_lsn = 0u64;
            loop {
                let remaining = bytes.len() - pos;
                if remaining == 0 {
                    break;
                }
                if remaining < FRAME_HEADER {
                    torn_bytes = remaining as u64;
                    break;
                }
                let len =
                    u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
                if remaining - FRAME_HEADER < len {
                    torn_bytes = remaining as u64;
                    break;
                }
                let lsn_and_payload = &bytes[pos + 8..pos + FRAME_HEADER + len];
                if crate::codec::crc32(lsn_and_payload) != crc {
                    torn_bytes = remaining as u64;
                    break;
                }
                let lsn = u64::from_le_bytes(lsn_and_payload[..8].try_into().expect("8 bytes"));
                if lsn <= last_lsn {
                    return Err(JitsError::Recovery(format!(
                        "wal.log LSNs not strictly increasing ({last_lsn} then {lsn})"
                    )));
                }
                // CRC passed: a decode failure now is corruption, not a torn
                // tail, and must not be silently dropped.
                let rec = WalRecord::decode(&lsn_and_payload[8..])?;
                last_lsn = lsn;
                if lsn > ckpt_lsn {
                    records.push((lsn, rec));
                }
                pos += FRAME_HEADER + len;
            }
            keep = pos;
            if torn_bytes > 0 {
                file.set_len(keep as u64)
                    .map_err(|e| io_err("truncate torn tail", e))?;
                file.sync_data().map_err(|e| io_err("fsync truncation", e))?;
            }
            last_lsn = last_lsn.max(ckpt_lsn);
            let wal = Wal {
                dir: dir.to_path_buf(),
                file: reopen_at_end(file, &log_path)?,
                next_lsn: last_lsn + 1,
                since_checkpoint: records.len() as u64,
                log_len: keep as u64,
                bytes_appended: 0,
                poisoned: false,
            };
            return Ok(WalOpen {
                wal,
                checkpoint,
                records,
                torn_bytes,
                corrupt_checkpoints,
                tmp_removed,
            });
        }
        // Fresh (or magic-torn) log.
        let _ = keep;
        let wal = Wal {
            dir: dir.to_path_buf(),
            file: reopen_at_end(file, &log_path)?,
            next_lsn: ckpt_lsn + 1,
            since_checkpoint: 0,
            log_len: WAL_MAGIC.len() as u64,
            bytes_appended: 0,
            poisoned: false,
        };
        Ok(WalOpen {
            wal,
            checkpoint,
            records,
            torn_bytes,
            corrupt_checkpoints,
            tmp_removed,
        })
    }

    /// The data directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN the next append will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Records appended since the last durable checkpoint.
    pub fn since_checkpoint(&self) -> u64 {
        self.since_checkpoint
    }

    /// Lifetime bytes appended through this handle.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// True once a durable operation has failed; all further ones fail
    /// fast until the log is reopened.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(JitsError::Recovery(
                "wal is poisoned by an earlier append/checkpoint failure; \
                 reopen to recover"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Appends one record (group commit: written to the OS now, fsynced at
    /// the next checkpoint / drop — see the module docs), returning its
    /// LSN.
    ///
    /// The three WAL crash points fire here, keyed by the statement clock
    /// so crash schedules are statement-addressable. Each leaves the disk
    /// in the state a real crash at that instant would: nothing
    /// (`before_append`), nothing durable (`after_append_before_fsync` —
    /// the unsynced tail is rolled back, as a power cut would), or a torn
    /// prefix of the frame (`torn_tail`). All three poison the handle.
    pub fn append(&mut self, rec: &WalRecord, fault: &FaultPlane, clock: u64) -> Result<u64> {
        self.check_poisoned()?;
        if fault.fires(FP_WAL_BEFORE_APPEND, clock, 0) {
            self.poisoned = true;
            return Err(JitsError::Recovery(format!(
                "injected crash at {FP_WAL_BEFORE_APPEND} (clock {clock})"
            )));
        }
        let lsn = self.next_lsn;
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut covered = Vec::with_capacity(8 + payload.len());
        covered.extend_from_slice(&lsn.to_le_bytes());
        covered.extend_from_slice(&payload);
        frame.extend_from_slice(&crate::codec::crc32(&covered).to_le_bytes());
        frame.extend_from_slice(&covered);

        if fault.fires(FP_WAL_TORN_TAIL, clock, 0) {
            // Crash mid-write: half the frame reaches the disk.
            let cut = frame.len() / 2;
            self.file
                .write_all(&frame[..cut])
                .map_err(|e| io_err("torn write", e))?;
            self.file.sync_data().map_err(|e| io_err("torn fsync", e))?;
            self.poisoned = true;
            return Err(JitsError::Recovery(format!(
                "injected crash at {FP_WAL_TORN_TAIL} (clock {clock})"
            )));
        }
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append record", e))?;
        if fault.fires(FP_WAL_AFTER_APPEND, clock, 0) {
            // Crash before fsync: the OS never persisted the tail. Model
            // it by rolling the file back to its pre-append length.
            self.file
                .set_len(self.log_len)
                .map_err(|e| io_err("rollback unsynced tail", e))?;
            self.file
                .seek(SeekFrom::Start(self.log_len))
                .map_err(|e| io_err("seek after rollback", e))?;
            self.file
                .sync_data()
                .map_err(|e| io_err("fsync rollback", e))?;
            self.poisoned = true;
            return Err(JitsError::Recovery(format!(
                "injected crash at {FP_WAL_AFTER_APPEND} (clock {clock})"
            )));
        }
        self.log_len += frame.len() as u64;
        self.bytes_appended += frame.len() as u64;
        self.next_lsn += 1;
        self.since_checkpoint += 1;
        Ok(lsn)
    }

    /// Writes a checkpoint segment covering every appended record, then
    /// truncates the log. Returns the checkpoint LSN.
    pub fn checkpoint(&mut self, payload: &[u8], fault: &FaultPlane, clock: u64) -> Result<u64> {
        self.check_poisoned()?;
        let lsn = self.next_lsn - 1;
        let final_path = self.dir.join(segment_name(lsn));
        let tmp_path = self.dir.join(format!("{}.tmp", segment_name(lsn)));

        let mut seg = Vec::with_capacity(CKPT_MAGIC.len() + 20 + payload.len());
        seg.extend_from_slice(CKPT_MAGIC);
        seg.extend_from_slice(&lsn.to_le_bytes());
        let mut covered = Vec::with_capacity(8 + payload.len());
        covered.extend_from_slice(&lsn.to_le_bytes());
        covered.extend_from_slice(payload);
        seg.extend_from_slice(&crate::codec::crc32(&covered).to_le_bytes());
        seg.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        seg.extend_from_slice(payload);

        let mut tmp = File::create(&tmp_path).map_err(|e| io_err("create ckpt tmp", e))?;
        if fault.fires(FP_WAL_MID_CHECKPOINT, clock, 0) {
            // Crash mid-segment-write: partial tmp file left as debris.
            tmp.write_all(&seg[..seg.len() / 2])
                .map_err(|e| io_err("torn ckpt write", e))?;
            tmp.sync_data().map_err(|e| io_err("torn ckpt fsync", e))?;
            self.poisoned = true;
            return Err(JitsError::Recovery(format!(
                "injected crash at {FP_WAL_MID_CHECKPOINT} (clock {clock})"
            )));
        }
        tmp.write_all(&seg).map_err(|e| io_err("write ckpt", e))?;
        tmp.sync_data().map_err(|e| io_err("fsync ckpt", e))?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err("rename ckpt", e))?;
        // Make the rename durable before the log is truncated, or a crash
        // could lose both the segment and the records it covers.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }

        self.file
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(|e| io_err("truncate log after ckpt", e))?;
        self.file
            .seek(SeekFrom::Start(WAL_MAGIC.len() as u64))
            .map_err(|e| io_err("seek after ckpt", e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync truncation", e))?;
        self.log_len = WAL_MAGIC.len() as u64;
        self.since_checkpoint = 0;
        self.prune_segments(lsn)?;
        Ok(lsn)
    }

    /// Removes checkpoint segments older than the [`CKPT_KEEP`] newest.
    fn prune_segments(&self, _newest: u64) -> Result<()> {
        let mut lsns: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(|e| io_err("read data dir", e))? {
            let entry = entry.map_err(|e| io_err("read data dir entry", e))?;
            if let Some(lsn) = parse_segment_name(&entry.file_name().to_string_lossy()) {
                lsns.push(lsn);
            }
        }
        lsns.sort_unstable_by(|a, b| b.cmp(a));
        for lsn in lsns.into_iter().skip(CKPT_KEEP) {
            fs::remove_file(self.dir.join(segment_name(lsn)))
                .map_err(|e| io_err("prune old segment", e))?;
        }
        Ok(())
    }
}

impl Drop for Wal {
    /// Clean shutdown syncs the group-committed tail; a crash instead
    /// loses at most the records since the last sync (see module docs).
    fn drop(&mut self) {
        let _ = self.file.sync_data();
    }
}

fn segment_name(lsn: u64) -> String {
    format!("ckpt-{lsn:020}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Re-opens `file` positioned at its (possibly truncated) end for appends.
fn reopen_at_end(mut file: File, _path: &Path) -> Result<File> {
    file.seek(SeekFrom::End(0))
        .map_err(|e| io_err("seek to log end", e))?;
    Ok(file)
}

/// Reads and validates one checkpoint segment.
fn read_segment(path: &Path, expect_lsn: u64) -> Result<Vec<u8>> {
    let bytes = fs::read(path).map_err(|e| io_err("read ckpt segment", e))?;
    let header = CKPT_MAGIC.len() + 8 + 4 + 8;
    if bytes.len() < header || &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(JitsError::Recovery("ckpt segment: bad header".into()));
    }
    let mut pos = CKPT_MAGIC.len();
    let lsn = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
    pos += 8;
    let crc = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
    pos += 4;
    let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes")) as usize;
    pos += 8;
    if lsn != expect_lsn || bytes.len() - pos != len {
        return Err(JitsError::Recovery("ckpt segment: bad lsn or length".into()));
    }
    let mut covered = Vec::with_capacity(8 + len);
    covered.extend_from_slice(&lsn.to_le_bytes());
    covered.extend_from_slice(&bytes[pos..]);
    if crate::codec::crc32(&covered) != crc {
        return Err(JitsError::Recovery("ckpt segment: CRC mismatch".into()));
    }
    Ok(bytes[pos..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::TestDir;

    fn rec(sql: &str) -> WalRecord {
        WalRecord::Statement { sql: sql.into() }
    }

    fn none() -> FaultPlane {
        FaultPlane::disabled()
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = TestDir::new("wal-append-reopen");
        let mut w = Wal::open(dir.path()).unwrap().wal;
        assert_eq!(w.append(&rec("a"), &none(), 1).unwrap(), 1);
        assert_eq!(w.append(&rec("b"), &none(), 2).unwrap(), 2);
        drop(w);
        let o = Wal::open(dir.path()).unwrap();
        assert!(o.checkpoint.is_none());
        assert_eq!(o.torn_bytes, 0);
        let sqls: Vec<&str> = o
            .records
            .iter()
            .map(|(_, r)| match r {
                WalRecord::Statement { sql } => sql.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sqls, vec!["a", "b"]);
        assert_eq!(o.wal.next_lsn(), 3);
        assert_eq!(o.wal.since_checkpoint(), 2);
    }

    #[test]
    fn checkpoint_truncates_and_survives_reopen() {
        let dir = TestDir::new("wal-ckpt");
        let mut w = Wal::open(dir.path()).unwrap().wal;
        w.append(&rec("a"), &none(), 1).unwrap();
        w.append(&rec("b"), &none(), 2).unwrap();
        let lsn = w.checkpoint(b"state-at-2", &none(), 3).unwrap();
        assert_eq!(lsn, 2);
        assert_eq!(w.since_checkpoint(), 0);
        w.append(&rec("c"), &none(), 4).unwrap();
        drop(w);
        let o = Wal::open(dir.path()).unwrap();
        let c = o.checkpoint.unwrap();
        assert_eq!(c.lsn, 2);
        assert_eq!(c.payload, b"state-at-2");
        assert_eq!(o.records.len(), 1, "only the post-checkpoint record");
        assert_eq!(o.records[0].0, 3);
        assert_eq!(o.wal.next_lsn(), 4);
    }

    #[test]
    fn only_two_segments_are_kept_and_corrupt_newest_falls_back() {
        let dir = TestDir::new("wal-seg-retention");
        let mut w = Wal::open(dir.path()).unwrap().wal;
        for i in 0..4u64 {
            w.append(&rec(&format!("s{i}")), &none(), i).unwrap();
            w.checkpoint(format!("state-{i}").as_bytes(), &none(), 100 + i)
                .unwrap();
        }
        let segs: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| {
                let n = e.unwrap().file_name().to_string_lossy().into_owned();
                n.ends_with(".seg").then_some(n)
            })
            .collect();
        assert_eq!(segs.len(), CKPT_KEEP);
        drop(w);
        // corrupt the newest segment: recovery must fall back to the older
        let newest = dir.path().join(segment_name(4));
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, bytes).unwrap();
        let o = Wal::open(dir.path()).unwrap();
        assert_eq!(o.corrupt_checkpoints, 1);
        assert_eq!(o.checkpoint.unwrap().payload, b"state-2");
    }

    #[test]
    fn torn_tail_is_truncated_to_last_whole_record() {
        let dir = TestDir::new("wal-torn");
        let mut w = Wal::open(dir.path()).unwrap().wal;
        w.append(&rec("whole"), &none(), 1).unwrap();
        w.append(&rec("torn-away"), &none(), 2).unwrap();
        drop(w);
        let log = dir.path().join(WAL_FILE);
        let bytes = std::fs::read(&log).unwrap();
        // cut 3 bytes into the second record's frame
        let first_frame_end = {
            let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
            8 + FRAME_HEADER + len
        };
        std::fs::write(&log, &bytes[..first_frame_end + 3]).unwrap();
        let o = Wal::open(dir.path()).unwrap();
        assert_eq!(o.torn_bytes, 3);
        assert_eq!(o.records.len(), 1);
        assert_eq!(o.wal.next_lsn(), 2);
        // the tail is physically gone
        assert_eq!(
            std::fs::metadata(&log).unwrap().len(),
            first_frame_end as u64
        );
    }

    #[test]
    fn injected_crashes_leave_recoverable_state_and_poison() {
        for (point, spec) in [
            (FP_WAL_BEFORE_APPEND, "wal.before_append=once:5"),
            (FP_WAL_AFTER_APPEND, "wal.after_append_before_fsync=once:5"),
            (FP_WAL_TORN_TAIL, "wal.torn_tail=once:5"),
        ] {
            let dir = TestDir::new(&format!("wal-crash-{point}"));
            let fault = FaultPlane::from_spec(1, spec).unwrap();
            let mut w = Wal::open(dir.path()).unwrap().wal;
            w.append(&rec("ok"), &fault, 4).unwrap();
            let err = w.append(&rec("doomed"), &fault, 5).unwrap_err();
            assert!(matches!(err, JitsError::Recovery(_)), "{point}");
            assert!(w.is_poisoned());
            // poisoned: even a clean clock fails fast
            assert!(w.append(&rec("after"), &fault, 6).is_err());
            assert!(w.checkpoint(b"x", &fault, 7).is_err());
            drop(w);
            // reopen recovers exactly the pre-crash durable state
            let o = Wal::open(dir.path()).unwrap();
            assert_eq!(o.records.len(), 1, "{point}: only the synced record");
            assert_eq!(o.records[0].0, 1);
            assert_eq!(o.wal.next_lsn(), 2, "{point}");
            if point == FP_WAL_TORN_TAIL {
                assert!(o.torn_bytes > 0, "torn tail must be found and cut");
            } else {
                assert_eq!(o.torn_bytes, 0, "{point}");
            }
        }
    }

    #[test]
    fn mid_checkpoint_crash_keeps_previous_checkpoint_and_log() {
        let dir = TestDir::new("wal-crash-mid-ckpt");
        let fault = FaultPlane::from_spec(1, "wal.mid_checkpoint=once:9").unwrap();
        let mut w = Wal::open(dir.path()).unwrap().wal;
        w.append(&rec("a"), &fault, 1).unwrap();
        w.checkpoint(b"good", &fault, 2).unwrap();
        w.append(&rec("b"), &fault, 3).unwrap();
        assert!(w.checkpoint(b"doomed", &fault, 9).is_err());
        assert!(w.is_poisoned());
        drop(w);
        let o = Wal::open(dir.path()).unwrap();
        assert_eq!(o.tmp_removed, 1, "partial tmp segment swept");
        assert_eq!(o.checkpoint.unwrap().payload, b"good");
        assert_eq!(o.records.len(), 1, "post-checkpoint record survives");
        assert_eq!(o.records[0].0, 2);
    }

    #[test]
    fn crash_between_rename_and_truncate_skips_covered_records() {
        // Simulate: checkpoint segment landed, but the log truncate never
        // happened. Recovery must not replay records the checkpoint covers.
        let dir = TestDir::new("wal-ckpt-no-truncate");
        let mut w = Wal::open(dir.path()).unwrap().wal;
        w.append(&rec("a"), &none(), 1).unwrap();
        w.append(&rec("b"), &none(), 2).unwrap();
        // write the segment by hand, exactly as checkpoint() would
        let mut covered = Vec::new();
        covered.extend_from_slice(&2u64.to_le_bytes());
        covered.extend_from_slice(b"state");
        let mut seg = Vec::new();
        seg.extend_from_slice(CKPT_MAGIC);
        seg.extend_from_slice(&2u64.to_le_bytes());
        seg.extend_from_slice(&crate::codec::crc32(&covered).to_le_bytes());
        seg.extend_from_slice(&(5u64).to_le_bytes());
        seg.extend_from_slice(b"state");
        std::fs::write(dir.path().join(segment_name(2)), seg).unwrap();
        drop(w);
        let o = Wal::open(dir.path()).unwrap();
        assert_eq!(o.checkpoint.unwrap().lsn, 2);
        assert!(o.records.is_empty(), "covered records are skipped");
        assert_eq!(o.wal.next_lsn(), 3);
    }

    #[test]
    fn empty_and_magic_torn_logs_open_clean() {
        let dir = TestDir::new("wal-fresh");
        let o = Wal::open(dir.path()).unwrap();
        assert!(o.records.is_empty());
        assert_eq!(o.wal.next_lsn(), 1);
        drop(o);
        // cut the log inside the magic
        std::fs::write(dir.path().join(WAL_FILE), b"JIT").unwrap();
        let o = Wal::open(dir.path()).unwrap();
        assert_eq!(o.torn_bytes, 3);
        assert!(o.records.is_empty());
    }

    #[test]
    fn foreign_file_is_a_typed_error() {
        let dir = TestDir::new("wal-foreign");
        std::fs::write(dir.path().join(WAL_FILE), b"NOTAWAL!extra").unwrap();
        let err = Wal::open(dir.path()).unwrap_err();
        assert!(matches!(err, JitsError::Recovery(_)));
    }
}
