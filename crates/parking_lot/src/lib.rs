//! Offline vendored `parking_lot` facade.
//!
//! The real `parking_lot` crate cannot be fetched in this build environment,
//! so this workspace-local crate provides its lock API over `std::sync`
//! primitives. Semantics match what callers rely on:
//!
//! - `lock()` / `read()` / `write()` return guards directly (no
//!   `Result` — poisoning is absorbed: a panic while holding a lock does
//!   not poison it for other threads, matching parking_lot behavior),
//! - `try_*` variants return `Option`,
//! - guards deref to the protected value.
//!
//! When the real crate becomes available, deleting this crate and
//! restoring the registry dependency is a drop-in swap.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        let _r = l.read();
        assert!(l.try_read().is_some(), "readers share");
        assert!(l.try_write().is_none(), "writer excluded by reader");
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: still usable afterwards
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
