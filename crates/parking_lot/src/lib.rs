//! Offline vendored `parking_lot` facade.
//!
//! The real `parking_lot` crate cannot be fetched in this build environment,
//! so this workspace-local crate provides its lock API over `std::sync`
//! primitives. Semantics match what callers rely on:
//!
//! - `lock()` / `read()` / `write()` return guards directly (no
//!   `Result` — poisoning is absorbed: a panic while holding a lock does
//!   not poison it for other threads, matching parking_lot behavior),
//! - `try_*` variants return `Option`,
//! - guards deref to the protected value.
//!
//! On top of the upstream API, [`RwLock::with_rank`] attaches a
//! [`rank::LockRank`] to a lock; under `debug_assertions` every acquisition
//! of a ranked lock is validated against the thread's currently-held ranks
//! (see [`rank`]), turning lock-order violations into immediate panics with
//! both lock names instead of rare deadlocks.
//!
//! When the real crate becomes available, deleting this crate and
//! restoring the registry dependency is a drop-in swap (the rank extension
//! maps onto `parking_lot`'s `deadlock_detection` feature or a wrapper).

#![forbid(unsafe_code)]

pub mod rank;

use rank::LockRank;
use std::ops::{Deref, DerefMut};
use std::sync;

pub use sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API and
/// optional rank validation (see [`RwLock::with_rank`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    lock_rank: Option<LockRank>,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new, unranked reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            lock_rank: None,
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a reader-writer lock carrying a [`LockRank`]. Under
    /// `debug_assertions`, every acquisition asserts that the calling
    /// thread holds no lock of an equal or higher rank.
    pub const fn with_rank(value: T, lock_rank: LockRank) -> Self {
        RwLock {
            lock_rank: Some(lock_rank),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// The rank this lock was built with, if any.
    pub fn rank(&self) -> Option<LockRank> {
        self.lock_rank
    }

    /// Validates the acquisition order before blocking (debug builds only).
    fn check_rank(&self) {
        #[cfg(debug_assertions)]
        if let Some(r) = self.lock_rank {
            rank::check(r);
        }
    }

    /// Records a successful acquisition (debug builds only).
    fn note_acquired(&self) {
        #[cfg(debug_assertions)]
        if let Some(r) = self.lock_rank {
            rank::acquired(r);
        }
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.check_rank();
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.note_acquired();
        RwLockReadGuard {
            lock_rank: self.lock_rank,
            inner: g,
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.check_rank();
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.note_acquired();
        RwLockWriteGuard {
            lock_rank: self.lock_rank,
            inner: g,
        }
    }

    /// Tries to acquire read access without blocking. Rank order is still
    /// validated: a `try_read` that *would* violate the order panics in
    /// debug builds even though it could not deadlock by itself, because
    /// the sibling blocking path would.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.check_rank();
        let g = match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        self.note_acquired();
        Some(RwLockReadGuard {
            lock_rank: self.lock_rank,
            inner: g,
        })
    }

    /// Tries to acquire write access without blocking (rank-validated like
    /// [`RwLock::try_read`]).
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.check_rank();
        let g = match self.inner.try_write() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        self.note_acquired();
        Some(RwLockWriteGuard {
            lock_rank: self.lock_rank,
            inner: g,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Shared read guard; releases the lock (and its rank entry) on drop.
#[must_use = "dropping a guard releases the lock immediately"]
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock_rank: Option<LockRank>,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        if let Some(r) = self.lock_rank {
            rank::released(r);
        }
        #[cfg(not(debug_assertions))]
        let _ = self.lock_rank;
    }
}

/// Exclusive write guard; releases the lock (and its rank entry) on drop.
#[must_use = "dropping a guard releases the lock immediately"]
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock_rank: Option<LockRank>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        if let Some(r) = self.lock_rank {
            rank::released(r);
        }
        #[cfg(not(debug_assertions))]
        let _ = self.lock_rank;
    }
}

#[cfg(test)]
mod tests {
    use super::rank::{held_ranks, LockRank};
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    const RANK_A: LockRank = LockRank::new(1, "a");
    const RANK_B: LockRank = LockRank::new(2, "b");
    const RANK_C: LockRank = LockRank::new(3, "c");

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        let _r = l.read();
        assert!(l.try_read().is_some(), "readers share");
        assert!(l.try_write().is_none(), "writer excluded by reader");
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: still usable afterwards
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    // ---- lock-rank tracker ------------------------------------------------

    #[test]
    fn ordered_acquisition_passes() {
        let a = RwLock::with_rank(1, RANK_A);
        let b = RwLock::with_rank(2, RANK_B);
        let c = RwLock::with_rank(3, RANK_C);
        let ga = a.read();
        let gb = b.write();
        let gc = c.read();
        assert_eq!(held_ranks().len(), 3);
        assert_eq!(*ga + *gb + *gc, 6);
        drop(ga);
        drop(gb);
        drop(gc);
        assert!(held_ranks().is_empty());
        // skipping ranks is fine, only relative order matters
        let _ga = a.read();
        let _gc = c.write();
    }

    #[test]
    fn guards_may_drop_out_of_order() {
        let a = RwLock::with_rank(1, RANK_A);
        let b = RwLock::with_rank(2, RANK_B);
        let ga = a.read();
        let gb = b.read();
        drop(ga); // released before the later-ranked guard
        assert_eq!(held_ranks(), vec![RANK_B]);
        drop(gb);
        assert!(held_ranks().is_empty());
        // the earlier rank is reusable afterwards
        let _ga = a.write();
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "tracker compiles out in release")]
    fn out_of_order_acquisition_panics() {
        let a = RwLock::with_rank(1, RANK_A);
        let b = RwLock::with_rank(2, RANK_B);
        let gb = b.read();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ga = a.read(); // rank 1 after rank 2: violation
        }))
        .expect_err("out-of-order read must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-rank violation"), "{msg}");
        assert!(msg.contains("`a`") && msg.contains("`b`"), "{msg}");
        // the failed acquisition must not leave a stale held entry
        assert_eq!(held_ranks(), vec![RANK_B]);
        drop(gb);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "tracker compiles out in release")]
    fn reacquisition_panics() {
        let a = RwLock::with_rank(1, RANK_A);
        let ga = a.write();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = a.read(); // same rank while held: self-deadlock shape
        }))
        .expect_err("re-acquiring a held rank must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("re-acquires"), "{msg}");
        drop(ga);
        assert!(held_ranks().is_empty());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "tracker compiles out in release")]
    fn try_acquisition_is_rank_checked() {
        let a = RwLock::with_rank(1, RANK_A);
        let b = RwLock::with_rank(2, RANK_B);
        let gb = b.write();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = a.try_write(); // would violate the order if it blocked
        }))
        .expect_err("try_write against the order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-rank violation"), "{msg}");
        drop(gb);
    }

    #[test]
    fn ranks_are_per_thread() {
        // one thread holding a high rank must not constrain another thread
        let a = Arc::new(RwLock::with_rank(1u64, RANK_A));
        let b = Arc::new(RwLock::with_rank(2u64, RANK_B));
        let gb = b.write();
        let a2 = Arc::clone(&a);
        std::thread::spawn(move || {
            let _ga = a2.read(); // fresh thread: holds nothing yet
        })
        .join()
        .unwrap();
        drop(gb);
    }

    #[test]
    fn unranked_locks_are_never_checked() {
        let ranked = RwLock::with_rank(1, RANK_B);
        let plain = RwLock::new(2);
        let _gr = ranked.read();
        let _gp = plain.read(); // no rank: no ordering constraint
        assert_eq!(held_ranks(), vec![RANK_B]);
    }
}
