//! Runtime lock-rank validation.
//!
//! Locks built with [`crate::RwLock::with_rank`] carry a [`LockRank`] — a
//! numeric position in a global acquisition order plus a human-readable
//! name. Under `debug_assertions` every `.read()`/`.write()`/`try_*`
//! acquisition is validated against a thread-local stack of the ranks this
//! thread currently holds:
//!
//! - acquiring a rank **lower than or equal to** any held rank panics
//!   (out-of-order acquisition, or re-entrant acquisition of a lock the
//!   thread already holds — both are deadlock recipes);
//! - the check runs **before** blocking on the lock, so a would-be deadlock
//!   surfaces as a panic with both lock names instead of a hang.
//!
//! In release builds (no `debug_assertions`) every function here compiles
//! to nothing, so ranked locks cost the same as unranked ones.
//!
//! The checker validates exactly the invariant `jits-lint`'s static
//! lock-order pass claims about the engine source: the static pass proves
//! guard-acquisition sequences respect the documented rank order, and this
//! tracker asserts the same order on every acquisition the process actually
//! performs.

/// A lock's position in the global acquisition order.
///
/// Lower `order` values must be acquired first. The `name` appears in
/// violation panics so the offending pair of locks is identifiable without
/// a debugger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRank {
    /// Position in the acquisition order (lower acquires first).
    pub order: u8,
    /// Human-readable lock name for diagnostics.
    pub name: &'static str,
}

impl LockRank {
    /// Builds a rank.
    pub const fn new(order: u8, name: &'static str) -> Self {
        LockRank { order, name }
    }
}

#[cfg(debug_assertions)]
mod imp {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// Ranks of the locks this thread currently holds, in acquisition
        /// order. Guards may drop in any order, so releases remove by value
        /// rather than popping.
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// Validates that acquiring `rank` respects the order given what this
    /// thread already holds. Panics on violation. Must run *before* the
    /// blocking acquisition so violations panic instead of deadlocking.
    pub fn check(rank: LockRank) {
        HELD.with(|h| {
            let held = h.borrow();
            if let Some(worst) = held.iter().filter(|r| r.order >= rank.order).max_by_key(|r| r.order) {
                if worst.order == rank.order {
                    panic!(
                        "lock-rank violation: thread re-acquires `{}` (rank {}) while already holding it — \
                         a write guard held across a re-acquiring call self-deadlocks",
                        rank.name, rank.order,
                    );
                }
                panic!(
                    "lock-rank violation: acquiring `{}` (rank {}) while holding `{}` (rank {}) — \
                     the fixed order requires lower ranks first",
                    rank.name, rank.order, worst.name, worst.order,
                );
            }
        });
    }

    /// Records a successful acquisition.
    pub fn acquired(rank: LockRank) {
        HELD.with(|h| h.borrow_mut().push(rank));
    }

    /// Records a guard drop. Guards can drop in any order, so this removes
    /// the most recent matching entry rather than popping the top.
    pub fn released(rank: LockRank) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|r| *r == rank) {
                held.remove(pos);
            }
        });
    }

    /// Snapshot of the ranks this thread holds (test observability).
    pub fn held() -> Vec<LockRank> {
        HELD.with(|h| h.borrow().clone())
    }
}

#[cfg(debug_assertions)]
pub(crate) use imp::{acquired, check, released};

/// Snapshot of the ranks the current thread holds. Always empty in release
/// builds (the tracker compiles out).
pub fn held_ranks() -> Vec<LockRank> {
    #[cfg(debug_assertions)]
    {
        imp::held()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}
