//! Uniform row sampling — the substrate of JITS statistics collection.
//!
//! The paper (§4, citing [1, 8, 12]) relies on the observation that "the
//! best sample size sufficient to give accurate statistics of a database
//! table is independent of the table size": collection draws a *fixed-size*
//! uniform sample once per marked table and then evaluates every candidate
//! predicate group against it. [`SampleSpec`] captures the fixed size;
//! [`sample_rows`] draws the rows.

use crate::row::RowId;
use crate::table::Table;
use jits_common::SplitMix64;

/// How to draw a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Target number of rows (tables smaller than this are fully scanned).
    pub size: usize,
}

impl SampleSpec {
    /// Fixed-size sample of `size` rows.
    pub fn fixed(size: usize) -> Self {
        SampleSpec { size }
    }
}

impl Default for SampleSpec {
    /// 1 000 rows — above the size the paper's citations deem sufficient
    /// for selectivity estimation (the sample-size ablation in
    /// `jits-bench` shows execution quality is flat from 250 rows up while
    /// collection cost grows linearly).
    fn default() -> Self {
        SampleSpec { size: 1_000 }
    }
}

/// Draws a uniform sample of live row ids without replacement.
///
/// Cost is proportional to the *sample* size, not the table size — the
/// property the paper's collection strategy depends on: random slot probes
/// with tombstone rejection, falling back to a reservoir pass only when the
/// table is heavily tombstoned (rejection would thrash) or smaller than the
/// sample.
pub fn sample_rows(table: &Table, spec: SampleSpec, rng: &mut SplitMix64) -> Vec<RowId> {
    sample_rows_counted(table, spec, rng).0
}

/// [`sample_rows`] plus the number of storage slot probes the draw cost —
/// the collection-cost signal observability reports. The probe count is a
/// deterministic function of the table state, spec, and RNG stream (the
/// reservoir fallback counts one probe per scanned slot).
pub fn sample_rows_counted(
    table: &Table,
    spec: SampleSpec,
    rng: &mut SplitMix64,
) -> (Vec<RowId>, usize) {
    // expected probes ~ size / live_fraction; the generous cap only trips
    // under adversarial tombstone layouts, where we top up from a scan
    sample_rows_with_probe_cap(table, spec, rng, spec.size * 20 + 64)
}

/// One budgeted sample draw: the rows drawn, the slot probes charged, and
/// whether the work-unit budget aborted the draw early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetedDraw {
    /// The sampled row ids (possibly fewer than requested when aborted).
    pub rows: Vec<RowId>,
    /// Slot probes charged — the deterministic work-unit cost of the draw.
    pub probes: usize,
    /// True when the budget stopped the draw before the requested size.
    pub aborted: bool,
}

/// [`sample_rows_counted`] under a deterministic work-unit budget
/// (`budget` slot probes; `0` means unlimited).
///
/// Degradation contract (the JITS "bounded best-effort" promise):
///
/// * When the budget does not bind (`budget == 0` or `budget >= size*20+64`,
///   the default probe cap) the draw is **bit-identical** to
///   [`sample_rows_counted`] — same rows, same probe count, same RNG stream —
///   so enabling a generous budget never perturbs statistics.
/// * On the probe path a binding budget keeps the partial probe-phase rows:
///   each accepted probe is a uniform draw without replacement, so the
///   partial sample stays uniform and is worth keeping (`aborted = true`,
///   exactly `budget` probes charged).
/// * On the reservoir path (small or heavily tombstoned tables) a truncated
///   scan would be biased toward early slots, so a budget below the live row
///   count aborts with **no** rows and zero probes — the caller falls back
///   to archive/catalog statistics instead of skewed ones.
pub fn sample_rows_budgeted(
    table: &Table,
    spec: SampleSpec,
    rng: &mut SplitMix64,
    budget: u64,
) -> BudgetedDraw {
    let default_cap = spec.size * 20 + 64;
    if budget == 0 || budget >= default_cap as u64 {
        // Budget cannot bind: replay the unbudgeted draw exactly.
        let (rows, probes) = sample_rows_with_probe_cap(table, spec, rng, default_cap);
        return BudgetedDraw {
            rows,
            probes,
            aborted: false,
        };
    }
    let live = table.row_count();
    let slots = table.slot_count();
    if live == 0 {
        return BudgetedDraw {
            rows: Vec::new(),
            probes: 0,
            aborted: false,
        };
    }
    let live_fraction = live as f64 / slots as f64;
    if live <= spec.size || live_fraction < 0.25 {
        if live as u64 <= budget {
            return BudgetedDraw {
                rows: rng.reservoir_sample(table.scan(), spec.size),
                probes: live,
                aborted: false,
            };
        }
        return BudgetedDraw {
            rows: Vec::new(),
            probes: 0,
            aborted: true,
        };
    }
    let (rows, probes) = sample_probe_phase(table, spec, rng, budget as usize);
    if rows.len() == spec.size {
        return BudgetedDraw {
            rows,
            probes,
            aborted: false,
        };
    }
    // Budget tripped mid-probe: the partial is uniform, keep it. The probe
    // counter must equal the budget exactly — that is the "same work units
    // as the equivalent capped draw" invariant chaos replay relies on.
    debug_assert_eq!(probes as u64, budget, "aborted draw must charge budget");
    BudgetedDraw {
        rows,
        probes,
        aborted: true,
    }
}

/// Fixed-size bitmap over a table's slot range: membership for the probe
/// phase without hashing. One bit per slot, so a 10M-slot table costs
/// ~1.2 MB transiently during a draw — cheaper than a `HashSet` of the same
/// cardinality and O(1) with no hash or collision work per probe.
struct SlotBitmap {
    words: Vec<u64>,
}

impl SlotBitmap {
    fn new(slots: usize) -> Self {
        SlotBitmap {
            words: vec![0u64; slots.div_ceil(64)],
        }
    }

    #[inline]
    fn contains(&self, slot: RowId) -> bool {
        let i = slot as usize;
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets the bit; returns true if it was newly set (HashSet::insert
    /// semantics).
    #[inline]
    fn insert(&mut self, slot: RowId) -> bool {
        let i = slot as usize;
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }
}

/// The shared probe loop: random slot probes with tombstone/duplicate
/// rejection, stopping at `max_probes` or a full sample. Both the capped
/// draw and the budgeted draw run exactly this loop, which is what makes an
/// early-aborted partial sample charge the same work units (and consume the
/// same RNG stream) as the equivalent capped draw's probe phase.
fn probe_phase(
    table: &Table,
    spec: SampleSpec,
    rng: &mut SplitMix64,
    max_probes: usize,
) -> (Vec<RowId>, usize, SlotBitmap) {
    let slots = table.slot_count();
    let mut chosen = SlotBitmap::new(slots);
    let mut out = Vec::with_capacity(spec.size);
    let mut probes = 0usize;
    while probes < max_probes && out.len() < spec.size {
        let slot = rng.next_bounded(slots as u64) as RowId;
        probes += 1;
        if table.is_live(slot) && chosen.insert(slot) {
            out.push(slot);
        }
    }
    (out, probes, chosen)
}

/// [`probe_phase`] without the membership bitmap (the budgeted caller never
/// tops up, so it does not need one).
fn sample_probe_phase(
    table: &Table,
    spec: SampleSpec,
    rng: &mut SplitMix64,
    max_probes: usize,
) -> (Vec<RowId>, usize) {
    let (out, probes, _) = probe_phase(table, spec, rng, max_probes);
    (out, probes)
}

fn sample_rows_with_probe_cap(
    table: &Table,
    spec: SampleSpec,
    rng: &mut SplitMix64,
    max_probes: usize,
) -> (Vec<RowId>, usize) {
    let live = table.row_count();
    if live == 0 {
        return (Vec::new(), 0);
    }
    let live_fraction = live as f64 / table.slot_count() as f64;
    if live <= spec.size || live_fraction < 0.25 {
        return (rng.reservoir_sample(table.scan(), spec.size), live);
    }
    let (mut out, mut probes, chosen) = probe_phase(table, spec, rng, max_probes);
    if out.len() == spec.size {
        return (out, probes);
    }
    // The cap tripped: keep the probe-phase rows (a uniform random subset
    // of the live rows) and reservoir-fill only the remainder from the rows
    // not yet chosen. A uniform k-subset extended by a uniform (m−k)-subset
    // of its complement is a uniform m-subset, so uniformity is preserved —
    // and the partial work is not thrown away.
    let remainder = spec.size - out.len();
    let fill = rng.reservoir_sample(table.scan().filter(|r| !chosen.contains(*r)), remainder);
    probes += live - out.len(); // the top-up scan touches every remaining live row
    out.extend(fill);
    (out, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{DataType, Schema, Value};

    fn table_with(n: usize) -> Table {
        let mut t = Table::new("t", Schema::from_pairs(&[("v", DataType::Int)]));
        for i in 0..n {
            t.insert(vec![Value::Int(i as i64)]).unwrap();
        }
        t
    }

    #[test]
    fn sample_has_requested_size() {
        let t = table_with(10_000);
        let mut rng = SplitMix64::new(1);
        let s = sample_rows(&t, SampleSpec::fixed(500), &mut rng);
        assert_eq!(s.len(), 500);
        // no duplicates
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 500);
    }

    #[test]
    fn small_table_fully_sampled() {
        let t = table_with(10);
        let mut rng = SplitMix64::new(1);
        let s = sample_rows(&t, SampleSpec::fixed(500), &mut rng);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn sample_skips_tombstones() {
        let mut t = table_with(100);
        for r in 0..50 {
            t.delete(r);
        }
        let mut rng = SplitMix64::new(2);
        let s = sample_rows(&t, SampleSpec::fixed(500), &mut rng);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|r| *r >= 50));
    }

    #[test]
    fn sample_selectivity_estimates_converge() {
        // 30% of rows have v < 3000; a 2000-row sample should estimate
        // selectivity within a few points.
        let t = table_with(10_000);
        let mut rng = SplitMix64::new(3);
        let s = sample_rows(&t, SampleSpec::default(), &mut rng);
        let hits = s
            .iter()
            .filter(|r| match t.value(**r, jits_common::ColumnId(0)) {
                Value::Int(i) => i < 3000,
                _ => false,
            })
            .count();
        let est = hits as f64 / s.len() as f64;
        assert!((est - 0.3).abs() < 0.04, "estimate {est}");
    }

    #[test]
    fn probe_cap_keeps_partial_sample_and_fills_remainder() {
        let t = table_with(10_000);
        // a probe cap far below the requested size forces the top-up path
        // mid-sample; the result must still be exact-size and duplicate-free
        let mut rng = SplitMix64::new(11);
        let (s, probes) = sample_rows_with_probe_cap(&t, SampleSpec::fixed(2_000), &mut rng, 300);
        assert_eq!(s.len(), 2_000);
        assert!(probes >= 300, "probe count must include the top-up scan");
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 2_000, "top-up must not re-pick probed rows");
        // deterministic given the same seed and cap
        let mut rng = SplitMix64::new(11);
        let (again, again_probes) =
            sample_rows_with_probe_cap(&t, SampleSpec::fixed(2_000), &mut rng, 300);
        assert_eq!(s, again);
        assert_eq!(probes, again_probes);
    }

    #[test]
    fn probe_cap_fallback_remains_unbiased() {
        // with an adversarially small cap, every row must still appear with
        // roughly equal frequency across seeds (uniformity of the hybrid)
        let t = table_with(200);
        let mut hits_low = 0usize;
        let mut hits_high = 0usize;
        for seed in 0..600u64 {
            let mut rng = SplitMix64::new(seed);
            let (s, _) = sample_rows_with_probe_cap(&t, SampleSpec::fixed(100), &mut rng, 30);
            assert_eq!(s.len(), 100);
            if s.contains(&0) {
                hits_low += 1;
            }
            if s.contains(&199) {
                hits_high += 1;
            }
        }
        // each row is expected in half the samples; allow generous slack
        let lo = hits_low as f64 / 600.0;
        let hi = hits_high as f64 / 600.0;
        assert!((0.4..0.6).contains(&lo), "row 0 rate {lo}");
        assert!((0.4..0.6).contains(&hi), "row 199 rate {hi}");
    }

    #[test]
    fn unbinding_budget_replays_unbudgeted_draw_exactly() {
        // budget on/off must be bit-identical when no abort fires: same
        // rows, same probe charge, same RNG stream afterwards
        let t = table_with(10_000);
        for budget in [0u64, 20_064, 1 << 32] {
            let mut a = SplitMix64::new(13);
            let mut b = SplitMix64::new(13);
            let (rows, probes) = sample_rows_counted(&t, SampleSpec::default(), &mut a);
            let draw = sample_rows_budgeted(&t, SampleSpec::default(), &mut b, budget);
            assert!(!draw.aborted);
            assert_eq!(draw.rows, rows, "budget {budget}");
            assert_eq!(draw.probes, probes, "budget {budget}");
            assert_eq!(a.next_u64(), b.next_u64(), "RNG streams diverged");
        }
    }

    #[test]
    fn aborted_draw_charges_same_work_as_equivalent_capped_draw() {
        let t = table_with(10_000);
        let spec = SampleSpec::fixed(2_000);
        let budget = 300u64;
        let mut a = SplitMix64::new(11);
        let draw = sample_rows_budgeted(&t, spec, &mut a, budget);
        assert!(draw.aborted);
        assert_eq!(
            draw.probes as u64, budget,
            "aborted partial must charge exactly the budget"
        );
        // the partial is the probe phase of the equivalent capped draw:
        // identical rows (prefix) drawn from an identical RNG stream
        let mut b = SplitMix64::new(11);
        let (capped, capped_probes) = sample_rows_with_probe_cap(&t, spec, &mut b, budget as usize);
        assert_eq!(capped.len(), spec.size, "capped draw tops up to full size");
        assert!(capped_probes as u64 > budget, "top-up scan charges extra");
        assert_eq!(draw.rows[..], capped[..draw.rows.len()]);
        assert!(!draw.rows.is_empty());
    }

    #[test]
    fn reservoir_path_budget_abort_returns_no_rows() {
        // a truncated reservoir scan would bias toward early slots, so the
        // budgeted draw refuses to return a partial on that path
        let mut t = table_with(1_000);
        for r in 0..800 {
            t.delete(r); // live fraction 0.2 -> reservoir path
        }
        let mut rng = SplitMix64::new(5);
        let draw = sample_rows_budgeted(&t, SampleSpec::fixed(50), &mut rng, 100);
        assert!(draw.aborted);
        assert!(draw.rows.is_empty());
        assert_eq!(draw.probes, 0);
        // with enough budget the same path completes normally
        let mut rng = SplitMix64::new(5);
        let draw = sample_rows_budgeted(&t, SampleSpec::fixed(50), &mut rng, 200);
        assert!(!draw.aborted);
        assert_eq!(draw.rows.len(), 50);
        assert_eq!(draw.probes, 200);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = table_with(1_000);
        let a = sample_rows(&t, SampleSpec::fixed(100), &mut SplitMix64::new(7));
        let b = sample_rows(&t, SampleSpec::fixed(100), &mut SplitMix64::new(7));
        assert_eq!(a, b);
    }
}
