//! Uniform row sampling — the substrate of JITS statistics collection.
//!
//! The paper (§4, citing [1, 8, 12]) relies on the observation that "the
//! best sample size sufficient to give accurate statistics of a database
//! table is independent of the table size": collection draws a *fixed-size*
//! uniform sample once per marked table and then evaluates every candidate
//! predicate group against it. [`SampleSpec`] captures the fixed size;
//! [`sample_rows`] draws the rows.

use crate::row::RowId;
use crate::table::Table;
use jits_common::SplitMix64;

/// How to draw a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Target number of rows (tables smaller than this are fully scanned).
    pub size: usize,
}

impl SampleSpec {
    /// Fixed-size sample of `size` rows.
    pub fn fixed(size: usize) -> Self {
        SampleSpec { size }
    }
}

impl Default for SampleSpec {
    /// 1 000 rows — above the size the paper's citations deem sufficient
    /// for selectivity estimation (the sample-size ablation in
    /// `jits-bench` shows execution quality is flat from 250 rows up while
    /// collection cost grows linearly).
    fn default() -> Self {
        SampleSpec { size: 1_000 }
    }
}

/// Draws a uniform sample of live row ids without replacement.
///
/// Cost is proportional to the *sample* size, not the table size — the
/// property the paper's collection strategy depends on: random slot probes
/// with tombstone rejection, falling back to a reservoir pass only when the
/// table is heavily tombstoned (rejection would thrash) or smaller than the
/// sample.
pub fn sample_rows(table: &Table, spec: SampleSpec, rng: &mut SplitMix64) -> Vec<RowId> {
    sample_rows_counted(table, spec, rng).0
}

/// [`sample_rows`] plus the number of storage slot probes the draw cost —
/// the collection-cost signal observability reports. The probe count is a
/// deterministic function of the table state, spec, and RNG stream (the
/// reservoir fallback counts one probe per scanned slot).
pub fn sample_rows_counted(
    table: &Table,
    spec: SampleSpec,
    rng: &mut SplitMix64,
) -> (Vec<RowId>, usize) {
    // expected probes ~ size / live_fraction; the generous cap only trips
    // under adversarial tombstone layouts, where we top up from a scan
    sample_rows_with_probe_cap(table, spec, rng, spec.size * 20 + 64)
}

/// Fixed-size bitmap over a table's slot range: membership for the probe
/// phase without hashing. One bit per slot, so a 10M-slot table costs
/// ~1.2 MB transiently during a draw — cheaper than a `HashSet` of the same
/// cardinality and O(1) with no hash or collision work per probe.
struct SlotBitmap {
    words: Vec<u64>,
}

impl SlotBitmap {
    fn new(slots: usize) -> Self {
        SlotBitmap {
            words: vec![0u64; slots.div_ceil(64)],
        }
    }

    #[inline]
    fn contains(&self, slot: RowId) -> bool {
        let i = slot as usize;
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets the bit; returns true if it was newly set (HashSet::insert
    /// semantics).
    #[inline]
    fn insert(&mut self, slot: RowId) -> bool {
        let i = slot as usize;
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }
}

fn sample_rows_with_probe_cap(
    table: &Table,
    spec: SampleSpec,
    rng: &mut SplitMix64,
    max_probes: usize,
) -> (Vec<RowId>, usize) {
    let live = table.row_count();
    let slots = table.slot_count();
    if live == 0 {
        return (Vec::new(), 0);
    }
    let live_fraction = live as f64 / slots as f64;
    if live <= spec.size || live_fraction < 0.25 {
        return (rng.reservoir_sample(table.scan(), spec.size), live);
    }
    let mut chosen = SlotBitmap::new(slots);
    let mut out = Vec::with_capacity(spec.size);
    let mut probes = 0usize;
    for _ in 0..max_probes {
        if out.len() == spec.size {
            return (out, probes);
        }
        let slot = rng.next_bounded(slots as u64) as RowId;
        probes += 1;
        if table.is_live(slot) && chosen.insert(slot) {
            out.push(slot);
        }
    }
    // The cap tripped: keep the probe-phase rows (a uniform random subset
    // of the live rows) and reservoir-fill only the remainder from the rows
    // not yet chosen. A uniform k-subset extended by a uniform (m−k)-subset
    // of its complement is a uniform m-subset, so uniformity is preserved —
    // and the partial work is not thrown away.
    let remainder = spec.size - out.len();
    let fill = rng.reservoir_sample(table.scan().filter(|r| !chosen.contains(*r)), remainder);
    probes += live - out.len(); // the top-up scan touches every remaining live row
    out.extend(fill);
    (out, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{DataType, Schema, Value};

    fn table_with(n: usize) -> Table {
        let mut t = Table::new("t", Schema::from_pairs(&[("v", DataType::Int)]));
        for i in 0..n {
            t.insert(vec![Value::Int(i as i64)]).unwrap();
        }
        t
    }

    #[test]
    fn sample_has_requested_size() {
        let t = table_with(10_000);
        let mut rng = SplitMix64::new(1);
        let s = sample_rows(&t, SampleSpec::fixed(500), &mut rng);
        assert_eq!(s.len(), 500);
        // no duplicates
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 500);
    }

    #[test]
    fn small_table_fully_sampled() {
        let t = table_with(10);
        let mut rng = SplitMix64::new(1);
        let s = sample_rows(&t, SampleSpec::fixed(500), &mut rng);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn sample_skips_tombstones() {
        let mut t = table_with(100);
        for r in 0..50 {
            t.delete(r);
        }
        let mut rng = SplitMix64::new(2);
        let s = sample_rows(&t, SampleSpec::fixed(500), &mut rng);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|r| *r >= 50));
    }

    #[test]
    fn sample_selectivity_estimates_converge() {
        // 30% of rows have v < 3000; a 2000-row sample should estimate
        // selectivity within a few points.
        let t = table_with(10_000);
        let mut rng = SplitMix64::new(3);
        let s = sample_rows(&t, SampleSpec::default(), &mut rng);
        let hits = s
            .iter()
            .filter(|r| match t.value(**r, jits_common::ColumnId(0)) {
                Value::Int(i) => i < 3000,
                _ => false,
            })
            .count();
        let est = hits as f64 / s.len() as f64;
        assert!((est - 0.3).abs() < 0.04, "estimate {est}");
    }

    #[test]
    fn probe_cap_keeps_partial_sample_and_fills_remainder() {
        let t = table_with(10_000);
        // a probe cap far below the requested size forces the top-up path
        // mid-sample; the result must still be exact-size and duplicate-free
        let mut rng = SplitMix64::new(11);
        let (s, probes) = sample_rows_with_probe_cap(&t, SampleSpec::fixed(2_000), &mut rng, 300);
        assert_eq!(s.len(), 2_000);
        assert!(probes >= 300, "probe count must include the top-up scan");
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 2_000, "top-up must not re-pick probed rows");
        // deterministic given the same seed and cap
        let mut rng = SplitMix64::new(11);
        let (again, again_probes) =
            sample_rows_with_probe_cap(&t, SampleSpec::fixed(2_000), &mut rng, 300);
        assert_eq!(s, again);
        assert_eq!(probes, again_probes);
    }

    #[test]
    fn probe_cap_fallback_remains_unbiased() {
        // with an adversarially small cap, every row must still appear with
        // roughly equal frequency across seeds (uniformity of the hybrid)
        let t = table_with(200);
        let mut hits_low = 0usize;
        let mut hits_high = 0usize;
        for seed in 0..600u64 {
            let mut rng = SplitMix64::new(seed);
            let (s, _) = sample_rows_with_probe_cap(&t, SampleSpec::fixed(100), &mut rng, 30);
            assert_eq!(s.len(), 100);
            if s.contains(&0) {
                hits_low += 1;
            }
            if s.contains(&199) {
                hits_high += 1;
            }
        }
        // each row is expected in half the samples; allow generous slack
        let lo = hits_low as f64 / 600.0;
        let hi = hits_high as f64 / 600.0;
        assert!((0.4..0.6).contains(&lo), "row 0 rate {lo}");
        assert!((0.4..0.6).contains(&hi), "row 199 rate {hi}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = table_with(1_000);
        let a = sample_rows(&t, SampleSpec::fixed(100), &mut SplitMix64::new(7));
        let b = sample_rows(&t, SampleSpec::fixed(100), &mut SplitMix64::new(7));
        assert_eq!(a, b);
    }
}
