//! Row identity and materialized rows.

use jits_common::Value;

/// Physical position of a row within a table's column vectors.
///
/// Row ids are stable for the lifetime of the row (deletes tombstone rather
/// than compact), so indexes and samples can hold them safely.
pub type RowId = u32;

/// A materialized row: one [`Value`] per schema column.
pub type Row = Vec<Value>;
