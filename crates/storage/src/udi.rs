//! UDI (update / delete / insert) activity counters.
//!
//! The JITS sensitivity analysis (paper §3.3.1) keeps, per table, "a counter
//! that encapsulates the number of updates, deletions and insertions that
//! took place since the last statistics collection" and uses
//! `UDI / cardinality` as its data-activity score `s2`.

/// Mutation counters since the last statistics collection on a table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdiCounter {
    /// Rows updated in place.
    pub updates: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Rows inserted.
    pub inserts: u64,
}

impl UdiCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        UdiCounter::default()
    }

    /// Total activity since the last reset.
    pub fn total(&self) -> u64 {
        self.updates + self.deletes + self.inserts
    }

    /// Activity ratio against a table cardinality, clamped to `[0, 1]` —
    /// this is the paper's `s2 = min(UDI(t)/cardinality(t), 1)`.
    pub fn activity_ratio(&self, cardinality: u64) -> f64 {
        if cardinality == 0 {
            // all-new or fully-churned table: maximal activity signal
            return if self.total() > 0 { 1.0 } else { 0.0 };
        }
        (self.total() as f64 / cardinality as f64).min(1.0)
    }

    /// Clears the counters (called when statistics are collected).
    pub fn reset(&mut self) {
        *self = UdiCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_reset() {
        let mut u = UdiCounter::new();
        u.updates = 3;
        u.deletes = 2;
        u.inserts = 5;
        assert_eq!(u.total(), 10);
        u.reset();
        assert_eq!(u.total(), 0);
    }

    #[test]
    fn activity_ratio_clamps() {
        let u = UdiCounter {
            updates: 50,
            deletes: 0,
            inserts: 0,
        };
        assert_eq!(u.activity_ratio(100), 0.5);
        assert_eq!(u.activity_ratio(10), 1.0);
        assert_eq!(u.activity_ratio(0), 1.0);
        assert_eq!(UdiCounter::new().activity_ratio(0), 0.0);
    }
}
