//! Typed column vectors.

use jits_common::{DataType, JitsError, Result, Value};
use std::sync::Arc;

/// A typed column vector with per-slot validity.
///
/// NULLs are stored as a parallel validity bitmap; slot payloads for NULL
/// entries are the type's default and must never be observed through the
/// public API.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Vec<bool>,
}

#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
        };
        Column {
            data,
            validity: Vec::new(),
        }
    }

    /// Creates an empty column with reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        };
        Column {
            data,
            validity: Vec::with_capacity(cap),
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match &self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    /// Number of slots (including tombstoned rows — the table tracks
    /// liveness, not the column).
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True if no slots exist.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Appends a value, coercing compatible types (Int into Float columns).
    pub fn push(&mut self, v: Value) -> Result<()> {
        let v = match v {
            Value::Null => {
                self.push_null();
                return Ok(());
            }
            other => other.coerce(self.dtype())?,
        };
        match (&mut self.data, v) {
            (ColumnData::Int(col), Value::Int(i)) => col.push(i),
            (ColumnData::Float(col), Value::Float(f)) => col.push(f),
            (ColumnData::Str(col), Value::Str(s)) => col.push(s),
            _ => unreachable!("coerce guarantees matching type"),
        }
        self.validity.push(true);
        Ok(())
    }

    /// Appends a NULL slot.
    pub fn push_null(&mut self) {
        match &mut self.data {
            ColumnData::Int(col) => col.push(0),
            ColumnData::Float(col) => col.push(0.0),
            ColumnData::Str(col) => col.push(Arc::from("")),
        }
        self.validity.push(false);
    }

    /// Reads the value at `idx`; out-of-bounds is an internal error.
    pub fn get(&self, idx: usize) -> Value {
        debug_assert!(idx < self.len(), "column index {idx} out of bounds");
        if !self.validity[idx] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(col) => Value::Int(col[idx]),
            ColumnData::Float(col) => Value::Float(col[idx]),
            ColumnData::Str(col) => Value::Str(Arc::clone(&col[idx])),
        }
    }

    /// Overwrites the value at `idx` (used by UPDATE).
    pub fn set(&mut self, idx: usize, v: Value) -> Result<()> {
        if idx >= self.len() {
            return Err(JitsError::internal(format!(
                "column set index {idx} out of bounds (len {})",
                self.len()
            )));
        }
        let v = match v {
            Value::Null => {
                self.validity[idx] = false;
                return Ok(());
            }
            other => other.coerce(self.dtype())?,
        };
        match (&mut self.data, v) {
            (ColumnData::Int(col), Value::Int(i)) => col[idx] = i,
            (ColumnData::Float(col), Value::Float(f)) => col[idx] = f,
            (ColumnData::Str(col), Value::Str(s)) => col[idx] = s,
            _ => unreachable!("coerce guarantees matching type"),
        }
        self.validity[idx] = true;
        Ok(())
    }

    /// Axis (numeric) projection of the value at `idx`, `None` for NULL.
    /// Hot path for histogram construction; avoids materializing a `Value`
    /// for numeric columns.
    pub fn axis_value(&self, idx: usize) -> Option<f64> {
        if !self.validity[idx] {
            return None;
        }
        match &self.data {
            ColumnData::Int(col) => Some(col[idx] as f64),
            ColumnData::Float(col) => Some(col[idx]),
            ColumnData::Str(col) => Some(jits_common::value::lex_code(&col[idx])),
        }
    }

    /// True if slot `idx` is non-NULL.
    pub fn is_valid(&self, idx: usize) -> bool {
        self.validity[idx]
    }

    /// Gathers the slots `rows` into a dense typed
    /// [`FrameColumn`](crate::frame::FrameColumn), folding the axis min/max
    /// accumulation into the same pass (see `crate::frame`).
    pub(crate) fn gather(&self, rows: &[crate::row::RowId]) -> crate::frame::FrameColumn {
        use crate::frame::{FrameColumn, FrameValues};
        let mut validity = Vec::with_capacity(rows.len());
        let mut non_null = 0usize;
        let mut axis_min = f64::INFINITY;
        let mut axis_max = f64::NEG_INFINITY;
        let mut fold = |valid: bool, axis: f64| {
            if valid {
                non_null += 1;
                axis_min = axis_min.min(axis);
                axis_max = axis_max.max(axis);
            }
        };
        let values = match &self.data {
            ColumnData::Int(col) => {
                let mut out = Vec::with_capacity(rows.len());
                for &r in rows {
                    let i = r as usize;
                    let valid = self.validity[i];
                    validity.push(valid);
                    out.push(col[i]);
                    fold(valid, col[i] as f64);
                }
                FrameValues::Int(out)
            }
            ColumnData::Float(col) => {
                let mut out = Vec::with_capacity(rows.len());
                for &r in rows {
                    let i = r as usize;
                    let valid = self.validity[i];
                    validity.push(valid);
                    out.push(col[i]);
                    fold(valid, col[i]);
                }
                FrameValues::Float(out)
            }
            ColumnData::Str(col) => {
                let mut out = Vec::with_capacity(rows.len());
                for &r in rows {
                    let i = r as usize;
                    let valid = self.validity[i];
                    validity.push(valid);
                    if valid {
                        fold(true, jits_common::value::lex_code(&col[i]));
                    } else {
                        fold(false, 0.0);
                    }
                    out.push(Arc::clone(&col[i]));
                }
                FrameValues::Str(out)
            }
        };
        FrameColumn {
            values,
            validity,
            axis_min,
            axis_max,
            non_null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(3));
        assert!(!c.is_valid(1));
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(DataType::Int);
        assert!(c.push(Value::str("x")).is_err());
        assert_eq!(c.len(), 0, "failed push must not grow the column");
    }

    #[test]
    fn set_overwrites_and_handles_null() {
        let mut c = Column::new(DataType::Str);
        c.push(Value::str("a")).unwrap();
        c.set(0, Value::str("b")).unwrap();
        assert_eq!(c.get(0), Value::str("b"));
        c.set(0, Value::Null).unwrap();
        assert_eq!(c.get(0), Value::Null);
        assert!(c.set(5, Value::str("x")).is_err());
    }

    #[test]
    fn axis_values() {
        let mut c = Column::new(DataType::Str);
        c.push(Value::str("Honda")).unwrap();
        c.push_null();
        assert!(c.axis_value(0).is_some());
        assert_eq!(c.axis_value(1), None);
    }
}
