//! In-memory column store for the JITS engine.
//!
//! Tables are append-only column vectors with a tombstone bitmap for
//! deletions. Every mutation ticks the table's **UDI counter** (updates /
//! deletions / insertions since the last statistics collection), which the
//! JITS sensitivity analysis consults as its data-activity signal `s2`.
//!
//! The crate also provides the sampling primitive statistics collection is
//! built on (fixed-size uniform samples of live rows — the paper cites
//! [1, 8, 12] for sample sizes being independent of table size) and simple
//! B-tree secondary indexes that give the optimizer real access-path choices.

#![forbid(unsafe_code)]

pub mod column;
pub mod frame;
pub mod index;
pub mod row;
pub mod sample;
pub mod samplecache;
pub mod table;
pub mod udi;
pub mod zonemap;

pub use column::Column;
pub use frame::{FrameColumn, FrameValues, SampleFrame};
pub use index::{HashIndex, SecondaryIndex};
pub use row::{Row, RowId};
pub use sample::{sample_rows_budgeted, BudgetedDraw, SampleSpec};
pub use samplecache::{sample_staleness, CacheCounters, CacheLookup, CachedSample, SampleCache};
pub use table::{Table, TableSnapshot};
pub use udi::UdiCounter;
pub use zonemap::{block_of, BlockSkipList, ColumnZone, ZoneMaps, ZoneSnapshot, BLOCK_SIZE};
