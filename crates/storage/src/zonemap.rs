//! Per-block zone maps and block skip lists (stats-driven data skipping).
//!
//! Each table's row space is partitioned into fixed-size blocks of
//! [`BLOCK_SIZE`] consecutive `RowId` slots. For every block and column the
//! table maintains a [`ColumnZone`] — min/max over the non-NULL values ever
//! stored in the block plus an exact NULL count — and per block an exact
//! live-row count. A scan with interval predicates consults the zones to
//! build a [`BlockSkipList`]: the set of blocks that *may* contain a
//! matching row. Pruned blocks provably contain none, so a scan over the
//! surviving blocks returns exactly the rows of a full scan.
//!
//! # Maintenance and conservatism
//!
//! Zones are updated incrementally, O(#columns) per mutation, by the table
//! mutators — always *after* the table's `mutation_epoch` tick, so any
//! cached artifact versioned against the epoch (samples, frames) can never
//! observe a new summary under an old epoch. Min/max only ever widen:
//! deletes and overwrites leave them in place, so a zone may cover values
//! no longer present (pruning less than possible) but never misses a value
//! that is present (pruning is always sound). NULL counts and live-row
//! counts are exact because every mutator knows the old value it replaces.
//!
//! # Determinism
//!
//! Zone state is a pure function of the mutation history, and
//! [`ZoneMaps::skip_list`] walks blocks in ascending order, so the skip
//! list — and everything charged or recorded from it — is bit-identical
//! across executors, `collect_threads`, and the `data_skipping` knob.

use crate::row::RowId;
use jits_common::{Bound, ColumnId, Interval, Value};
use std::cmp::Ordering;

/// Rows per zone-map block. Fixed so block boundaries (and therefore skip
/// lists) never depend on load order or table size.
pub const BLOCK_SIZE: usize = 1024;

/// The block index a row slot belongs to.
#[inline]
pub fn block_of(row: RowId) -> usize {
    row as usize / BLOCK_SIZE
}

/// Min/max/NULL summary of one column over one block.
#[derive(Debug, Clone, Default)]
pub struct ColumnZone {
    /// Smallest non-NULL value ever stored in the block (widen-only).
    min: Option<Value>,
    /// Largest non-NULL value ever stored in the block (widen-only).
    max: Option<Value>,
    /// Exact NULL count among the block's *live* rows.
    nulls: u32,
}

impl ColumnZone {
    /// Widens the min/max envelope to cover `v` (no-op for NULL).
    fn widen(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        match &self.min {
            Some(m) if m.cmp_total(v) != Ordering::Greater => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.cmp_total(v) != Ordering::Less => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// Whether the interval can possibly match a non-NULL value of this
    /// zone. Conservative: incomparable bounds (type confusion) keep the
    /// block.
    fn may_match(&self, iv: &Interval) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            // no non-NULL value was ever stored: nothing an interval
            // predicate could match
            return false;
        };
        // interval entirely above the zone's max?
        match &iv.low {
            Bound::Inclusive(v) => {
                if v.try_cmp(max) == Some(Ordering::Greater) {
                    return false;
                }
            }
            Bound::Exclusive(v) => {
                if matches!(
                    v.try_cmp(max),
                    Some(Ordering::Greater) | Some(Ordering::Equal)
                ) {
                    return false;
                }
            }
            Bound::Unbounded => {}
        }
        // interval entirely below the zone's min?
        match &iv.high {
            Bound::Inclusive(v) => {
                if v.try_cmp(min) == Some(Ordering::Less) {
                    return false;
                }
            }
            Bound::Exclusive(v) => {
                if matches!(v.try_cmp(min), Some(Ordering::Less) | Some(Ordering::Equal)) {
                    return false;
                }
            }
            Bound::Unbounded => {}
        }
        true
    }
}

/// One block's summary: exact live-row count plus one zone per column.
#[derive(Debug, Clone)]
pub struct BlockZone {
    /// Live (non-tombstoned) rows in the block (exact).
    live_rows: u32,
    cols: Vec<ColumnZone>,
}

/// All block summaries of one table.
#[derive(Debug, Clone)]
pub struct ZoneMaps {
    ncols: usize,
    blocks: Vec<BlockZone>,
}

/// The outcome of pruning one scan against a table's zone maps: which
/// blocks survive and the exact bookkeeping both executors charge from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSkipList {
    /// Blocks the table currently spans.
    pub blocks_total: usize,
    /// Indices of blocks that may contain a matching row, ascending.
    pub survivors: Vec<u32>,
    /// Exact live rows across the surviving blocks — the row work a
    /// pruned scan is charged for, whether or not it physically skips.
    pub surviving_rows: u64,
}

impl BlockSkipList {
    /// Blocks proven to contain no matching row.
    pub fn blocks_pruned(&self) -> usize {
        self.blocks_total - self.survivors.len()
    }
}

/// Raw state of one table's zone maps, produced by [`ZoneMaps::snapshot`].
/// Zones are widen-only (deleted values keep widening history), so they are
/// a function of the full mutation history and cannot be recomputed from
/// live rows — a checkpoint must carry them verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneSnapshot {
    /// Column count of the owning table.
    pub ncols: usize,
    /// Per block: exact live-row count, then per column
    /// `(min, max, null_count)`.
    pub blocks: Vec<(u32, Vec<(Option<Value>, Option<Value>, u32)>)>,
}

impl ZoneMaps {
    /// Empty zone maps for a table of `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        ZoneMaps {
            ncols,
            blocks: Vec::new(),
        }
    }

    /// Raw state dump for checkpointing.
    pub fn snapshot(&self) -> ZoneSnapshot {
        ZoneSnapshot {
            ncols: self.ncols,
            blocks: self
                .blocks
                .iter()
                .map(|b| {
                    (
                        b.live_rows,
                        b.cols
                            .iter()
                            .map(|c| (c.min.clone(), c.max.clone(), c.nulls))
                            .collect(),
                    )
                })
                .collect(),
        }
    }

    /// Rebuilds zone maps from a [`ZoneMaps::snapshot`], field for field.
    pub fn from_snapshot(s: ZoneSnapshot) -> ZoneMaps {
        ZoneMaps {
            ncols: s.ncols,
            blocks: s
                .blocks
                .into_iter()
                .map(|(live_rows, cols)| BlockZone {
                    live_rows,
                    cols: cols
                        .into_iter()
                        .map(|(min, max, nulls)| ColumnZone { min, max, nulls })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Number of blocks the table's slot space currently spans.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Exact live rows in block `b` (0 for out-of-range blocks).
    pub fn live_rows(&self, b: usize) -> usize {
        self.blocks.get(b).map_or(0, |z| z.live_rows as usize)
    }

    /// Exact NULL count of `column` among block `b`'s live rows.
    pub fn nulls(&self, b: usize, column: ColumnId) -> usize {
        self.blocks
            .get(b)
            .and_then(|z| z.cols.get(column.index()))
            .map_or(0, |c| c.nulls as usize)
    }

    fn block_mut(&mut self, b: usize) -> &mut BlockZone {
        while self.blocks.len() <= b {
            self.blocks.push(BlockZone {
                live_rows: 0,
                cols: vec![ColumnZone::default(); self.ncols],
            });
        }
        &mut self.blocks[b]
    }

    /// Accounts a freshly inserted row (one value per column).
    pub fn note_insert(&mut self, row: RowId, values: &[Value]) {
        debug_assert_eq!(values.len(), self.ncols);
        let zone = self.block_mut(block_of(row));
        zone.live_rows += 1;
        for (cz, v) in zone.cols.iter_mut().zip(values) {
            if v.is_null() {
                cz.nulls += 1;
            } else {
                cz.widen(v);
            }
        }
    }

    /// Accounts a tombstoned row; `was_null[c]` is whether column `c` held
    /// NULL. Min/max stay put (widen-only).
    pub fn note_delete(&mut self, row: RowId, was_null: &[bool]) {
        debug_assert_eq!(was_null.len(), self.ncols);
        let zone = self.block_mut(block_of(row));
        zone.live_rows -= 1;
        for (cz, null) in zone.cols.iter_mut().zip(was_null) {
            if *null {
                cz.nulls -= 1;
            }
        }
    }

    /// Accounts an in-place overwrite of one cell.
    pub fn note_update(&mut self, row: RowId, column: ColumnId, was_null: bool, new: &Value) {
        let zone = self.block_mut(block_of(row));
        let cz = &mut zone.cols[column.index()];
        match (was_null, new.is_null()) {
            (true, false) => cz.nulls -= 1,
            (false, true) => cz.nulls += 1,
            _ => {}
        }
        cz.widen(new);
    }

    /// Prunes the table's blocks against a conjunction of per-column
    /// interval constraints. With no constraints every non-empty block
    /// survives (a pruned scan degenerates to a full scan plus metadata
    /// probes).
    pub fn skip_list(&self, constraints: &[(ColumnId, Interval)]) -> BlockSkipList {
        let mut survivors = Vec::new();
        let mut surviving_rows = 0u64;
        for (b, zone) in self.blocks.iter().enumerate() {
            if zone.live_rows == 0 {
                continue;
            }
            let survives = constraints.iter().all(|(cid, iv)| {
                let cz = &zone.cols[cid.index()];
                // an interval predicate never matches NULL, so a block
                // whose live rows are all NULL in this column is prunable
                u64::from(cz.nulls) < u64::from(zone.live_rows) && cz.may_match(iv)
            });
            if survives {
                survivors.push(b as u32);
                surviving_rows += u64::from(zone.live_rows);
            }
        }
        BlockSkipList {
            blocks_total: self.blocks.len(),
            survivors,
            surviving_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// 3 blocks of sequential ids: block b holds b*BLOCK_SIZE..(b+1)*BLOCK_SIZE.
    fn sequential(nblocks: usize) -> ZoneMaps {
        let mut z = ZoneMaps::new(1);
        for r in 0..nblocks * BLOCK_SIZE {
            z.note_insert(r as RowId, &[int(r as i64)]);
        }
        z
    }

    #[test]
    fn point_predicate_prunes_to_one_block() {
        let z = sequential(3);
        let skip = z.skip_list(&[(ColumnId(0), Interval::point(int(2048)))]);
        assert_eq!(skip.blocks_total, 3);
        assert_eq!(skip.survivors, vec![2]);
        assert_eq!(skip.blocks_pruned(), 2);
        assert_eq!(skip.surviving_rows, BLOCK_SIZE as u64);
    }

    #[test]
    fn range_predicate_keeps_straddling_blocks() {
        let z = sequential(3);
        let skip = z.skip_list(&[(ColumnId(0), Interval::between(int(1000), int(1100)))]);
        assert_eq!(skip.survivors, vec![0, 1]);
    }

    #[test]
    fn exclusive_bounds_prune_boundary_blocks() {
        let z = sequential(2);
        // x > max of block 0 (=1023): block 0 is prunable only with the
        // exclusive comparison
        let skip = z.skip_list(&[(ColumnId(0), Interval::at_least(int(1023), false))]);
        assert_eq!(skip.survivors, vec![1]);
        let skip = z.skip_list(&[(ColumnId(0), Interval::at_least(int(1023), true))]);
        assert_eq!(skip.survivors, vec![0, 1]);
    }

    #[test]
    fn no_constraints_keeps_everything() {
        let z = sequential(2);
        let skip = z.skip_list(&[]);
        assert_eq!(skip.survivors, vec![0, 1]);
        assert_eq!(skip.surviving_rows, 2 * BLOCK_SIZE as u64);
    }

    #[test]
    fn all_null_block_is_pruned() {
        let mut z = ZoneMaps::new(1);
        for r in 0..10 {
            z.note_insert(r, &[Value::Null]);
        }
        let skip = z.skip_list(&[(ColumnId(0), Interval::at_least(int(0), true))]);
        assert!(skip.survivors.is_empty());
        assert_eq!(skip.blocks_total, 1);
    }

    #[test]
    fn delete_and_update_keep_counts_exact() {
        let mut z = ZoneMaps::new(1);
        z.note_insert(0, &[int(5)]);
        z.note_insert(1, &[Value::Null]);
        assert_eq!(z.live_rows(0), 2);
        assert_eq!(z.nulls(0, ColumnId(0)), 1);
        // NULL -> value
        z.note_update(1, ColumnId(0), true, &int(7));
        assert_eq!(z.nulls(0, ColumnId(0)), 0);
        // value -> NULL
        z.note_update(0, ColumnId(0), false, &Value::Null);
        assert_eq!(z.nulls(0, ColumnId(0)), 1);
        // delete the NULL row
        z.note_delete(0, &[true]);
        assert_eq!(z.live_rows(0), 1);
        assert_eq!(z.nulls(0, ColumnId(0)), 0);
    }

    #[test]
    fn minmax_widen_only_is_conservative() {
        let mut z = ZoneMaps::new(1);
        z.note_insert(0, &[int(100)]);
        z.note_insert(1, &[int(200)]);
        z.note_delete(1, &[false]);
        // 200 is gone but the envelope still covers it: block survives
        // (conservative), never wrongly pruned
        let skip = z.skip_list(&[(ColumnId(0), Interval::point(int(200)))]);
        assert_eq!(skip.survivors, vec![0]);
        // values outside the widened envelope still prune
        let skip = z.skip_list(&[(ColumnId(0), Interval::point(int(300)))]);
        assert!(skip.survivors.is_empty());
    }

    #[test]
    fn empty_blocks_are_skipped() {
        let mut z = ZoneMaps::new(1);
        z.note_insert(0, &[int(1)]);
        z.note_delete(0, &[false]);
        let skip = z.skip_list(&[]);
        assert!(skip.survivors.is_empty());
        assert_eq!(skip.blocks_total, 1);
    }

    #[test]
    fn string_zones_prune_lexicographically() {
        let mut z = ZoneMaps::new(1);
        z.note_insert(0, &[Value::str("Audi")]);
        z.note_insert(1, &[Value::str("Honda")]);
        let keep = z.skip_list(&[(ColumnId(0), Interval::point(Value::str("Honda")))]);
        assert_eq!(keep.survivors, vec![0]);
        let prune = z.skip_list(&[(ColumnId(0), Interval::point(Value::str("Toyota")))]);
        assert!(prune.survivors.is_empty());
    }
}
