//! Columnar sample frames — dense typed gathers of a sample's used columns.
//!
//! Statistics collection evaluates every candidate predicate group against
//! the same fixed-size sample. Doing that through [`Table::value`] costs a
//! `Value` clone (and, for strings, an `Arc` bump) per *row × predicate*
//! probe. A [`SampleFrame`] instead gathers each used column **once** into
//! contiguous typed buffers (`Vec<i64>` / `Vec<f64>` / `Vec<Arc<str>>` plus
//! a validity bitmap), so predicate bitset construction runs over dense
//! slices. The per-column axis min/max that collection needs for histogram
//! frames is folded into the same gather pass, eliminating the separate
//! re-scan.
//!
//! The gather is a pure projection: `frame.column(c)` holds exactly the
//! values `table.value(rows[i], c)` would return, in sample order, so any
//! evaluation over the frame is bit-identical to the row-oriented path.

use crate::row::RowId;
use crate::table::Table;
use jits_common::{ColumnId, DataType, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The typed payload of one gathered column (slot order = sample order).
#[derive(Debug, Clone)]
pub enum FrameValues {
    /// Integer column payload.
    Int(Vec<i64>),
    /// Float column payload.
    Float(Vec<f64>),
    /// String column payload.
    Str(Vec<Arc<str>>),
}

/// One gathered column: typed values, validity, and the axis min/max of the
/// non-NULL entries (same axis projection as [`Table::axis_value`]:
/// numbers map to themselves, strings through `lex_code`).
#[derive(Debug, Clone)]
pub struct FrameColumn {
    /// Typed payload; NULL slots hold the type's default.
    pub values: FrameValues,
    /// Per-slot validity (false = NULL).
    pub validity: Vec<bool>,
    /// Minimum axis value over non-NULL slots (`f64::INFINITY` if none).
    pub axis_min: f64,
    /// Maximum axis value over non-NULL slots (`f64::NEG_INFINITY` if none).
    pub axis_max: f64,
    /// Number of non-NULL slots.
    pub non_null: usize,
}

impl FrameColumn {
    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match &self.values {
            FrameValues::Int(_) => DataType::Int,
            FrameValues::Float(_) => DataType::Float,
            FrameValues::Str(_) => DataType::Str,
        }
    }

    /// Number of gathered slots.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True if nothing was gathered.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Materializes slot `i` as a [`Value`] — the fallback for predicate
    /// kinds without a typed fast path. Identical to what
    /// [`Table::value`] returns for the source row.
    pub fn value(&self, i: usize) -> Value {
        if !self.validity[i] {
            return Value::Null;
        }
        match &self.values {
            FrameValues::Int(v) => Value::Int(v[i]),
            FrameValues::Float(v) => Value::Float(v[i]),
            FrameValues::Str(v) => Value::Str(Arc::clone(&v[i])),
        }
    }
}

/// A columnar gather of selected columns over a sample of rows.
#[derive(Debug, Clone)]
pub struct SampleFrame {
    len: usize,
    columns: BTreeMap<ColumnId, FrameColumn>,
}

impl SampleFrame {
    /// Gathers `cols` of `table` at `rows` (duplicated column ids are
    /// gathered once).
    pub fn gather(table: &Table, rows: &[RowId], cols: &[ColumnId]) -> SampleFrame {
        let mut columns = BTreeMap::new();
        for &cid in cols {
            columns
                .entry(cid)
                .or_insert_with(|| table.gather_column(cid, rows));
        }
        SampleFrame {
            len: rows.len(),
            columns,
        }
    }

    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sample was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The gathered column, if `cid` was in the gather list.
    pub fn column(&self, cid: ColumnId) -> Option<&FrameColumn> {
        self.columns.get(&cid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::Schema;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("price", DataType::Float),
        ]);
        let mut t = Table::new("car", schema);
        for (id, make, price) in [
            (1i64, Some("Toyota"), 10.5f64),
            (2, Some("Honda"), 8.25),
            (3, None, 12.0),
            (4, Some("Audi"), 30.0),
        ] {
            let m = match make {
                Some(s) => Value::str(s),
                None => Value::Null,
            };
            t.insert(vec![Value::Int(id), m, Value::Float(price)])
                .unwrap();
        }
        t
    }

    #[test]
    fn gather_matches_table_values() {
        let t = table();
        let rows: Vec<RowId> = vec![3, 0, 2];
        let cols = [ColumnId(0), ColumnId(1), ColumnId(2)];
        let frame = SampleFrame::gather(&t, &rows, &cols);
        assert_eq!(frame.len(), 3);
        for &cid in &cols {
            let fc = frame.column(cid).unwrap();
            assert_eq!(fc.len(), 3);
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(fc.value(i), t.value(r, cid), "col {cid} slot {i}");
            }
        }
    }

    #[test]
    fn axis_minmax_folded_into_gather() {
        let t = table();
        let rows: Vec<RowId> = vec![0, 1, 2, 3];
        let frame = SampleFrame::gather(&t, &rows, &[ColumnId(0), ColumnId(1), ColumnId(2)]);
        let ids = frame.column(ColumnId(0)).unwrap();
        assert_eq!((ids.axis_min, ids.axis_max), (1.0, 4.0));
        assert_eq!(ids.non_null, 4);
        let price = frame.column(ColumnId(2)).unwrap();
        assert_eq!((price.axis_min, price.axis_max), (8.25, 30.0));
        // strings go through the same lex_code axis as Table::axis_value,
        // and the NULL at row 2 is skipped
        let make = frame.column(ColumnId(1)).unwrap();
        assert_eq!(make.non_null, 3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in [0u32, 1, 3] {
            let a = t.axis_value(r, ColumnId(1)).unwrap();
            lo = lo.min(a);
            hi = hi.max(a);
        }
        assert_eq!((make.axis_min, make.axis_max), (lo, hi));
    }

    #[test]
    fn empty_gather_has_sentinel_minmax() {
        let t = table();
        let frame = SampleFrame::gather(&t, &[], &[ColumnId(0)]);
        assert!(frame.is_empty());
        let fc = frame.column(ColumnId(0)).unwrap();
        assert!(fc.is_empty());
        assert_eq!(fc.axis_min, f64::INFINITY);
        assert_eq!(fc.axis_max, f64::NEG_INFINITY);
        assert_eq!(fc.non_null, 0);
    }
}
