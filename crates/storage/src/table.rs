//! Tables: column vectors + tombstones + UDI counters + indexes.

use crate::column::Column;
use crate::index::{HashIndex, SecondaryIndex};
use crate::row::{Row, RowId};
use crate::udi::UdiCounter;
use crate::zonemap::{BlockSkipList, ZoneMaps, ZoneSnapshot, BLOCK_SIZE};
use jits_common::{ColumnId, Interval, JitsError, Result, Schema, Value};
use std::collections::BTreeMap;

/// Raw state of one table, produced by [`Table::snapshot`] for
/// checkpointing. Everything history-dependent travels verbatim: dead
/// slots (row ids must stay stable), the UDI triple, the lifetime
/// mutation epoch (versions cached samples), per-key index row order
/// (chronological append / `swap_remove` state), and the widen-only zone
/// envelopes, so [`Table::from_snapshot`] reproduces the table
/// bit-identically for every observable API.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Table name.
    pub name: String,
    /// Table schema.
    pub schema: Schema,
    /// Every physical slot in `RowId` order: the row's values and its
    /// live flag (dead slots keep their last values).
    pub slots: Vec<(Vec<Value>, bool)>,
    /// UDI counters as `(inserts, updates, deletes)`.
    pub udi: (u64, u64, u64),
    /// Lifetime mutation epoch.
    pub epoch: u64,
    /// Indexed columns with their B-tree entries in
    /// [`SecondaryIndex::entries_in_order`] order; both index kinds are
    /// rebuilt from the same entries.
    pub indexes: Vec<(ColumnId, Vec<(Value, Vec<RowId>)>)>,
    /// Per-block zone-map state.
    pub zones: ZoneSnapshot,
}

/// An in-memory table.
///
/// Rows are appended; DELETE tombstones rows in place so [`RowId`]s stay
/// stable for indexes and samples. All mutations tick the [`UdiCounter`].
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    live: Vec<bool>,
    live_count: usize,
    udi: UdiCounter,
    /// Total mutations over the table's lifetime. Unlike the UDI counter it
    /// is *never* reset, so cached artifacts (samples) can be versioned
    /// against it without racing statistics collection's `reset_udi`.
    epoch: u64,
    /// Keyed by `BTreeMap`: index maintenance and [`Table::indexed_columns`]
    /// iterate this map, and their order must not depend on hash state.
    indexes: BTreeMap<ColumnId, SecondaryIndex>,
    /// Equality-key hash indexes, one per indexed column, maintained in
    /// lock-step with `indexes` (probe-only, never iterated).
    hash_indexes: BTreeMap<ColumnId, HashIndex>,
    /// Per-block zone maps (min/max/NULLs per column, live rows per
    /// block), updated under the same epoch tick as the data they
    /// summarize.
    zones: ZoneMaps,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::new(c.dtype))
            .collect();
        let ncols = schema.len();
        Table {
            name: name.into(),
            schema,
            columns,
            live: Vec::new(),
            live_count: 0,
            udi: UdiCounter::new(),
            epoch: 0,
            indexes: BTreeMap::new(),
            hash_indexes: BTreeMap::new(),
            zones: ZoneMaps::new(ncols),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live (non-deleted) rows.
    pub fn row_count(&self) -> usize {
        self.live_count
    }

    /// Number of physical slots, including tombstones. `RowId`s range over
    /// `0..slot_count()`.
    pub fn slot_count(&self) -> usize {
        self.live.len()
    }

    /// True if the row id refers to a live row.
    #[inline]
    pub fn is_live(&self, row: RowId) -> bool {
        self.live.get(row as usize).copied().unwrap_or(false)
    }

    /// The UDI activity counter.
    pub fn udi(&self) -> &UdiCounter {
        &self.udi
    }

    /// Resets UDI counters; called by statistics collection. The mutation
    /// epoch is deliberately untouched — it versions cached samples across
    /// collections.
    pub fn reset_udi(&mut self) {
        self.udi.reset();
    }

    /// Lifetime mutation count (never reset). Two equal epochs guarantee the
    /// table's live set and cell values are unchanged between the readings.
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Inserts a row (one value per schema column) and returns its id.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        if row.len() != self.schema.len() {
            return Err(JitsError::Execution(format!(
                "INSERT into '{}' supplies {} values for {} columns",
                self.name,
                row.len(),
                self.schema.len()
            )));
        }
        let id = self.live.len() as RowId;
        // Validate all values first so a failed insert leaves columns aligned.
        let coerced: Result<Vec<Value>> = row
            .into_iter()
            .zip(self.schema.columns())
            .map(|(v, def)| {
                if v.is_null() {
                    Ok(v)
                } else {
                    v.coerce(def.dtype)
                }
            })
            .collect();
        let coerced = coerced?;
        for (col, v) in self.columns.iter_mut().zip(coerced.iter()) {
            col.push(v.clone())
                .expect("values were coerced to the column type");
        }
        let before = self.epoch;
        self.live.push(true);
        self.live_count += 1;
        self.udi.inserts += 1;
        self.epoch += 1;
        for (cid, idx) in self.indexes.iter_mut() {
            idx.insert(coerced[cid.index()].clone(), id);
        }
        for (cid, idx) in self.hash_indexes.iter_mut() {
            idx.insert(&coerced[cid.index()], id);
        }
        // Block summaries are versioned by the mutation epoch: they must
        // only change under a fresh tick, or epoch-gated consumers
        // (SampleCache invalidation, skip lists) would read a new summary
        // against stale data.
        debug_assert!(self.epoch == before + 1, "epoch must tick before zones");
        self.zones.note_insert(id, &coerced);
        Ok(id)
    }

    /// Deletes a live row; returns whether anything was deleted.
    pub fn delete(&mut self, row: RowId) -> bool {
        let i = row as usize;
        if i >= self.live.len() || !self.live[i] {
            return false;
        }
        for (cid, idx) in self.indexes.iter_mut() {
            let old = self.columns[cid.index()].get(i);
            idx.remove(&old, row);
        }
        for (cid, idx) in self.hash_indexes.iter_mut() {
            let old = self.columns[cid.index()].get(i);
            idx.remove(&old, row);
        }
        let was_null: Vec<bool> = self.columns.iter().map(|c| !c.is_valid(i)).collect();
        let before = self.epoch;
        self.live[i] = false;
        self.live_count -= 1;
        self.udi.deletes += 1;
        self.epoch += 1;
        debug_assert!(self.epoch == before + 1, "epoch must tick before zones");
        self.zones.note_delete(row, &was_null);
        true
    }

    /// Updates one column of a live row.
    pub fn update(&mut self, row: RowId, column: ColumnId, value: Value) -> Result<()> {
        let i = row as usize;
        if !self.is_live(row) {
            return Err(JitsError::Execution(format!(
                "UPDATE of dead row {row} in '{}'",
                self.name
            )));
        }
        if column.index() >= self.columns.len() {
            return Err(JitsError::NotFound(format!(
                "column {column} in '{}'",
                self.name
            )));
        }
        let coerced = if value.is_null() {
            value
        } else {
            value.coerce(self.schema.column(column).unwrap().dtype)?
        };
        if let Some(idx) = self.indexes.get_mut(&column) {
            let old = self.columns[column.index()].get(i);
            idx.remove(&old, row);
            idx.insert(coerced.clone(), row);
        }
        if let Some(idx) = self.hash_indexes.get_mut(&column) {
            let old = self.columns[column.index()].get(i);
            idx.remove(&old, row);
            idx.insert(&coerced, row);
        }
        let was_null = !self.columns[column.index()].is_valid(i);
        self.columns[column.index()].set(i, coerced.clone())?;
        let before = self.epoch;
        self.udi.updates += 1;
        self.epoch += 1;
        debug_assert!(self.epoch == before + 1, "epoch must tick before zones");
        self.zones.note_update(row, column, was_null, &coerced);
        Ok(())
    }

    /// Reads one cell.
    pub fn value(&self, row: RowId, column: ColumnId) -> Value {
        self.columns[column.index()].get(row as usize)
    }

    /// Axis (numeric) projection of one cell, `None` for NULL.
    pub fn axis_value(&self, row: RowId, column: ColumnId) -> Option<f64> {
        self.columns[column.index()].axis_value(row as usize)
    }

    /// Materializes a full row.
    pub fn row(&self, row: RowId) -> Row {
        self.columns.iter().map(|c| c.get(row as usize)).collect()
    }

    /// Iterator over live row ids.
    pub fn scan(&self) -> impl Iterator<Item = RowId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(|(i, _)| i as RowId)
    }

    /// Gathers the slots `rows` of one column into a dense typed
    /// [`FrameColumn`](crate::frame::FrameColumn) (columnar fast path for
    /// statistics collection).
    pub fn gather_column(&self, column: ColumnId, rows: &[RowId]) -> crate::frame::FrameColumn {
        self.columns[column.index()].gather(rows)
    }

    /// Whether a live row satisfies a conjunction of per-column intervals.
    pub fn row_matches(&self, row: RowId, constraints: &[(ColumnId, Interval)]) -> bool {
        constraints
            .iter()
            .all(|(cid, iv)| iv.contains(&self.value(row, *cid)))
    }

    /// Builds (or rebuilds) a secondary index on `column`.
    pub fn create_index(&mut self, column: ColumnId) -> Result<()> {
        if column.index() >= self.columns.len() {
            return Err(JitsError::NotFound(format!(
                "column {column} in '{}'",
                self.name
            )));
        }
        let mut idx = SecondaryIndex::new();
        let mut hash = HashIndex::new();
        for row in self.scan() {
            let v = self.value(row, column);
            hash.insert(&v, row);
            idx.insert(v, row);
        }
        self.indexes.insert(column, idx);
        self.hash_indexes.insert(column, hash);
        Ok(())
    }

    /// The index on `column`, if one exists.
    pub fn index(&self, column: ColumnId) -> Option<&SecondaryIndex> {
        self.indexes.get(&column)
    }

    /// The equality-key hash index on `column`, if one exists.
    pub fn hash_index(&self, column: ColumnId) -> Option<&HashIndex> {
        self.hash_indexes.get(&column)
    }

    /// The table's per-block zone maps.
    pub fn zone_maps(&self) -> &ZoneMaps {
        &self.zones
    }

    /// Prunes the table's blocks against per-column interval constraints
    /// (see [`ZoneMaps::skip_list`]).
    pub fn skip_list(&self, constraints: &[(ColumnId, Interval)]) -> BlockSkipList {
        self.zones.skip_list(constraints)
    }

    /// Live row ids of zone-map block `b`, ascending.
    pub fn block_rows(&self, b: usize) -> impl Iterator<Item = RowId> + '_ {
        let lo = b * BLOCK_SIZE;
        let hi = ((b + 1) * BLOCK_SIZE).min(self.live.len());
        (lo..hi).filter(|&i| self.live[i]).map(|i| i as RowId)
    }

    /// Columns that currently have secondary indexes.
    pub fn indexed_columns(&self) -> Vec<ColumnId> {
        let mut cols: Vec<ColumnId> = self.indexes.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Raw state dump for checkpointing. Dead-slot cell values are read
    /// through [`Column::get`], which canonicalizes invalid slots to
    /// `Value::Null` — the only forms any reader of this table observes.
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            name: self.name.clone(),
            schema: self.schema.clone(),
            slots: (0..self.live.len())
                .map(|i| {
                    (
                        self.columns.iter().map(|c| c.get(i)).collect(),
                        self.live[i],
                    )
                })
                .collect(),
            udi: (self.udi.inserts, self.udi.updates, self.udi.deletes),
            epoch: self.epoch,
            indexes: self
                .indexes
                .iter()
                .map(|(cid, idx)| {
                    (
                        *cid,
                        idx.entries_in_order()
                            .map(|(v, rows)| (v.clone(), rows.to_vec()))
                            .collect(),
                    )
                })
                .collect(),
            zones: self.zones.snapshot(),
        }
    }

    /// Rebuilds a table from a [`Table::snapshot`]. Slots are pushed
    /// directly into the column vectors (no epoch ticks, no index or zone
    /// maintenance — those travel in the snapshot verbatim), then both
    /// index kinds are rebuilt by re-inserting the snapshot's entries in
    /// stored order, which reproduces their per-key row vectors exactly.
    pub fn from_snapshot(s: TableSnapshot) -> Result<Table> {
        let ncols = s.schema.len();
        let mut t = Table::new(s.name, s.schema);
        for (row, live) in s.slots {
            if row.len() != ncols {
                return Err(JitsError::Recovery(format!(
                    "table '{}' snapshot slot has {} values for {} columns",
                    t.name,
                    row.len(),
                    ncols
                )));
            }
            for (col, v) in t.columns.iter_mut().zip(row) {
                col.push(v).map_err(|e| {
                    JitsError::Recovery(format!(
                        "table '{}' snapshot value does not fit its column: {e}",
                        t.name
                    ))
                })?;
            }
            t.live.push(live);
            if live {
                t.live_count += 1;
            }
        }
        t.udi.inserts = s.udi.0;
        t.udi.updates = s.udi.1;
        t.udi.deletes = s.udi.2;
        t.epoch = s.epoch;
        for (cid, entries) in s.indexes {
            let mut idx = SecondaryIndex::new();
            let mut hash = HashIndex::new();
            for (v, rows) in entries {
                for r in rows {
                    hash.insert(&v, r);
                    idx.insert(v.clone(), r);
                }
            }
            t.indexes.insert(cid, idx);
            t.hash_indexes.insert(cid, hash);
        }
        t.zones = ZoneMaps::from_snapshot(s.zones);
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::DataType;

    fn cars() -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("year", DataType::Int),
        ]);
        let mut t = Table::new("car", schema);
        for (id, make, year) in [
            (1i64, "Toyota", 2001i64),
            (2, "Toyota", 2003),
            (3, "Honda", 2001),
            (4, "Audi", 2005),
        ] {
            t.insert(vec![Value::Int(id), Value::str(make), Value::Int(year)])
                .unwrap();
        }
        t
    }

    #[test]
    fn insert_scan_and_counts() {
        let t = cars();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.scan().count(), 4);
        assert_eq!(t.udi().inserts, 4);
        assert_eq!(t.value(0, ColumnId(1)), Value::str("Toyota"));
    }

    #[test]
    fn insert_arity_mismatch() {
        let mut t = cars();
        assert!(t.insert(vec![Value::Int(9)]).is_err());
        assert_eq!(t.row_count(), 4, "failed insert must not add a row");
    }

    #[test]
    fn insert_type_mismatch_keeps_columns_aligned() {
        let mut t = cars();
        let err = t.insert(vec![Value::str("x"), Value::str("y"), Value::Int(1)]);
        assert!(err.is_err());
        assert_eq!(t.slot_count(), 4);
        // subsequent valid insert still works
        t.insert(vec![Value::Int(5), Value::str("BMW"), Value::Int(2000)])
            .unwrap();
        assert_eq!(t.value(4, ColumnId(1)), Value::str("BMW"));
    }

    #[test]
    fn delete_tombstones() {
        let mut t = cars();
        assert!(t.delete(1));
        assert!(!t.delete(1), "double delete is a no-op");
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.slot_count(), 4, "slots are not compacted");
        assert!(!t.is_live(1));
        assert_eq!(t.scan().collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(t.udi().deletes, 1);
    }

    #[test]
    fn update_changes_value_and_udi() {
        let mut t = cars();
        t.update(0, ColumnId(2), Value::Int(2010)).unwrap();
        assert_eq!(t.value(0, ColumnId(2)), Value::Int(2010));
        assert_eq!(t.udi().updates, 1);
        assert!(t.update(99, ColumnId(2), Value::Int(1)).is_err());
    }

    #[test]
    fn row_matches_constraints() {
        let t = cars();
        let cs = vec![
            (ColumnId(1), Interval::point(Value::str("Toyota"))),
            (ColumnId(2), Interval::at_least(Value::Int(2002), true)),
        ];
        let matches: Vec<RowId> = t.scan().filter(|r| t.row_matches(*r, &cs)).collect();
        assert_eq!(matches, vec![1]);
    }

    #[test]
    fn index_maintenance_through_dml() {
        let mut t = cars();
        t.create_index(ColumnId(1)).unwrap();
        assert_eq!(
            t.index(ColumnId(1))
                .unwrap()
                .lookup_eq(&Value::str("Toyota")),
            &[0, 1]
        );

        t.insert(vec![Value::Int(5), Value::str("Toyota"), Value::Int(1999)])
            .unwrap();
        assert_eq!(
            t.index(ColumnId(1))
                .unwrap()
                .lookup_eq(&Value::str("Toyota")),
            &[0, 1, 4]
        );

        t.delete(0);
        assert_eq!(
            t.index(ColumnId(1))
                .unwrap()
                .lookup_eq(&Value::str("Toyota")),
            &[4, 1]
        );

        t.update(1, ColumnId(1), Value::str("Honda")).unwrap();
        assert_eq!(
            t.index(ColumnId(1))
                .unwrap()
                .lookup_eq(&Value::str("Toyota")),
            &[4]
        );
        assert_eq!(
            t.index(ColumnId(1))
                .unwrap()
                .lookup_eq(&Value::str("Honda")),
            &[2, 1]
        );
        assert_eq!(t.indexed_columns(), vec![ColumnId(1)]);
    }

    #[test]
    fn reset_udi() {
        let mut t = cars();
        assert!(t.udi().total() > 0);
        t.reset_udi();
        assert_eq!(t.udi().total(), 0);
    }

    #[test]
    fn zone_maps_track_dml() {
        let mut t = cars();
        assert_eq!(t.zone_maps().block_count(), 1);
        assert_eq!(t.zone_maps().live_rows(0), 4);
        // year in [2001, 2005]: a disjoint predicate prunes the block
        let skip = t.skip_list(&[(ColumnId(2), Interval::at_least(Value::Int(2006), true))]);
        assert!(skip.survivors.is_empty());
        assert_eq!(skip.blocks_total, 1);
        let keep = t.skip_list(&[(ColumnId(2), Interval::point(Value::Int(2003)))]);
        assert_eq!(keep.survivors, vec![0]);
        assert_eq!(keep.surviving_rows, 4);
        // an update widens the envelope
        t.update(0, ColumnId(2), Value::Int(2010)).unwrap();
        let keep = t.skip_list(&[(ColumnId(2), Interval::at_least(Value::Int(2006), true))]);
        assert_eq!(keep.survivors, vec![0]);
        // deletes keep live counts exact
        t.delete(0);
        t.delete(1);
        assert_eq!(t.zone_maps().live_rows(0), 2);
        let keep = t.skip_list(&[(ColumnId(2), Interval::point(Value::Int(2001)))]);
        assert_eq!(keep.surviving_rows, 2);
    }

    #[test]
    fn zone_null_counts_stay_exact() {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Int)]);
        let mut t = Table::new("t", schema);
        t.insert(vec![Value::Int(0), Value::Null]).unwrap();
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        assert_eq!(t.zone_maps().nulls(0, ColumnId(1)), 2);
        // all live rows NULL in x: any interval on x prunes the block
        let skip = t.skip_list(&[(ColumnId(1), Interval::at_least(Value::Int(0), true))]);
        assert!(skip.survivors.is_empty());
        t.update(0, ColumnId(1), Value::Int(7)).unwrap();
        assert_eq!(t.zone_maps().nulls(0, ColumnId(1)), 1);
        let keep = t.skip_list(&[(ColumnId(1), Interval::point(Value::Int(7)))]);
        assert_eq!(keep.survivors, vec![0]);
        t.delete(1);
        assert_eq!(t.zone_maps().nulls(0, ColumnId(1)), 0);
    }

    #[test]
    fn block_rows_partition_the_scan() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..2500i64 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        t.delete(100);
        t.delete(1500);
        let via_blocks: Vec<RowId> = (0..t.zone_maps().block_count())
            .flat_map(|b| t.block_rows(b).collect::<Vec<_>>())
            .collect();
        assert_eq!(via_blocks, t.scan().collect::<Vec<_>>());
        assert_eq!(t.zone_maps().block_count(), 3);
    }

    #[test]
    fn hash_index_maintained_with_btree() {
        let mut t = cars();
        t.create_index(ColumnId(1)).unwrap();
        let probe = |t: &Table, v: &Value| {
            (
                t.index(ColumnId(1)).unwrap().lookup_eq(v).to_vec(),
                t.hash_index(ColumnId(1)).unwrap().lookup_eq(v).to_vec(),
            )
        };
        let (b, h) = probe(&t, &Value::str("Toyota"));
        assert_eq!(b, h);
        t.insert(vec![Value::Int(5), Value::str("Toyota"), Value::Int(1999)])
            .unwrap();
        t.delete(0);
        t.update(1, ColumnId(1), Value::str("Honda")).unwrap();
        for make in ["Toyota", "Honda", "Audi", "BMW"] {
            let (b, h) = probe(&t, &Value::str(make));
            assert_eq!(b, h, "{make}: hash and B-tree must agree exactly");
        }
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let mut t = cars();
        t.create_index(ColumnId(1)).unwrap();
        // Exercise every history-dependent feature: widened zones, a
        // tombstone, swap_remove'd index vectors, a NULL cell.
        t.insert(vec![Value::Int(5), Value::str("Toyota"), Value::Int(1999)])
            .unwrap();
        t.update(0, ColumnId(2), Value::Int(2010)).unwrap();
        t.update(2, ColumnId(1), Value::Null).unwrap();
        t.delete(1);
        let snap = t.snapshot();
        let r = Table::from_snapshot(snap.clone()).unwrap();
        assert_eq!(r.snapshot(), snap, "snapshot of the restore must match");
        assert_eq!(r.name(), t.name());
        assert_eq!(r.row_count(), t.row_count());
        assert_eq!(r.slot_count(), t.slot_count());
        assert_eq!(r.mutation_epoch(), t.mutation_epoch());
        assert_eq!(r.udi().inserts, t.udi().inserts);
        assert_eq!(r.udi().updates, t.udi().updates);
        assert_eq!(r.udi().deletes, t.udi().deletes);
        for i in 0..t.slot_count() as RowId {
            assert_eq!(r.is_live(i), t.is_live(i));
            assert_eq!(r.row(i), t.row(i), "slot {i} (dead slots included)");
        }
        // per-key index row order survives (swap_remove left [4, 0])
        assert_eq!(
            r.index(ColumnId(1)).unwrap().lookup_eq(&Value::str("Toyota")),
            t.index(ColumnId(1)).unwrap().lookup_eq(&Value::str("Toyota")),
        );
        assert_eq!(
            r.hash_index(ColumnId(1))
                .unwrap()
                .lookup_eq(&Value::str("Toyota")),
            t.hash_index(ColumnId(1))
                .unwrap()
                .lookup_eq(&Value::str("Toyota")),
        );
        // widen-only zone envelope survives even though row 0 was updated
        let skip = r.skip_list(&[(ColumnId(2), Interval::at_least(Value::Int(2006), true))]);
        assert_eq!(skip.survivors, vec![0]);
        assert_eq!(
            r.zone_maps().snapshot(),
            t.zone_maps().snapshot(),
            "zone state is carried verbatim"
        );
    }

    #[test]
    fn mutation_epoch_survives_udi_reset() {
        let mut t = cars();
        assert_eq!(t.mutation_epoch(), 4, "one tick per insert");
        t.reset_udi();
        assert_eq!(t.mutation_epoch(), 4, "epoch is never reset");
        t.update(0, ColumnId(2), Value::Int(2010)).unwrap();
        t.delete(1);
        assert_eq!(t.mutation_epoch(), 6);
        assert!(!t.delete(1), "no-op delete must not tick the epoch");
        assert_eq!(t.mutation_epoch(), 6);
    }
}
