//! Secondary B-tree indexes.
//!
//! Indexes give the optimizer a genuine access-path decision to make:
//! index-nested-loop joins and index range scans look cheap when the
//! estimated outer/matching cardinality is small — which is exactly the
//! decision misestimated selectivities sabotage, the failure mode JITS
//! exists to prevent.

use crate::row::RowId;
use jits_common::{Bound, Interval, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound as RangeBound;

/// `Value` wrapper with the total order required by `BTreeMap`.
#[derive(Debug, Clone, PartialEq)]
struct OrdValue(Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_total(&other.0)
    }
}

/// A secondary index over one column: value → row ids.
///
/// NULLs are not indexed (no predicate the engine supports matches NULL).
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    map: BTreeMap<OrdValue, Vec<RowId>>,
    entries: usize,
}

impl SecondaryIndex {
    /// An empty index.
    pub fn new() -> Self {
        SecondaryIndex::default()
    }

    /// Number of indexed (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct indexed keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Adds a row under `value`.
    pub fn insert(&mut self, value: Value, row: RowId) {
        if value.is_null() {
            return;
        }
        self.map.entry(OrdValue(value)).or_default().push(row);
        self.entries += 1;
    }

    /// Removes a row previously inserted under `value`.
    pub fn remove(&mut self, value: &Value, row: RowId) {
        if value.is_null() {
            return;
        }
        let key = OrdValue(value.clone());
        if let Some(rows) = self.map.get_mut(&key) {
            if let Some(pos) = rows.iter().position(|r| *r == row) {
                rows.swap_remove(pos);
                self.entries -= 1;
                if rows.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Rows with exactly `value`.
    pub fn lookup_eq(&self, value: &Value) -> &[RowId] {
        self.map
            .get(&OrdValue(value.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Rows whose key falls inside `interval`, in key order.
    pub fn lookup_range(&self, interval: &Interval) -> Vec<RowId> {
        let lo = match &interval.low {
            Bound::Unbounded => RangeBound::Unbounded,
            Bound::Inclusive(v) => RangeBound::Included(OrdValue(v.clone())),
            Bound::Exclusive(v) => RangeBound::Excluded(OrdValue(v.clone())),
        };
        let hi = match &interval.high {
            Bound::Unbounded => RangeBound::Unbounded,
            Bound::Inclusive(v) => RangeBound::Included(OrdValue(v.clone())),
            Bound::Exclusive(v) => RangeBound::Excluded(OrdValue(v.clone())),
        };
        let mut out = Vec::new();
        for (_, rows) in self.map.range((lo, hi)) {
            out.extend_from_slice(rows);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> SecondaryIndex {
        let mut idx = SecondaryIndex::new();
        for (i, v) in [10i64, 20, 20, 30, 40].iter().enumerate() {
            idx.insert(Value::Int(*v), i as RowId);
        }
        idx
    }

    #[test]
    fn eq_lookup() {
        let idx = build();
        assert_eq!(idx.lookup_eq(&Value::Int(20)), &[1, 2]);
        assert!(idx.lookup_eq(&Value::Int(99)).is_empty());
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.distinct_keys(), 4);
    }

    #[test]
    fn range_lookup() {
        let idx = build();
        let rows = idx.lookup_range(&Interval::between(Value::Int(20), Value::Int(30)));
        assert_eq!(rows, vec![1, 2, 3]);
        let rows = idx.lookup_range(&Interval::at_least(Value::Int(30), false));
        assert_eq!(rows, vec![4]);
        let rows = idx.lookup_range(&Interval::unbounded());
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn remove_entries() {
        let mut idx = build();
        idx.remove(&Value::Int(20), 1);
        assert_eq!(idx.lookup_eq(&Value::Int(20)), &[2]);
        idx.remove(&Value::Int(20), 2);
        assert!(idx.lookup_eq(&Value::Int(20)).is_empty());
        assert_eq!(idx.distinct_keys(), 3);
        // removing a missing entry is a no-op
        idx.remove(&Value::Int(20), 7);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn nulls_not_indexed() {
        let mut idx = SecondaryIndex::new();
        idx.insert(Value::Null, 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn string_keys() {
        let mut idx = SecondaryIndex::new();
        idx.insert(Value::str("Honda"), 0);
        idx.insert(Value::str("Toyota"), 1);
        let rows = idx.lookup_range(&Interval::at_least(Value::str("M"), true));
        assert_eq!(rows, vec![1]);
    }
}
