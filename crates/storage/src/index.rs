//! Secondary indexes: a B-tree for ranges, a hash table for equality keys.
//!
//! Indexes give the optimizer a genuine access-path decision to make:
//! index-nested-loop joins and index range scans look cheap when the
//! estimated outer/matching cardinality is small — which is exactly the
//! decision misestimated selectivities sabotage, the failure mode JITS
//! exists to prevent.
//!
//! [`SecondaryIndex`] (B-tree) answers range probes in key order;
//! [`HashIndex`] answers equality probes in O(1). A table maintains both
//! for every indexed column, with identical per-key row-vector discipline
//! (append on insert, `swap_remove` on delete), so the two structures
//! return bit-identical row lists for any equality key — the executor may
//! route a point probe to either without changing results.

use crate::row::RowId;
use jits_common::{Bound, Interval, Value};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound as RangeBound;
use std::sync::Arc;

/// `Value` wrapper with the total order required by `BTreeMap`.
#[derive(Debug, Clone, PartialEq)]
struct OrdValue(Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_total(&other.0)
    }
}

/// A secondary index over one column: value → row ids.
///
/// NULLs are not indexed (no predicate the engine supports matches NULL).
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    map: BTreeMap<OrdValue, Vec<RowId>>,
    entries: usize,
}

impl SecondaryIndex {
    /// An empty index.
    pub fn new() -> Self {
        SecondaryIndex::default()
    }

    /// Number of indexed (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct indexed keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Adds a row under `value`.
    pub fn insert(&mut self, value: Value, row: RowId) {
        if value.is_null() {
            return;
        }
        self.map.entry(OrdValue(value)).or_default().push(row);
        self.entries += 1;
    }

    /// Removes a row previously inserted under `value`.
    pub fn remove(&mut self, value: &Value, row: RowId) {
        if value.is_null() {
            return;
        }
        let key = OrdValue(value.clone());
        if let Some(rows) = self.map.get_mut(&key) {
            if let Some(pos) = rows.iter().position(|r| *r == row) {
                rows.swap_remove(pos);
                self.entries -= 1;
                if rows.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Rows with exactly `value`.
    pub fn lookup_eq(&self, value: &Value) -> &[RowId] {
        self.map
            .get(&OrdValue(value.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates `(key, rows)` in key order, each per-key row vector in its
    /// stored (chronological append / `swap_remove`) order — the raw state
    /// a checkpoint must capture. Re-inserting the pairs in this order into
    /// an empty index (B-tree or hash) reproduces it bit-identically,
    /// because `insert` appends to the per-key vector.
    pub fn entries_in_order(&self) -> impl Iterator<Item = (&Value, &[RowId])> + '_ {
        // `SecondaryIndex::map` is a BTreeMap (key order is deterministic);
        // the HashMap also named `map` in this file is `HashIndex`'s
        // jits-lint: allow(hash-iteration)
        self.map.iter().map(|(k, v)| (&k.0, v.as_slice()))
    }

    /// Rows whose key falls inside `interval`, in key order, streamed
    /// without materializing per-key vectors. Unbounded-on-both-ends
    /// intervals walk the tree lazily instead of allocating the full key
    /// range up front, and inverted intervals (contradictory predicates,
    /// `low > high`) yield nothing instead of panicking in
    /// `BTreeMap::range`.
    pub fn range_iter<'a>(&'a self, interval: &Interval) -> impl Iterator<Item = RowId> + 'a {
        let lo = match &interval.low {
            Bound::Unbounded => RangeBound::Unbounded,
            Bound::Inclusive(v) => RangeBound::Included(OrdValue(v.clone())),
            Bound::Exclusive(v) => RangeBound::Excluded(OrdValue(v.clone())),
        };
        let hi = match &interval.high {
            Bound::Unbounded => RangeBound::Unbounded,
            Bound::Inclusive(v) => RangeBound::Included(OrdValue(v.clone())),
            Bound::Exclusive(v) => RangeBound::Excluded(OrdValue(v.clone())),
        };
        // `BTreeMap::range` panics on start > end (or equal-and-excluded);
        // a contradictory conjunction is an empty result, not a crash.
        let inverted = match (&lo, &hi) {
            (RangeBound::Included(a), RangeBound::Included(b)) => a > b,
            (
                RangeBound::Included(a) | RangeBound::Excluded(a),
                RangeBound::Included(b) | RangeBound::Excluded(b),
            ) => a >= b,
            _ => false,
        };
        let range = if inverted {
            None
        } else {
            Some(self.map.range((lo, hi)))
        };
        range
            .into_iter()
            .flatten()
            .flat_map(|(_, rows)| rows.iter().copied())
    }

    /// Rows whose key falls inside `interval`, in key order (materialized
    /// convenience wrapper over [`SecondaryIndex::range_iter`]).
    pub fn lookup_range(&self, interval: &Interval) -> Vec<RowId> {
        self.range_iter(interval).collect()
    }
}

/// Hashable projection of an equality key. Floats with an integral value
/// normalize to the integer key so `Int(5)` and `Float(5.0)` collide
/// exactly as `Value::try_cmp` calls them equal (matching the B-tree's
/// total order); other floats key on their bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum HashKey {
    Int(i64),
    Float(u64),
    Str(Arc<str>),
}

impl HashKey {
    /// The key for `v`; `None` for NULL (not indexed).
    fn of(v: &Value) -> Option<HashKey> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match v {
            Value::Null => None,
            Value::Int(i) => Some(HashKey::Int(*i)),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= MAX_EXACT => {
                Some(HashKey::Int(*f as i64))
            }
            Value::Float(f) => Some(HashKey::Float(f.to_bits())),
            Value::Str(s) => Some(HashKey::Str(Arc::clone(s))),
        }
    }
}

/// A hash index over one column: equality key → row ids, O(1) probes.
///
/// Maintained beside the B-tree [`SecondaryIndex`] with the same
/// per-key row-vector discipline, so `lookup_eq` on either structure
/// returns the same rows in the same order. The map is probe-only —
/// never iterated — so hash order can't leak into any deterministic
/// output.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<HashKey, Vec<RowId>>,
    entries: usize,
}

impl HashIndex {
    /// An empty index.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Number of indexed (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct indexed keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Adds a row under `value`.
    pub fn insert(&mut self, value: &Value, row: RowId) {
        let Some(key) = HashKey::of(value) else {
            return;
        };
        self.map.entry(key).or_default().push(row);
        self.entries += 1;
    }

    /// Removes a row previously inserted under `value` (same
    /// `swap_remove` discipline as the B-tree index).
    pub fn remove(&mut self, value: &Value, row: RowId) {
        let Some(key) = HashKey::of(value) else {
            return;
        };
        if let Some(rows) = self.map.get_mut(&key) {
            if let Some(pos) = rows.iter().position(|r| *r == row) {
                rows.swap_remove(pos);
                self.entries -= 1;
                if rows.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Rows with exactly `value`.
    pub fn lookup_eq(&self, value: &Value) -> &[RowId] {
        HashKey::of(value)
            .and_then(|k| self.map.get(&k))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> SecondaryIndex {
        let mut idx = SecondaryIndex::new();
        for (i, v) in [10i64, 20, 20, 30, 40].iter().enumerate() {
            idx.insert(Value::Int(*v), i as RowId);
        }
        idx
    }

    #[test]
    fn eq_lookup() {
        let idx = build();
        assert_eq!(idx.lookup_eq(&Value::Int(20)), &[1, 2]);
        assert!(idx.lookup_eq(&Value::Int(99)).is_empty());
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.distinct_keys(), 4);
    }

    #[test]
    fn range_lookup() {
        let idx = build();
        let rows = idx.lookup_range(&Interval::between(Value::Int(20), Value::Int(30)));
        assert_eq!(rows, vec![1, 2, 3]);
        let rows = idx.lookup_range(&Interval::at_least(Value::Int(30), false));
        assert_eq!(rows, vec![4]);
        let rows = idx.lookup_range(&Interval::unbounded());
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn remove_entries() {
        let mut idx = build();
        idx.remove(&Value::Int(20), 1);
        assert_eq!(idx.lookup_eq(&Value::Int(20)), &[2]);
        idx.remove(&Value::Int(20), 2);
        assert!(idx.lookup_eq(&Value::Int(20)).is_empty());
        assert_eq!(idx.distinct_keys(), 3);
        // removing a missing entry is a no-op
        idx.remove(&Value::Int(20), 7);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn nulls_not_indexed() {
        let mut idx = SecondaryIndex::new();
        idx.insert(Value::Null, 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn string_keys() {
        let mut idx = SecondaryIndex::new();
        idx.insert(Value::str("Honda"), 0);
        idx.insert(Value::str("Toyota"), 1);
        let rows = idx.lookup_range(&Interval::at_least(Value::str("M"), true));
        assert_eq!(rows, vec![1]);
    }

    #[test]
    fn unbounded_range_streams_without_allocation() {
        let idx = build();
        // both ends unbounded: the iterator walks keys lazily
        let mut it = idx.range_iter(&Interval::unbounded());
        assert_eq!(it.next(), Some(0));
        assert_eq!(idx.range_iter(&Interval::unbounded()).count(), 5);
    }

    #[test]
    fn inverted_range_is_empty_not_a_panic() {
        let idx = build();
        // contradictory conjunction: x >= 30 AND x <= 20
        let iv = Interval::at_least(Value::Int(30), true)
            .intersect(&Interval::at_most(Value::Int(20), true));
        assert!(idx.lookup_range(&iv).is_empty());
        // degenerate exclusive-exclusive point
        let iv = Interval {
            low: Bound::Exclusive(Value::Int(20)),
            high: Bound::Exclusive(Value::Int(20)),
        };
        assert!(idx.lookup_range(&iv).is_empty());
    }

    fn build_hash() -> HashIndex {
        let mut idx = HashIndex::new();
        for (i, v) in [10i64, 20, 20, 30, 40].iter().enumerate() {
            idx.insert(&Value::Int(*v), i as RowId);
        }
        idx
    }

    #[test]
    fn hash_eq_lookup_matches_btree() {
        let (h, b) = (build_hash(), build());
        for v in [10i64, 20, 30, 40, 99] {
            assert_eq!(h.lookup_eq(&Value::Int(v)), b.lookup_eq(&Value::Int(v)));
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.distinct_keys(), 4);
    }

    #[test]
    fn hash_remove_mirrors_btree_order() {
        let (mut h, mut b) = (build_hash(), build());
        h.remove(&Value::Int(20), 1);
        b.remove(&Value::Int(20), 1);
        assert_eq!(h.lookup_eq(&Value::Int(20)), b.lookup_eq(&Value::Int(20)));
        h.remove(&Value::Int(20), 7); // missing entry: no-op
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn hash_numeric_keys_collide_like_try_cmp() {
        let mut h = HashIndex::new();
        h.insert(&Value::Float(5.0), 0);
        assert_eq!(h.lookup_eq(&Value::Int(5)), &[0]);
        h.insert(&Value::Float(5.5), 1);
        assert_eq!(h.lookup_eq(&Value::Float(5.5)), &[1]);
        assert!(h.lookup_eq(&Value::Int(6)).is_empty());
    }

    #[test]
    fn hash_nulls_not_indexed() {
        let mut h = HashIndex::new();
        h.insert(&Value::Null, 0);
        assert!(h.is_empty());
        assert!(h.lookup_eq(&Value::Null).is_empty());
    }
}
