//! Versioned per-table sample cache.
//!
//! The paper's collection strategy re-draws a fixed-size uniform sample for
//! every query that marks a table — the dominant per-query cost of JITS
//! (§4). *Sampling-Based Query Re-Optimization* (Wu et al., VLDB 2016)
//! observes that samples can be **reused** across optimization calls as
//! long as the underlying data has not drifted. [`SampleCache`] memoizes
//! the drawn row ids per table, versioned by the table's never-resetting
//! [`mutation epoch`](crate::Table::mutation_epoch), and invalidates with
//! the same staleness shape as the paper's Algorithm 3 activity signal
//! `s2 = min(UDI / cardinality, 1)`: mutations since the draw, normalized
//! by the cardinality at draw time. A lightly-mutated table serves its
//! cached sample (the staleness is surfaced to tracing); a churned table
//! re-draws.
//!
//! Row ids are stable (deletes tombstone, never compact), so a cached
//! sample remains addressable no matter how the table has mutated since;
//! serving a slightly-stale sample is exactly the approximation the paper
//! already accepts between collections, and the threshold bounds it.
//!
//! Entries also memoize two artifacts *derived* from the sample: the
//! **gathered columnar frames** (typed [`FrameColumn`] buffers per used
//! column) and the **per-predicate bitsets** (one bit per sample slot,
//! keyed by an opaque predicate fingerprint the collection layer
//! computes). Unlike the row ids, both snapshot cell *values*, so they are
//! served only on an **exact epoch match** — any mutation at all and
//! collection re-derives them from the table, which makes a served
//! artifact bit-identical to a fresh one by construction. Artifacts
//! produced by later queries at the same epoch are merged in, so different
//! query shapes accumulate one artifact set per sample version; a redraw
//! replaces the entry and all its artifacts wholesale.
//!
//! The cache itself is lock-free storage: the engine wraps it in a ranked
//! `RwLock` (rank 6, between `predcache` and `setting`) and performs all
//! lookups **sequentially in quantifier order** before fanning collection
//! out to worker threads, so cache decisions are independent of
//! `collect_threads` and identical across concurrent sessions.

use crate::frame::FrameColumn;
use crate::row::RowId;
use crate::sample::SampleSpec;
use jits_common::{ColumnId, TableId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One memoized draw.
#[derive(Debug, Clone)]
pub struct CachedSample {
    /// The spec the sample was drawn under (spec mismatch = miss).
    pub spec: SampleSpec,
    /// Table mutation epoch at draw time.
    pub epoch: u64,
    /// Live row count at draw time (the staleness denominator).
    pub rows_at_draw: u64,
    /// The drawn row ids, in draw order.
    pub rows: Arc<Vec<RowId>>,
    /// Slot probes the draw cost — replayed on hits so the collection-cost
    /// signal stays deterministic whether a sample is fresh or served.
    pub probes: usize,
    /// Times this entry has been served.
    pub hits: u64,
    /// Columnar gathers of the sample, keyed by column. Valid only at
    /// `epoch` exactly: a gather snapshots cell values, and any mutation
    /// could have changed them even if the row ids still qualify.
    pub frames: BTreeMap<ColumnId, Arc<FrameColumn>>,
    /// Predicate bitsets over the sample (bit `i` = slot `i` matches),
    /// keyed by an opaque predicate fingerprint chosen by the collection
    /// layer. Same exact-epoch validity as `frames`, from which they
    /// derive.
    pub bitsets: BTreeMap<String, Arc<Vec<u64>>>,
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Staleness below the limit: serve the cached rows.
    Hit {
        /// The cached row ids.
        rows: Arc<Vec<RowId>>,
        /// Slot probes the original draw cost.
        probes: usize,
        /// Mutations since the draw over cardinality at draw, in `[0, 1]`.
        staleness: f64,
        /// The memoized columnar gathers — populated only on an **exact**
        /// epoch match (staleness from zero mutations), empty when the
        /// entry is served stale-but-below-limit and cell values may have
        /// drifted.
        frames: BTreeMap<ColumnId, Arc<FrameColumn>>,
        /// The memoized predicate bitsets — same exact-epoch rule as
        /// `frames`.
        bitsets: BTreeMap<String, Arc<Vec<u64>>>,
    },
    /// No usable entry (cold table or spec mismatch): draw fresh.
    Miss,
    /// Entry exists but drifted past the limit: re-draw.
    Stale {
        /// The staleness that tripped the limit.
        staleness: f64,
    },
}

/// Lifetime counters, surfaced through metrics and the
/// `jits_sample_cache` system view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups with no usable entry.
    pub misses: u64,
    /// Lookups invalidated by staleness.
    pub stale_redraws: u64,
}

/// The cache: table id → memoized sample, deterministically ordered.
#[derive(Debug, Default)]
pub struct SampleCache {
    entries: BTreeMap<TableId, CachedSample>,
    counters: CacheCounters,
}

/// Staleness of an entry drawn at `(entry_epoch, rows_at_draw)` observed at
/// `epoch_now` — the Algorithm 3 `s2` shape: mutations since the draw over
/// cardinality at the draw, clamped to `[0, 1]`.
pub fn sample_staleness(entry_epoch: u64, rows_at_draw: u64, epoch_now: u64) -> f64 {
    let delta = epoch_now.saturating_sub(entry_epoch);
    if rows_at_draw == 0 {
        // sample drawn from an empty table: any mutation invalidates it
        return if delta > 0 { 1.0 } else { 0.0 };
    }
    (delta as f64 / rows_at_draw as f64).min(1.0)
}

impl SampleCache {
    /// An empty cache.
    pub fn new() -> Self {
        SampleCache::default()
    }

    /// Looks up `tid` at the table's current `epoch_now`, serving the entry
    /// if its staleness is below `limit`. Ticks the outcome counters.
    pub fn lookup(
        &mut self,
        tid: TableId,
        spec: SampleSpec,
        epoch_now: u64,
        limit: f64,
    ) -> CacheLookup {
        match self.entries.get_mut(&tid) {
            Some(e) if e.spec == spec => {
                let staleness = sample_staleness(e.epoch, e.rows_at_draw, epoch_now);
                if staleness < limit {
                    e.hits += 1;
                    self.counters.hits += 1;
                    let (frames, bitsets) = if epoch_now == e.epoch {
                        (e.frames.clone(), e.bitsets.clone())
                    } else {
                        (BTreeMap::new(), BTreeMap::new())
                    };
                    CacheLookup::Hit {
                        rows: Arc::clone(&e.rows),
                        probes: e.probes,
                        staleness,
                        frames,
                        bitsets,
                    }
                } else {
                    self.counters.stale_redraws += 1;
                    CacheLookup::Stale { staleness }
                }
            }
            _ => {
                self.counters.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Memoizes a fresh draw for `tid`, replacing any previous entry.
    pub fn store(&mut self, tid: TableId, sample: CachedSample) {
        self.entries.insert(tid, sample);
    }

    /// Merges derived artifacts (columnar gathers and predicate bitsets)
    /// into `tid`'s entry — only if the entry still matches `spec` and was
    /// drawn at exactly `epoch` (artifacts made on a stale-but-served
    /// sample snapshot *newer* cell values and must not contaminate the
    /// older sample version). Re-derivations of an already cached artifact
    /// are identical by construction, so first-in wins.
    pub fn merge_artifacts(
        &mut self,
        tid: TableId,
        spec: SampleSpec,
        epoch: u64,
        frames: &[(ColumnId, Arc<FrameColumn>)],
        bitsets: &[(String, Arc<Vec<u64>>)],
    ) {
        if let Some(e) = self.entries.get_mut(&tid) {
            if e.spec == spec && e.epoch == epoch {
                for (col, fc) in frames {
                    e.frames.entry(*col).or_insert_with(|| Arc::clone(fc));
                }
                for (key, bits) in bitsets {
                    e.bitsets
                        .entry(key.clone())
                        .or_insert_with(|| Arc::clone(bits));
                }
            }
        }
    }

    /// Drops the entry for `tid` (DDL on the table).
    pub fn invalidate(&mut self, tid: TableId) {
        self.entries.remove(&tid);
    }

    /// Drops every entry; counters survive (they are lifetime totals).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime outcome counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Restores the lifetime counters from a checkpoint. The counters are
    /// decision-visible (metrics, `jits_sample_cache` view), so recovery
    /// must resume them rather than restart from zero.
    pub fn restore_counters(&mut self, counters: CacheCounters) {
        self.counters = counters;
    }

    /// Iterates the entries in table-id order (system-view substrate).
    pub fn entries(&self) -> impl Iterator<Item = (TableId, &CachedSample)> + '_ {
        self.entries.iter().map(|(tid, e)| (*tid, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached(epoch: u64, rows_at_draw: u64) -> CachedSample {
        CachedSample {
            spec: SampleSpec::fixed(100),
            epoch,
            rows_at_draw,
            rows: Arc::new(vec![1, 2, 3]),
            probes: 7,
            hits: 0,
            frames: BTreeMap::new(),
            bitsets: BTreeMap::new(),
        }
    }

    fn int_frame(vals: Vec<i64>) -> Arc<FrameColumn> {
        let n = vals.len();
        Arc::new(FrameColumn {
            values: crate::frame::FrameValues::Int(vals),
            validity: vec![true; n],
            axis_min: 0.0,
            axis_max: 0.0,
            non_null: n,
        })
    }

    #[test]
    fn staleness_shape_matches_activity_ratio() {
        assert_eq!(sample_staleness(100, 1000, 100), 0.0);
        assert_eq!(sample_staleness(100, 1000, 150), 0.05);
        assert_eq!(sample_staleness(100, 100, 500), 1.0, "clamped");
        assert_eq!(sample_staleness(0, 0, 0), 0.0);
        assert_eq!(sample_staleness(0, 0, 1), 1.0, "empty-table draw");
    }

    #[test]
    fn hit_then_stale_then_redraw() {
        let mut c = SampleCache::new();
        let tid = TableId(3);
        c.store(tid, cached(1000, 1000));
        // 50 mutations over 1000 rows = 5% staleness, below a 10% limit
        match c.lookup(tid, SampleSpec::fixed(100), 1050, 0.1) {
            CacheLookup::Hit {
                rows,
                probes,
                staleness,
                frames,
                ..
            } => {
                assert_eq!(rows.as_slice(), &[1, 2, 3]);
                assert_eq!(probes, 7);
                assert!((staleness - 0.05).abs() < 1e-12);
                assert!(frames.is_empty(), "stale-but-served hits carry no frames");
            }
            other => unreachable!("expected hit, got {other:?}"),
        }
        // 200 mutations = 20% staleness, past the limit
        match c.lookup(tid, SampleSpec::fixed(100), 1200, 0.1) {
            CacheLookup::Stale { staleness } => assert!((staleness - 0.2).abs() < 1e-12),
            other => unreachable!("expected stale, got {other:?}"),
        }
        assert_eq!(
            c.counters(),
            CacheCounters {
                hits: 1,
                misses: 0,
                stale_redraws: 1
            }
        );
    }

    #[test]
    fn spec_mismatch_and_cold_are_misses() {
        let mut c = SampleCache::new();
        let tid = TableId(0);
        assert!(matches!(
            c.lookup(tid, SampleSpec::fixed(100), 0, 1.0),
            CacheLookup::Miss
        ));
        c.store(tid, cached(10, 100));
        assert!(matches!(
            c.lookup(tid, SampleSpec::fixed(50), 10, 1.0),
            CacheLookup::Miss
        ));
        assert_eq!(c.counters().misses, 2);
    }

    #[test]
    fn zero_limit_never_serves() {
        let mut c = SampleCache::new();
        let tid = TableId(1);
        c.store(tid, cached(10, 100));
        // staleness 0.0 is not < 0.0 — a zero limit disables serving
        assert!(matches!(
            c.lookup(tid, SampleSpec::fixed(100), 10, 0.0),
            CacheLookup::Stale { .. }
        ));
    }

    #[test]
    fn artifacts_served_only_at_exact_epoch() {
        let mut c = SampleCache::new();
        let tid = TableId(5);
        c.store(tid, cached(100, 1000));
        c.merge_artifacts(
            tid,
            SampleSpec::fixed(100),
            100,
            &[(ColumnId(2), int_frame(vec![10, 20, 30]))],
            &[("p0".to_string(), Arc::new(vec![0b101u64]))],
        );
        // exact epoch: the memoized artifacts ride along with the hit
        match c.lookup(tid, SampleSpec::fixed(100), 100, 0.1) {
            CacheLookup::Hit {
                frames, bitsets, ..
            } => {
                assert_eq!(frames.len(), 1);
                assert!(frames.contains_key(&ColumnId(2)));
                assert_eq!(bitsets["p0"].as_slice(), &[0b101u64]);
            }
            other => unreachable!("expected hit, got {other:?}"),
        }
        // one mutation later the rows still serve but the artifacts do not
        match c.lookup(tid, SampleSpec::fixed(100), 101, 0.1) {
            CacheLookup::Hit {
                frames, bitsets, ..
            } => {
                assert!(frames.is_empty());
                assert!(bitsets.is_empty());
            }
            other => unreachable!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn artifact_merge_rejects_epoch_and_spec_drift() {
        let mut c = SampleCache::new();
        let tid = TableId(6);
        c.store(tid, cached(100, 1000));
        // derived after a mutation: newer cell values, must not merge
        c.merge_artifacts(
            tid,
            SampleSpec::fixed(100),
            101,
            &[(ColumnId(0), int_frame(vec![1]))],
            &[("q".to_string(), Arc::new(vec![1u64]))],
        );
        // wrong spec: a different sample entirely
        c.merge_artifacts(
            tid,
            SampleSpec::fixed(50),
            100,
            &[(ColumnId(1), int_frame(vec![2]))],
            &[],
        );
        match c.lookup(tid, SampleSpec::fixed(100), 100, 0.1) {
            CacheLookup::Hit {
                frames, bitsets, ..
            } => {
                assert!(frames.is_empty());
                assert!(bitsets.is_empty());
            }
            other => unreachable!("expected hit, got {other:?}"),
        }
        // first-in wins: a re-merge of the same column is a no-op
        let first = int_frame(vec![7]);
        c.merge_artifacts(
            tid,
            SampleSpec::fixed(100),
            100,
            &[(ColumnId(3), first)],
            &[],
        );
        c.merge_artifacts(
            tid,
            SampleSpec::fixed(100),
            100,
            &[(ColumnId(3), int_frame(vec![8]))],
            &[],
        );
        match c.lookup(tid, SampleSpec::fixed(100), 100, 0.1) {
            CacheLookup::Hit { frames, .. } => {
                let crate::frame::FrameValues::Int(v) = &frames[&ColumnId(3)].values else {
                    panic!("int frame expected");
                };
                assert_eq!(v, &[7]);
            }
            other => unreachable!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn clear_and_invalidate() {
        let mut c = SampleCache::new();
        c.store(TableId(0), cached(1, 10));
        c.store(TableId(1), cached(2, 10));
        c.invalidate(TableId(0));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }
}
