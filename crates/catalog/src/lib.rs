//! System catalog: table metadata and *general statistics*.
//!
//! This is the part of a traditional DBMS the JITS paper contrasts itself
//! with: the catalog stores per-table and per-column statistics collected by
//! a RUNSTATS-style utility ([`runstats::runstats`]) — row counts, min/max, distinct
//! counts, frequent values, and one-dimensional equi-depth histograms.
//! These are the statistics the optimizer falls back on (with uniformity and
//! independence assumptions) when no query-specific statistics exist.
//!
//! The catalog also records *when* statistics were collected (a logical
//! clock), which — together with the storage layer's UDI counters — lets the
//! JITS sensitivity analysis judge staleness.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod runstats;
pub mod stats;

pub use catalog::{Catalog, CatalogTable};
pub use runstats::{runstats, runstats_cost, RunstatsOptions};
pub use stats::{ColumnStats, TableStats};
