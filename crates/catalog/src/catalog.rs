//! The catalog proper: name resolution and statistics storage.

use crate::stats::{ColumnStats, TableStats};
use jits_common::{ColumnId, JitsError, Result, Schema, TableId};
use std::collections::HashMap;

/// Catalog entry for one table.
#[derive(Debug, Clone)]
pub struct CatalogTable {
    /// Table name (lower-cased).
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// General table statistics, if ever collected.
    pub table_stats: Option<TableStats>,
    /// General per-column statistics (parallel to the schema).
    pub column_stats: Vec<Option<ColumnStats>>,
    /// Primary-key column, if declared (enables PK–FK join estimation).
    pub primary_key: Option<ColumnId>,
    /// Columns with secondary indexes (mirrors storage, for planning).
    pub indexed_columns: Vec<ColumnId>,
}

/// Name → metadata → statistics mapping for the whole database.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<CatalogTable>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a new table; names are case-insensitive and unique.
    pub fn register_table(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        let key = name.to_ascii_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(JitsError::AlreadyExists(format!("table '{name}'")));
        }
        let id = TableId(self.tables.len() as u32);
        let n_cols = schema.len();
        self.tables.push(CatalogTable {
            name: key.clone(),
            schema,
            table_stats: None,
            column_stats: vec![None; n_cols],
            primary_key: None,
            indexed_columns: Vec::new(),
        });
        self.by_name.insert(key, id);
        Ok(id)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Resolves a table name.
    pub fn resolve(&self, name: &str) -> Option<TableId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Resolves a table name or errors.
    pub fn require(&self, name: &str) -> Result<TableId> {
        self.resolve(name)
            .ok_or_else(|| JitsError::NotFound(format!("table '{name}'")))
    }

    /// Catalog entry for `id`.
    pub fn table(&self, id: TableId) -> Option<&CatalogTable> {
        self.tables.get(id.index())
    }

    /// Mutable catalog entry for `id`.
    pub fn table_mut(&mut self, id: TableId) -> Option<&mut CatalogTable> {
        self.tables.get_mut(id.index())
    }

    /// All table ids.
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> + '_ {
        (0..self.tables.len()).map(|i| TableId(i as u32))
    }

    /// Installs general statistics for a table.
    pub fn set_stats(
        &mut self,
        id: TableId,
        table_stats: TableStats,
        column_stats: Vec<ColumnStats>,
    ) -> Result<()> {
        let entry = self
            .tables
            .get_mut(id.index())
            .ok_or_else(|| JitsError::NotFound(format!("table {id}")))?;
        if column_stats.len() != entry.schema.len() {
            return Err(JitsError::internal(format!(
                "stats arity {} != schema arity {} for '{}'",
                column_stats.len(),
                entry.schema.len(),
                entry.name
            )));
        }
        entry.table_stats = Some(table_stats);
        entry.column_stats = column_stats.into_iter().map(Some).collect();
        Ok(())
    }

    /// Drops all statistics (the paper's "no initial statistics" setting).
    pub fn clear_stats(&mut self) {
        for t in &mut self.tables {
            t.table_stats = None;
            for c in &mut t.column_stats {
                *c = None;
            }
        }
    }

    /// Statistics row count for a table, if known.
    pub fn row_count(&self, id: TableId) -> Option<f64> {
        self.table(id)?.table_stats.as_ref().map(|s| s.row_count)
    }

    /// General column statistics, if collected.
    pub fn column_stats(&self, id: TableId, col: ColumnId) -> Option<&ColumnStats> {
        self.table(id)?.column_stats.get(col.index())?.as_ref()
    }

    /// Declares a primary key (informs join selectivity estimation).
    pub fn set_primary_key(&mut self, id: TableId, col: ColumnId) -> Result<()> {
        let t = self
            .tables
            .get_mut(id.index())
            .ok_or_else(|| JitsError::NotFound(format!("table {id}")))?;
        t.primary_key = Some(col);
        Ok(())
    }

    /// Records that a secondary index exists on `col`.
    pub fn add_index(&mut self, id: TableId, col: ColumnId) -> Result<()> {
        let t = self
            .tables
            .get_mut(id.index())
            .ok_or_else(|| JitsError::NotFound(format!("table {id}")))?;
        if !t.indexed_columns.contains(&col) {
            t.indexed_columns.push(col);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int), ("make", DataType::Str)])
    }

    #[test]
    fn register_and_resolve() {
        let mut c = Catalog::new();
        let id = c.register_table("Car", schema()).unwrap();
        assert_eq!(c.resolve("CAR"), Some(id));
        assert_eq!(c.resolve("car"), Some(id));
        assert!(c.resolve("owner").is_none());
        assert!(c.require("owner").is_err());
        assert!(c.register_table("car", schema()).is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stats_lifecycle() {
        let mut c = Catalog::new();
        let id = c.register_table("car", schema()).unwrap();
        assert_eq!(c.row_count(id), None);
        let ts = TableStats {
            row_count: 42.0,
            collected_at: 1,
        };
        let cs: Vec<ColumnStats> = (0..2)
            .map(|i| ColumnStats {
                dtype: if i == 0 { DataType::Int } else { DataType::Str },
                min: None,
                max: None,
                distinct: 1.0,
                null_count: 0.0,
                row_count: 42.0,
                mcv: vec![],
                histogram: jits_histogram::EquiDepth::build(vec![], 4),
                collected_at: 1,
            })
            .collect();
        c.set_stats(id, ts, cs).unwrap();
        assert_eq!(c.row_count(id), Some(42.0));
        assert!(c.column_stats(id, ColumnId(1)).is_some());
        c.clear_stats();
        assert_eq!(c.row_count(id), None);
        assert!(c.column_stats(id, ColumnId(1)).is_none());
    }

    #[test]
    fn stats_arity_checked() {
        let mut c = Catalog::new();
        let id = c.register_table("car", schema()).unwrap();
        let ts = TableStats {
            row_count: 1.0,
            collected_at: 0,
        };
        assert!(c.set_stats(id, ts, vec![]).is_err());
    }

    #[test]
    fn keys_and_indexes() {
        let mut c = Catalog::new();
        let id = c.register_table("car", schema()).unwrap();
        c.set_primary_key(id, ColumnId(0)).unwrap();
        c.add_index(id, ColumnId(0)).unwrap();
        c.add_index(id, ColumnId(0)).unwrap();
        let t = c.table(id).unwrap();
        assert_eq!(t.primary_key, Some(ColumnId(0)));
        assert_eq!(t.indexed_columns, vec![ColumnId(0)]);
    }
}
