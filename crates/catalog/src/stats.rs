//! General (catalog) statistics for tables and columns.

use jits_common::{Bound, DataType, Interval, Value};
use jits_histogram::EquiDepth;

/// Table-level general statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Live row count at collection time.
    pub row_count: f64,
    /// Logical clock when collected.
    pub collected_at: u64,
}

/// Column-level general statistics: the classic RUNSTATS set.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// The column's type (drives axis-epsilon choices for range estimates).
    pub dtype: DataType,
    /// Minimum non-NULL value.
    pub min: Option<Value>,
    /// Maximum non-NULL value.
    pub max: Option<Value>,
    /// Estimated number of distinct non-NULL values.
    pub distinct: f64,
    /// Number of NULLs.
    pub null_count: f64,
    /// Rows the statistics describe.
    pub row_count: f64,
    /// Most frequent values with their counts (descending by count).
    pub mcv: Vec<(Value, f64)>,
    /// Equi-depth distribution histogram over the axis projection.
    pub histogram: EquiDepth,
    /// Logical clock when collected.
    pub collected_at: u64,
}

impl ColumnStats {
    /// The axis epsilon for half-open range conversion: 1 for integer
    /// domains (so `x <= 5` becomes `[.., 6)`), 1 for the string axis (lex
    /// codes of distinct strings differ by far more), and a relative sliver
    /// for floats.
    pub fn axis_eps(&self) -> f64 {
        match self.dtype {
            DataType::Int => 1.0,
            DataType::Str => 1.0,
            DataType::Float => {
                let span = self
                    .histogram
                    .boundaries()
                    .last()
                    .zip(self.histogram.boundaries().first())
                    .map(|(hi, lo)| hi - lo)
                    .unwrap_or(1.0);
                (span.abs() * 1e-9).max(f64::MIN_POSITIVE)
            }
        }
    }

    /// Estimates the selectivity (fraction of rows) of `interval` on this
    /// column using general statistics only.
    ///
    /// Point predicates consult the MCV list first and fall back to the
    /// histogram's per-bucket distinct spread; range predicates interpolate
    /// in the equi-depth histogram. Returns `None` when the statistics
    /// cannot answer (empty histogram).
    pub fn selectivity(&self, interval: &Interval) -> Option<f64> {
        if self.row_count <= 0.0 {
            return Some(0.0);
        }
        if interval.is_point() {
            let v = match &interval.low {
                Bound::Inclusive(v) => v,
                _ => unreachable!("point intervals have inclusive bounds"),
            };
            // exact answer from the MCV list when present
            for (mv, count) in &self.mcv {
                if mv == v {
                    return Some((count / self.row_count).clamp(0.0, 1.0));
                }
            }
            // otherwise: the value is one of the non-MCV distinct values
            let mcv_mass: f64 = self.mcv.iter().map(|(_, c)| c).sum();
            let rest_rows = (self.row_count - self.null_count - mcv_mass).max(0.0);
            let rest_distinct = (self.distinct - self.mcv.len() as f64).max(1.0);
            if !self.mcv.is_empty() {
                return Some((rest_rows / rest_distinct / self.row_count).clamp(0.0, 1.0));
            }
            let axis = v.to_axis()?;
            return self.histogram.estimate_eq(axis);
        }
        let (lo, hi) = interval.to_axis_range(self.axis_eps());
        self.histogram.estimate_range(lo, hi)
    }

    /// The paper's accuracy metric of this column's histogram with respect
    /// to a predicate interval: worst endpoint accuracy.
    pub fn accuracy(&self, interval: &Interval) -> f64 {
        let mut acc = 1.0f64;
        let mut constrained = false;
        for b in [&interval.low, &interval.high] {
            if let Some(v) = b.value() {
                if let Some(axis) = v.to_axis() {
                    acc = acc.min(self.histogram.accuracy(axis));
                    constrained = true;
                }
            }
        }
        if constrained {
            acc
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_uniform_int() -> ColumnStats {
        let values: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        ColumnStats {
            dtype: DataType::Int,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(99)),
            distinct: 100.0,
            null_count: 0.0,
            row_count: 1000.0,
            mcv: vec![],
            histogram: EquiDepth::build(values, 10),
            collected_at: 0,
        }
    }

    #[test]
    fn range_selectivity_uniform() {
        let s = stats_uniform_int();
        // x < 50: half the domain
        let sel = s
            .selectivity(&Interval::at_most(Value::Int(49), true))
            .unwrap();
        assert!((sel - 0.5).abs() < 0.03, "sel {sel}");
        // x >= 90
        let sel = s
            .selectivity(&Interval::at_least(Value::Int(90), true))
            .unwrap();
        assert!((sel - 0.1).abs() < 0.03, "sel {sel}");
    }

    #[test]
    fn point_selectivity_without_mcv_uses_histogram() {
        let s = stats_uniform_int();
        let sel = s.selectivity(&Interval::point(Value::Int(42))).unwrap();
        assert!((sel - 0.01).abs() < 0.005, "sel {sel}");
    }

    #[test]
    fn mcv_answers_exactly() {
        let mut s = stats_uniform_int();
        s.mcv = vec![(Value::Int(7), 500.0), (Value::Int(9), 100.0)];
        let sel = s.selectivity(&Interval::point(Value::Int(7))).unwrap();
        assert!((sel - 0.5).abs() < 1e-9);
        // non-MCV point: remaining mass over remaining distincts
        let sel = s.selectivity(&Interval::point(Value::Int(3))).unwrap();
        let expected = (1000.0 - 600.0) / 98.0 / 1000.0;
        assert!(
            (sel - expected).abs() < 1e-9,
            "sel {sel} expected {expected}"
        );
    }

    #[test]
    fn integer_inclusive_upper_bound_is_covered() {
        let s = stats_uniform_int();
        // x BETWEEN 0 AND 99 covers everything for an integer domain
        let sel = s
            .selectivity(&Interval::between(Value::Int(0), Value::Int(99)))
            .unwrap();
        assert!((sel - 1.0).abs() < 0.01, "sel {sel}");
    }

    #[test]
    fn empty_column_zero_rows() {
        let s = ColumnStats {
            dtype: DataType::Int,
            min: None,
            max: None,
            distinct: 0.0,
            null_count: 0.0,
            row_count: 0.0,
            mcv: vec![],
            histogram: EquiDepth::build(vec![], 10),
            collected_at: 0,
        };
        assert_eq!(s.selectivity(&Interval::point(Value::Int(1))), Some(0.0));
    }

    #[test]
    fn accuracy_of_unconstrained_interval_is_one() {
        let s = stats_uniform_int();
        assert_eq!(s.accuracy(&Interval::unbounded()), 1.0);
        let a = s.accuracy(&Interval::point(Value::Int(55)));
        assert!((0.0..=1.0).contains(&a));
    }
}
