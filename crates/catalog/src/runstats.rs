//! RUNSTATS: full-scan collection of general statistics.
//!
//! Mirrors the DB2 utility the paper's prototype invokes: scans a table once
//! and produces [`TableStats`] plus a [`ColumnStats`] per column (min/max,
//! distinct count, null count, most-frequent values, equi-depth histogram).

use crate::stats::{ColumnStats, TableStats};
use jits_common::{ColumnId, Value};
use jits_storage::Table;
use std::collections::HashMap;

/// Knobs for RUNSTATS collection.
#[derive(Debug, Clone, Copy)]
pub struct RunstatsOptions {
    /// Buckets per equi-depth histogram.
    pub histogram_buckets: usize,
    /// Entries in each most-frequent-values list.
    pub mcv_entries: usize,
}

impl Default for RunstatsOptions {
    fn default() -> Self {
        RunstatsOptions {
            histogram_buckets: 20,
            mcv_entries: 10,
        }
    }
}

/// Scans `table` and produces general statistics stamped with `clock`.
pub fn runstats(
    table: &Table,
    opts: RunstatsOptions,
    clock: u64,
) -> (TableStats, Vec<ColumnStats>) {
    let n_cols = table.schema().len();
    let mut axis_values: Vec<Vec<f64>> = vec![Vec::with_capacity(table.row_count()); n_cols];
    let mut freq: Vec<HashMap<Value, f64>> = vec![HashMap::new(); n_cols];
    let mut nulls = vec![0f64; n_cols];
    let mut mins: Vec<Option<Value>> = vec![None; n_cols];
    let mut maxs: Vec<Option<Value>> = vec![None; n_cols];

    for row in table.scan() {
        for c in 0..n_cols {
            let cid = ColumnId(c as u32);
            let v = table.value(row, cid);
            if v.is_null() {
                nulls[c] += 1.0;
                continue;
            }
            if let Some(axis) = v.to_axis() {
                axis_values[c].push(axis);
            }
            match &mins[c] {
                None => mins[c] = Some(v.clone()),
                Some(m) if v.cmp_total(m) == std::cmp::Ordering::Less => mins[c] = Some(v.clone()),
                _ => {}
            }
            match &maxs[c] {
                None => maxs[c] = Some(v.clone()),
                Some(m) if v.cmp_total(m) == std::cmp::Ordering::Greater => {
                    maxs[c] = Some(v.clone())
                }
                _ => {}
            }
            *freq[c].entry(v).or_insert(0.0) += 1.0;
        }
    }

    let row_count = table.row_count() as f64;
    let table_stats = TableStats {
        row_count,
        collected_at: clock,
    };
    let column_stats = (0..n_cols)
        .map(|c| {
            // `Value` has no `Ord` impl, so a BTreeMap is unavailable here; the
            // sort on the next line imposes a total order (count desc, then
            // `cmp_total`), which erases the hash order.
            // jits-lint: allow(hash-iteration)
            let mut mcv: Vec<(Value, f64)> = freq[c].iter().map(|(v, n)| (v.clone(), *n)).collect();
            mcv.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp_total(&b.0)));
            let distinct = mcv.len() as f64;
            mcv.truncate(opts.mcv_entries);
            // drop MCV entries that are no more frequent than the average --
            // they carry no skew information
            let avg = if distinct > 0.0 {
                (row_count - nulls[c]) / distinct
            } else {
                0.0
            };
            mcv.retain(|(_, n)| *n > avg * 1.5);
            ColumnStats {
                dtype: table.schema().columns()[c].dtype,
                min: mins[c].clone(),
                max: maxs[c].clone(),
                distinct,
                null_count: nulls[c],
                row_count,
                mcv,
                histogram: jits_histogram::EquiDepth::build(
                    std::mem::take(&mut axis_values[c]),
                    opts.histogram_buckets,
                ),
                collected_at: clock,
            }
        })
        .collect();
    (table_stats, column_stats)
}

/// Simulated work units a RUNSTATS invocation costs: one full scan of every
/// cell. Used by the engine to account compile-time statistics work in the
/// same currency as execution work.
pub fn runstats_cost(table: &Table) -> u64 {
    (table.row_count() * table.schema().len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{DataType, Schema};

    fn cars(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("year", DataType::Int),
        ]);
        let mut t = Table::new("car", schema);
        let makes = ["Toyota", "Toyota", "Toyota", "Honda", "Audi"];
        for i in 0..n {
            t.insert(vec![
                Value::Int(i as i64),
                Value::str(makes[i % makes.len()]),
                Value::Int(1990 + (i % 17) as i64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn basic_table_and_column_stats() {
        let t = cars(1000);
        let (ts, cs) = runstats(&t, RunstatsOptions::default(), 5);
        assert_eq!(ts.row_count, 1000.0);
        assert_eq!(ts.collected_at, 5);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].distinct, 1000.0);
        assert_eq!(cs[1].distinct, 3.0);
        assert_eq!(cs[2].distinct, 17.0);
        assert_eq!(cs[1].min, Some(Value::str("Audi")));
        assert_eq!(cs[1].max, Some(Value::str("Toyota")));
    }

    #[test]
    fn mcv_captures_skew() {
        let t = cars(1000);
        let (_, cs) = runstats(&t, RunstatsOptions::default(), 0);
        // Toyota is 60% of rows: must appear in MCV with its true count
        let toyota = cs[1]
            .mcv
            .iter()
            .find(|(v, _)| *v == Value::str("Toyota"))
            .expect("Toyota must be an MCV");
        assert_eq!(toyota.1, 600.0);
        // uniform id column should produce no (informative) MCVs
        assert!(cs[0].mcv.is_empty());
    }

    #[test]
    fn nulls_counted() {
        let schema = Schema::from_pairs(&[("v", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..10 {
            let v = if i % 2 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            };
            t.insert(vec![v]).unwrap();
        }
        let (_, cs) = runstats(&t, RunstatsOptions::default(), 0);
        assert_eq!(cs[0].null_count, 5.0);
        assert_eq!(cs[0].distinct, 5.0);
    }

    #[test]
    fn stats_reflect_only_live_rows() {
        let mut t = cars(100);
        for r in 0..50 {
            t.delete(r);
        }
        let (ts, cs) = runstats(&t, RunstatsOptions::default(), 0);
        assert_eq!(ts.row_count, 50.0);
        assert_eq!(cs[0].row_count, 50.0);
    }

    #[test]
    fn cost_scales_with_cells() {
        let t = cars(100);
        assert_eq!(runstats_cost(&t), 300);
    }
}
