//! Checkpoint payload codec: the full engine state, bytes in and bytes out.
//!
//! A checkpoint must capture everything a replayed record could read —
//! tables, catalog statistics, the QSS archive, StatHistory, predicate and
//! sample caches, the deterministic substrate (clock, RNG stream, setting,
//! flags), the deterministic metric counters, and the q-error aggregates
//! that feed sensitivity scoring. What it deliberately does *not* capture
//! are the observability rings (query log, flight recorder, trace ring,
//! degradation ring, latest scores): those are bounded post-mortem
//! diagnostics, not decision-bearing state, and the durability contract in
//! DESIGN.md §14 excludes them — a recovered engine plans, collects, and
//! scores identically with empty rings.
//!
//! Sample-cache entries persist only their decision-bearing core (row ids,
//! epoch, probe cost, hit counts). Columnar gathers and predicate bitsets
//! are dropped: they are served only on an exact epoch match and rebuilt
//! first-in-wins from fresh gathers, so their absence after recovery is
//! invisible to results, work charging, and deterministic counters.
//!
//! Archive checksums are likewise not persisted — recovery recomputes them
//! from the restored bucket sets (the checksum is a pure function of
//! logical content), so a corrupt segment fails its CRC instead of
//! resurrecting a poisoned histogram with a matching stored checksum.

use crate::settings::StatsSetting;
use jits::{
    AggregateFn, ArchiveSnapshot, CachedSelectivity, EpsilonConfig, HistEntry, JitsConfig,
    PredicateCache, QssArchive, SensitivityStrategy, StatHistory,
};
use jits_catalog::{Catalog, ColumnStats, TableStats};
use jits_histogram::{EquiDepth, GridLimits, GridSnapshot};
use jits_obs::{MetricSample, Observability, QErrorStat, SampleValue};
use jits_storage::{
    CacheCounters, CachedSample, SampleCache, SampleSpec, Table, TableSnapshot, ZoneSnapshot,
};
use jits_wal::{Decoder, Encoder};
use jits_common::{ColGroup, ColumnId, JitsError, Result, SplitMix64, TableId, Value};
use std::sync::Arc;

/// Checkpoint payload format version.
const STATE_VERSION: u8 = 1;

/// What recovery did, surfaced through `Database::recovery_report` and the
/// `jits.recovery.*` metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the checkpoint restored, if one existed.
    pub checkpoint_lsn: Option<u64>,
    /// WAL records re-executed on top of the checkpoint.
    pub replayed_records: u64,
    /// Replayed records whose re-execution returned a statement-level
    /// error (deterministic — the original execution failed identically).
    pub replay_errors: u64,
    /// Bytes of torn WAL tail physically truncated at open.
    pub torn_bytes: u64,
    /// Checkpoint segments that failed validation and were skipped.
    pub corrupt_checkpoints: u32,
}

/// Borrowed view of everything [`encode_state`] folds into a checkpoint.
pub(crate) struct StateRefs<'a> {
    pub clock: u64,
    pub rng_state: u64,
    pub batch_executor: bool,
    pub data_skipping: bool,
    pub profiling: bool,
    pub setting: &'a StatsSetting,
    pub catalog: &'a Catalog,
    pub tables: &'a [Table],
    pub archive: &'a QssArchive,
    pub history: &'a StatHistory,
    pub predcache: &'a PredicateCache,
    pub samplecache: &'a SampleCache,
    pub obs: &'a Observability,
}

/// Owned engine state decoded from a checkpoint payload.
pub(crate) struct RestoredState {
    pub clock: u64,
    pub rng: SplitMix64,
    pub batch_executor: bool,
    pub data_skipping: bool,
    pub profiling: bool,
    pub setting: StatsSetting,
    pub catalog: Catalog,
    pub tables: Vec<Table>,
    pub archive: QssArchive,
    pub history: StatHistory,
    pub predcache: PredicateCache,
    pub samplecache: SampleCache,
    /// Deterministic metric readings to restore into the registry.
    pub metrics: Vec<MetricSample>,
    /// Q-error aggregates to restore into the observability state.
    pub qerror: Vec<(String, QErrorStat)>,
}

// ---- small shared helpers ----------------------------------------------

fn put_opt_u32(e: &mut Encoder, v: Option<u32>) {
    match v {
        None => e.put_bool(false),
        Some(v) => {
            e.put_bool(true);
            e.put_u32(v);
        }
    }
}

fn opt_u32(d: &mut Decoder) -> Result<Option<u32>> {
    Ok(if d.bool()? { Some(d.u32()?) } else { None })
}

fn put_opt_value(e: &mut Encoder, v: &Option<Value>) {
    match v {
        None => e.put_bool(false),
        Some(v) => {
            e.put_bool(true);
            e.put_value(v);
        }
    }
}

fn opt_value(d: &mut Decoder) -> Result<Option<Value>> {
    Ok(if d.bool()? { Some(d.value()?) } else { None })
}

fn put_f64s(e: &mut Encoder, vs: &[f64]) {
    e.put_u32(vs.len() as u32);
    for &v in vs {
        e.put_f64(v);
    }
}

fn f64s(d: &mut Decoder) -> Result<Vec<f64>> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(d.f64()?);
    }
    Ok(out)
}

fn put_u64s(e: &mut Encoder, vs: &[u64]) {
    e.put_u32(vs.len() as u32);
    for &v in vs {
        e.put_u64(v);
    }
}

fn u64s(d: &mut Decoder) -> Result<Vec<u64>> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(d.u64()?);
    }
    Ok(out)
}

fn put_colgroup(e: &mut Encoder, g: &ColGroup) {
    e.put_u32(g.table().0);
    e.put_u32(g.columns().len() as u32);
    for c in g.columns() {
        e.put_u32(c.0);
    }
}

fn colgroup(d: &mut Decoder) -> Result<ColGroup> {
    let table = TableId(d.u32()?);
    let n = d.u32()? as usize;
    let mut cols = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        cols.push(ColumnId(d.u32()?));
    }
    Ok(ColGroup::new(table, cols))
}

// ---- statistics setting -------------------------------------------------

/// Encodes a [`StatsSetting`] — also the payload of the `SetSetting` WAL
/// record, so a replayed setting switch restores the exact configuration.
pub(crate) fn encode_setting(setting: &StatsSetting) -> Vec<u8> {
    let mut e = Encoder::new();
    put_setting(&mut e, setting);
    e.into_bytes()
}

/// Decodes a [`StatsSetting`] payload.
pub(crate) fn decode_setting(bytes: &[u8]) -> Result<StatsSetting> {
    let mut d = Decoder::new(bytes);
    let s = setting(&mut d)?;
    d.finish()?;
    Ok(s)
}

fn put_setting(e: &mut Encoder, s: &StatsSetting) {
    match s {
        StatsSetting::NoStatistics => e.put_u8(0),
        StatsSetting::CatalogOnly => e.put_u8(1),
        StatsSetting::ArchiveReadOnly => e.put_u8(2),
        StatsSetting::Jits(cfg) => {
            e.put_u8(3);
            put_jits_config(e, cfg);
        }
    }
}

fn setting(d: &mut Decoder) -> Result<StatsSetting> {
    Ok(match d.u8()? {
        0 => StatsSetting::NoStatistics,
        1 => StatsSetting::CatalogOnly,
        2 => StatsSetting::ArchiveReadOnly,
        3 => StatsSetting::Jits(jits_config(d)?),
        t => {
            return Err(JitsError::Recovery(format!(
                "checkpoint: bad setting tag {t}"
            )))
        }
    })
}

fn put_jits_config(e: &mut Encoder, c: &JitsConfig) {
    match &c.strategy {
        SensitivityStrategy::PaperHeuristic => e.put_u8(0),
        SensitivityStrategy::EpsilonPlanning(eps) => {
            e.put_u8(1);
            e.put_f64(eps.epsilon);
            e.put_f64(eps.threshold);
            e.put_u64(eps.max_iterations as u64);
        }
    }
    e.put_f64(c.s_max);
    e.put_u8(match c.aggregate {
        AggregateFn::Average => 0,
        AggregateFn::Max => 1,
        AggregateFn::Min => 2,
    });
    e.put_u64(c.sample.size as u64);
    e.put_bool(c.sample_cache);
    e.put_f64(c.sample_cache_staleness);
    e.put_u64(c.collect_budget);
    e.put_u64(c.collect_threads as u64);
    e.put_u64(c.max_group_enumeration as u64);
    e.put_u64(c.archive_bucket_budget as u64);
    e.put_f64(c.eviction_uniformity);
    e.put_u64(c.history_entries_per_key as u64);
    e.put_f64(c.history_ewma);
    e.put_f64(c.archive_accuracy_gate);
    e.put_bool(c.infer_from_supersets);
    e.put_u64(c.predicate_cache_capacity as u64);
    e.put_u64(c.migrate_every);
    e.put_bool(c.feedback_to_archive);
    e.put_f64(c.qerror_threshold);
}

fn jits_config(d: &mut Decoder) -> Result<JitsConfig> {
    let strategy = match d.u8()? {
        0 => SensitivityStrategy::PaperHeuristic,
        1 => SensitivityStrategy::EpsilonPlanning(EpsilonConfig {
            epsilon: d.f64()?,
            threshold: d.f64()?,
            max_iterations: d.u64()? as usize,
        }),
        t => {
            return Err(JitsError::Recovery(format!(
                "checkpoint: bad strategy tag {t}"
            )))
        }
    };
    Ok(JitsConfig {
        strategy,
        s_max: d.f64()?,
        aggregate: match d.u8()? {
            0 => AggregateFn::Average,
            1 => AggregateFn::Max,
            2 => AggregateFn::Min,
            t => {
                return Err(JitsError::Recovery(format!(
                    "checkpoint: bad aggregate tag {t}"
                )))
            }
        },
        sample: SampleSpec {
            size: d.u64()? as usize,
        },
        sample_cache: d.bool()?,
        sample_cache_staleness: d.f64()?,
        collect_budget: d.u64()?,
        collect_threads: d.u64()? as usize,
        max_group_enumeration: d.u64()? as usize,
        archive_bucket_budget: d.u64()? as usize,
        eviction_uniformity: d.f64()?,
        history_entries_per_key: d.u64()? as usize,
        history_ewma: d.f64()?,
        archive_accuracy_gate: d.f64()?,
        infer_from_supersets: d.bool()?,
        predicate_cache_capacity: d.u64()? as usize,
        migrate_every: d.u64()?,
        feedback_to_archive: d.bool()?,
        qerror_threshold: d.f64()?,
    })
}

// ---- catalog ------------------------------------------------------------

fn put_equidepth(e: &mut Encoder, h: &EquiDepth) {
    put_f64s(e, h.boundaries());
    put_f64s(e, h.counts());
    put_f64s(e, h.distincts());
    e.put_f64(h.total());
}

fn equidepth(d: &mut Decoder) -> Result<EquiDepth> {
    let boundaries = f64s(d)?;
    let counts = f64s(d)?;
    let distincts = f64s(d)?;
    let total = d.f64()?;
    Ok(EquiDepth::from_raw_parts(boundaries, counts, distincts, total))
}

fn put_column_stats(e: &mut Encoder, cs: &ColumnStats) {
    e.put_dtype(cs.dtype);
    put_opt_value(e, &cs.min);
    put_opt_value(e, &cs.max);
    e.put_f64(cs.distinct);
    e.put_f64(cs.null_count);
    e.put_f64(cs.row_count);
    e.put_u32(cs.mcv.len() as u32);
    for (v, n) in &cs.mcv {
        e.put_value(v);
        e.put_f64(*n);
    }
    put_equidepth(e, &cs.histogram);
    e.put_u64(cs.collected_at);
}

fn column_stats(d: &mut Decoder) -> Result<ColumnStats> {
    let dtype = d.dtype()?;
    let min = opt_value(d)?;
    let max = opt_value(d)?;
    let distinct = d.f64()?;
    let null_count = d.f64()?;
    let row_count = d.f64()?;
    let nmcv = d.u32()? as usize;
    let mut mcv = Vec::with_capacity(nmcv.min(1024));
    for _ in 0..nmcv {
        let v = d.value()?;
        let n = d.f64()?;
        mcv.push((v, n));
    }
    let histogram = equidepth(d)?;
    let collected_at = d.u64()?;
    Ok(ColumnStats {
        dtype,
        min,
        max,
        distinct,
        null_count,
        row_count,
        mcv,
        histogram,
        collected_at,
    })
}

fn put_catalog(e: &mut Encoder, c: &Catalog) {
    e.put_u32(c.len() as u32);
    for id in c.table_ids() {
        // jits-lint: allow(panic-surface) -- table_ids only yields live ids
        let t = c.table(id).expect("table_ids yields live ids");
        e.put_str(&t.name);
        e.put_schema(&t.schema);
        put_opt_u32(e, t.primary_key.map(|c| c.0));
        e.put_u32(t.indexed_columns.len() as u32);
        for col in &t.indexed_columns {
            e.put_u32(col.0);
        }
        match &t.table_stats {
            None => e.put_bool(false),
            Some(ts) => {
                e.put_bool(true);
                e.put_f64(ts.row_count);
                e.put_u64(ts.collected_at);
            }
        }
        e.put_u32(t.column_stats.len() as u32);
        for cs in &t.column_stats {
            match cs {
                None => e.put_bool(false),
                Some(cs) => {
                    e.put_bool(true);
                    put_column_stats(e, cs);
                }
            }
        }
    }
}

fn catalog(d: &mut Decoder) -> Result<Catalog> {
    let n = d.u32()? as usize;
    let mut c = Catalog::new();
    for _ in 0..n {
        let name = d.str()?;
        let schema = d.schema()?;
        let primary_key = opt_u32(d)?.map(ColumnId);
        let nidx = d.u32()? as usize;
        let mut indexed = Vec::with_capacity(nidx.min(64));
        for _ in 0..nidx {
            indexed.push(ColumnId(d.u32()?));
        }
        let table_stats = if d.bool()? {
            Some(TableStats {
                row_count: d.f64()?,
                collected_at: d.u64()?,
            })
        } else {
            None
        };
        let ncols = d.u32()? as usize;
        let mut column_stats = Vec::with_capacity(ncols.min(1024));
        for _ in 0..ncols {
            column_stats.push(if d.bool()? {
                Some(self::column_stats(d)?)
            } else {
                None
            });
        }
        let id = c
            .register_table(&name, schema)
            .map_err(|e| JitsError::Recovery(format!("checkpoint: catalog rebuild: {e}")))?;
        let entry = c
            .table_mut(id)
            .ok_or_else(|| JitsError::Recovery("checkpoint: fresh table vanished".into()))?;
        // fields assigned verbatim rather than via set_stats/add_index: the
        // checkpoint may legitimately hold mixed Some/None column stats
        // (statistics migration fills columns one at a time)
        entry.primary_key = primary_key;
        entry.indexed_columns = indexed;
        entry.table_stats = table_stats;
        entry.column_stats = column_stats;
    }
    Ok(c)
}

// ---- storage tables -----------------------------------------------------

fn put_table(e: &mut Encoder, s: &TableSnapshot) {
    e.put_str(&s.name);
    e.put_schema(&s.schema);
    e.put_u32(s.slots.len() as u32);
    for (row, live) in &s.slots {
        for v in row {
            e.put_value(v);
        }
        e.put_bool(*live);
    }
    e.put_u64(s.udi.0);
    e.put_u64(s.udi.1);
    e.put_u64(s.udi.2);
    e.put_u64(s.epoch);
    e.put_u32(s.indexes.len() as u32);
    for (col, entries) in &s.indexes {
        e.put_u32(col.0);
        e.put_u32(entries.len() as u32);
        for (key, rows) in entries {
            e.put_value(key);
            e.put_u32(rows.len() as u32);
            for r in rows {
                e.put_u32(*r);
            }
        }
    }
    e.put_u32(s.zones.ncols as u32);
    e.put_u32(s.zones.blocks.len() as u32);
    for (block, cols) in &s.zones.blocks {
        e.put_u32(*block);
        e.put_u32(cols.len() as u32);
        for (min, max, nulls) in cols {
            put_opt_value(e, min);
            put_opt_value(e, max);
            e.put_u32(*nulls);
        }
    }
}

fn table_snapshot(d: &mut Decoder) -> Result<TableSnapshot> {
    let name = d.str()?;
    let schema = d.schema()?;
    let ncols = schema.len();
    let nslots = d.u32()? as usize;
    let mut slots = Vec::with_capacity(nslots.min(1 << 20));
    for _ in 0..nslots {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(d.value()?);
        }
        slots.push((row, d.bool()?));
    }
    let udi = (d.u64()?, d.u64()?, d.u64()?);
    let epoch = d.u64()?;
    let nindexes = d.u32()? as usize;
    let mut indexes = Vec::with_capacity(nindexes.min(64));
    for _ in 0..nindexes {
        let col = ColumnId(d.u32()?);
        let nentries = d.u32()? as usize;
        let mut entries = Vec::with_capacity(nentries.min(1 << 20));
        for _ in 0..nentries {
            let key = d.value()?;
            let nrows = d.u32()? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                rows.push(d.u32()?);
            }
            entries.push((key, rows));
        }
        indexes.push((col, entries));
    }
    let zncols = d.u32()? as usize;
    let nblocks = d.u32()? as usize;
    let mut blocks = Vec::with_capacity(nblocks.min(1 << 20));
    for _ in 0..nblocks {
        let block = d.u32()?;
        let nbcols = d.u32()? as usize;
        let mut cols = Vec::with_capacity(nbcols.min(1024));
        for _ in 0..nbcols {
            let min = opt_value(d)?;
            let max = opt_value(d)?;
            cols.push((min, max, d.u32()?));
        }
        blocks.push((block, cols));
    }
    Ok(TableSnapshot {
        name,
        schema,
        slots,
        udi,
        epoch,
        indexes,
        zones: ZoneSnapshot {
            ncols: zncols,
            blocks,
        },
    })
}

// ---- QSS archive --------------------------------------------------------

fn put_grid(e: &mut Encoder, g: &GridSnapshot) {
    e.put_u32(g.boundaries.len() as u32);
    for dim in &g.boundaries {
        put_f64s(e, dim);
    }
    put_f64s(e, &g.counts);
    put_u64s(e, &g.stamps);
    e.put_f64(g.total);
    e.put_u32(g.constraints.len() as u32);
    for (ranges, count, stamp) in &g.constraints {
        e.put_u32(ranges.len() as u32);
        for (lo, hi) in ranges {
            e.put_f64(*lo);
            e.put_f64(*hi);
        }
        e.put_f64(*count);
        e.put_u64(*stamp);
    }
    e.put_u64(g.last_used);
    e.put_u64(g.limits.max_boundaries_per_dim as u64);
    e.put_u64(g.limits.max_constraints as u64);
}

fn grid(d: &mut Decoder) -> Result<GridSnapshot> {
    let ndims = d.u32()? as usize;
    let mut boundaries = Vec::with_capacity(ndims.min(64));
    for _ in 0..ndims {
        boundaries.push(f64s(d)?);
    }
    let counts = f64s(d)?;
    let stamps = u64s(d)?;
    let total = d.f64()?;
    let nconstraints = d.u32()? as usize;
    let mut constraints = Vec::with_capacity(nconstraints.min(1 << 12));
    for _ in 0..nconstraints {
        let nranges = d.u32()? as usize;
        let mut ranges = Vec::with_capacity(nranges.min(64));
        for _ in 0..nranges {
            let lo = d.f64()?;
            ranges.push((lo, d.f64()?));
        }
        let count = d.f64()?;
        constraints.push((ranges, count, d.u64()?));
    }
    let last_used = d.u64()?;
    let limits = GridLimits {
        max_boundaries_per_dim: d.u64()? as usize,
        max_constraints: d.u64()? as usize,
    };
    Ok(GridSnapshot {
        boundaries,
        counts,
        stamps,
        total,
        constraints,
        last_used,
        limits,
    })
}

fn put_archive(e: &mut Encoder, s: &ArchiveSnapshot) {
    e.put_u32(s.histograms.len() as u32);
    for (g, grid) in &s.histograms {
        put_colgroup(e, g);
        put_grid(e, grid);
    }
    e.put_u32(s.rebuild.len() as u32);
    for g in &s.rebuild {
        put_colgroup(e, g);
    }
    e.put_u64(s.bucket_budget as u64);
    e.put_f64(s.eviction_uniformity);
}

fn archive(d: &mut Decoder) -> Result<ArchiveSnapshot> {
    let n = d.u32()? as usize;
    let mut histograms = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let g = colgroup(d)?;
        histograms.push((g, grid(d)?));
    }
    let nrebuild = d.u32()? as usize;
    let mut rebuild = Vec::with_capacity(nrebuild.min(1 << 12));
    for _ in 0..nrebuild {
        rebuild.push(colgroup(d)?);
    }
    let bucket_budget = d.u64()? as usize;
    let eviction_uniformity = d.f64()?;
    Ok(ArchiveSnapshot {
        histograms,
        rebuild,
        bucket_budget,
        eviction_uniformity,
    })
}

// ---- history, predicate cache, sample cache -----------------------------

fn put_history(e: &mut Encoder, s: &[((TableId, ColGroup), Vec<HistEntry>)]) {
    e.put_u32(s.len() as u32);
    for ((tid, g), entries) in s {
        e.put_u32(tid.0);
        put_colgroup(e, g);
        e.put_u32(entries.len() as u32);
        for h in entries {
            e.put_u32(h.statlist.len() as u32);
            for g in &h.statlist {
                put_colgroup(e, g);
            }
            e.put_u64(h.count);
            e.put_f64(h.error_factor);
        }
    }
}

fn history(d: &mut Decoder) -> Result<Vec<((TableId, ColGroup), Vec<HistEntry>)>> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let tid = TableId(d.u32()?);
        let g = colgroup(d)?;
        let nentries = d.u32()? as usize;
        let mut entries = Vec::with_capacity(nentries.min(1 << 12));
        for _ in 0..nentries {
            let nstats = d.u32()? as usize;
            let mut statlist = Vec::with_capacity(nstats.min(64));
            for _ in 0..nstats {
                statlist.push(colgroup(d)?);
            }
            let count = d.u64()?;
            entries.push(HistEntry {
                statlist,
                count,
                error_factor: d.f64()?,
            });
        }
        out.push(((tid, g), entries));
    }
    Ok(out)
}

fn put_predcache(e: &mut Encoder, (capacity, entries): &(usize, Vec<((TableId, String), CachedSelectivity)>)) {
    e.put_u64(*capacity as u64);
    e.put_u32(entries.len() as u32);
    for ((tid, fp), v) in entries {
        e.put_u32(tid.0);
        e.put_str(fp);
        e.put_f64(v.selectivity);
        e.put_u64(v.stamp);
        e.put_u64(v.last_used);
    }
}

fn predcache(d: &mut Decoder) -> Result<(usize, Vec<((TableId, String), CachedSelectivity)>)> {
    let capacity = d.u64()? as usize;
    let n = d.u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let tid = TableId(d.u32()?);
        let fp = d.str()?;
        let selectivity = d.f64()?;
        let stamp = d.u64()?;
        entries.push((
            (tid, fp),
            CachedSelectivity {
                selectivity,
                stamp,
                last_used: d.u64()?,
            },
        ));
    }
    Ok((capacity, entries))
}

fn put_samplecache(e: &mut Encoder, c: &SampleCache) {
    let counters = c.counters();
    e.put_u64(counters.hits);
    e.put_u64(counters.misses);
    e.put_u64(counters.stale_redraws);
    let entries: Vec<_> = c.entries().collect();
    e.put_u32(entries.len() as u32);
    for (tid, s) in entries {
        e.put_u32(tid.0);
        e.put_u64(s.spec.size as u64);
        e.put_u64(s.epoch);
        e.put_u64(s.rows_at_draw);
        e.put_u32(s.rows.len() as u32);
        for &r in s.rows.iter() {
            e.put_u32(r);
        }
        e.put_u64(s.probes as u64);
        e.put_u64(s.hits);
    }
}

fn samplecache(d: &mut Decoder) -> Result<SampleCache> {
    let counters = CacheCounters {
        hits: d.u64()?,
        misses: d.u64()?,
        stale_redraws: d.u64()?,
    };
    let n = d.u32()? as usize;
    let mut cache = SampleCache::new();
    for _ in 0..n {
        let tid = TableId(d.u32()?);
        let size = d.u64()? as usize;
        let epoch = d.u64()?;
        let rows_at_draw = d.u64()?;
        let nrows = d.u32()? as usize;
        let mut rows = Vec::with_capacity(nrows.min(1 << 20));
        for _ in 0..nrows {
            rows.push(d.u32()?);
        }
        let probes = d.u64()? as usize;
        let hits = d.u64()?;
        cache.store(
            tid,
            CachedSample {
                spec: SampleSpec { size },
                epoch,
                rows_at_draw,
                rows: Arc::new(rows),
                probes,
                hits,
                // columnar gathers and bitsets are rebuilt from fresh
                // draws; they are served only on exact epoch matches, so
                // recovery starting without them is behavior-identical
                frames: Default::default(),
                bitsets: Default::default(),
            },
        );
    }
    cache.restore_counters(counters);
    Ok(cache)
}

// ---- deterministic metrics and q-error aggregates -----------------------

fn put_metrics(e: &mut Encoder, samples: &[MetricSample]) {
    let deterministic: Vec<_> = samples.iter().filter(|s| !s.volatile).collect();
    e.put_u32(deterministic.len() as u32);
    for s in deterministic {
        e.put_str(&s.name);
        match &s.value {
            SampleValue::Counter(v) => {
                e.put_u8(0);
                e.put_u64(*v);
            }
            SampleValue::Gauge(v) => {
                e.put_u8(1);
                e.put_u64(*v);
            }
            SampleValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                e.put_u8(2);
                e.put_u64(*count);
                e.put_u64(*sum);
                e.put_u32(buckets.len() as u32);
                for &(bound, n) in buckets {
                    e.put_u64(bound);
                    e.put_u64(n);
                }
            }
        }
    }
}

fn metrics(d: &mut Decoder) -> Result<Vec<MetricSample>> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let name = d.str()?;
        let value = match d.u8()? {
            0 => SampleValue::Counter(d.u64()?),
            1 => SampleValue::Gauge(d.u64()?),
            2 => {
                let count = d.u64()?;
                let sum = d.u64()?;
                let nbuckets = d.u32()? as usize;
                let mut buckets = Vec::with_capacity(nbuckets.min(64));
                for _ in 0..nbuckets {
                    let bound = d.u64()?;
                    buckets.push((bound, d.u64()?));
                }
                SampleValue::Histogram {
                    count,
                    sum,
                    buckets,
                }
            }
            t => {
                return Err(JitsError::Recovery(format!(
                    "checkpoint: bad metric tag {t}"
                )))
            }
        };
        out.push(MetricSample {
            name,
            volatile: false,
            value,
        });
    }
    Ok(out)
}

fn put_qerror(e: &mut Encoder, stats: &[(String, QErrorStat)]) {
    e.put_u32(stats.len() as u32);
    for (table, s) in stats {
        e.put_str(table);
        e.put_f64(s.last);
        e.put_f64(s.max);
        e.put_u64(s.count);
        e.put_u64(s.mispredicted);
    }
}

fn qerror(d: &mut Decoder) -> Result<Vec<(String, QErrorStat)>> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let table = d.str()?;
        let last = d.f64()?;
        let max = d.f64()?;
        let count = d.u64()?;
        out.push((
            table,
            QErrorStat {
                last,
                max,
                count,
                mispredicted: d.u64()?,
            },
        ));
    }
    Ok(out)
}

// ---- top level ----------------------------------------------------------

/// Folds the full engine state into one checkpoint payload.
pub(crate) fn encode_state(s: &StateRefs) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(STATE_VERSION);
    e.put_u64(s.clock);
    e.put_u64(s.rng_state);
    e.put_bool(s.batch_executor);
    e.put_bool(s.data_skipping);
    e.put_bool(s.profiling);
    put_setting(&mut e, s.setting);
    put_catalog(&mut e, s.catalog);
    e.put_u32(s.tables.len() as u32);
    for t in s.tables {
        put_table(&mut e, &t.snapshot());
    }
    put_archive(&mut e, &s.archive.snapshot());
    put_history(&mut e, &s.history.snapshot());
    put_predcache(&mut e, &s.predcache.snapshot());
    put_samplecache(&mut e, s.samplecache);
    put_metrics(&mut e, &s.obs.registry.snapshot());
    put_qerror(&mut e, &s.obs.qerror_stats());
    e.into_bytes()
}

/// Decodes a checkpoint payload back into owned engine state. Any
/// malformation is typed [`JitsError::Recovery`] — never a panic — so a
/// torn or truncated segment quarantines instead of crashing recovery.
pub(crate) fn decode_state(bytes: &[u8]) -> Result<RestoredState> {
    let mut d = Decoder::new(bytes);
    let version = d.u8()?;
    if version != STATE_VERSION {
        return Err(JitsError::Recovery(format!(
            "checkpoint: unsupported format version {version}"
        )));
    }
    let clock = d.u64()?;
    let rng = SplitMix64::from_state(d.u64()?);
    let batch_executor = d.bool()?;
    let data_skipping = d.bool()?;
    let profiling = d.bool()?;
    let setting = setting(&mut d)?;
    let catalog = catalog(&mut d)?;
    let ntables = d.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1 << 12));
    for _ in 0..ntables {
        tables.push(Table::from_snapshot(table_snapshot(&mut d)?)?);
    }
    let archive = QssArchive::from_snapshot(archive(&mut d)?);
    let history = StatHistory::from_snapshot(history(&mut d)?);
    let predcache = PredicateCache::from_snapshot(predcache(&mut d)?);
    let samplecache = samplecache(&mut d)?;
    let metrics = metrics(&mut d)?;
    let qerror = qerror(&mut d)?;
    d.finish()?;
    if tables.len() != catalog.len() {
        return Err(JitsError::Recovery(format!(
            "checkpoint: {} storage tables for {} catalog entries",
            tables.len(),
            catalog.len()
        )));
    }
    Ok(RestoredState {
        clock,
        rng,
        batch_executor,
        data_skipping,
        profiling,
        setting,
        catalog,
        tables,
        archive,
        history,
        predcache,
        samplecache,
        metrics,
        qerror,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{DataType, Schema};

    fn seeded_refs_roundtrip(db: &crate::Database) -> RestoredState {
        let bytes = encode_state(&StateRefs {
            clock: db.clock(),
            rng_state: db.rng_state_for_test(),
            batch_executor: db.batch_executor(),
            data_skipping: db.data_skipping(),
            profiling: db.profiling(),
            setting: db.setting(),
            catalog: db.catalog(),
            tables: db.tables(),
            archive: db.archive(),
            history: db.history(),
            predcache: db.predcache_for_test(),
            samplecache: db.sample_cache(),
            obs: db.obs(),
        });
        decode_state(&bytes).unwrap()
    }

    #[test]
    fn full_state_roundtrips_bit_identically() {
        let mut db = crate::Database::new(7);
        db.create_table(
            "t",
            Schema::from_pairs(&[("id", DataType::Int), ("tag", DataType::Str)]),
        )
        .unwrap();
        db.load_rows(
            "t",
            (0..300i64)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::str(if i % 3 == 0 { "hot" } else { "cold" }),
                    ]
                })
                .collect(),
        )
        .unwrap();
        db.create_index("t", "id").unwrap();
        db.runstats_all().unwrap();
        db.set_setting(StatsSetting::Jits(jits::JitsConfig::default()));
        for _ in 0..3 {
            db.execute("SELECT id FROM t WHERE tag = 'hot'").unwrap();
        }
        db.execute("DELETE FROM t WHERE id = 5").unwrap();

        let restored = seeded_refs_roundtrip(&db);
        assert_eq!(restored.clock, db.clock());
        assert_eq!(restored.rng.state(), db.rng_state_for_test());
        assert_eq!(restored.tables.len(), 1);
        assert_eq!(
            restored.tables[0].snapshot(),
            db.tables()[0].snapshot(),
            "storage state must survive the codec verbatim"
        );
        assert_eq!(restored.archive.snapshot(), db.archive().snapshot());
        assert_eq!(restored.history.snapshot(), db.history().snapshot());
        assert_eq!(
            restored.samplecache.counters(),
            db.sample_cache().counters()
        );
        assert_eq!(restored.qerror, db.obs().qerror_stats());
        let det: Vec<_> = db
            .obs()
            .registry
            .snapshot()
            .into_iter()
            .filter(|s| !s.volatile)
            .map(|s| MetricSample {
                volatile: false,
                ..s
            })
            .collect();
        assert_eq!(restored.metrics, det);
    }

    #[test]
    fn setting_payload_roundtrips() {
        for setting in [
            StatsSetting::NoStatistics,
            StatsSetting::CatalogOnly,
            StatsSetting::ArchiveReadOnly,
            StatsSetting::Jits(JitsConfig {
                strategy: SensitivityStrategy::EpsilonPlanning(EpsilonConfig::default()),
                s_max: 0.25,
                aggregate: AggregateFn::Max,
                collect_threads: 8,
                ..JitsConfig::default()
            }),
        ] {
            let bytes = encode_setting(&setting);
            let back = decode_setting(&bytes).unwrap();
            assert_eq!(format!("{back:?}"), format!("{setting:?}"));
        }
    }

    #[test]
    fn truncated_payload_is_a_typed_recovery_error() {
        let db = crate::Database::new(1);
        let bytes = encode_state(&StateRefs {
            clock: 0,
            rng_state: 1,
            batch_executor: true,
            data_skipping: true,
            profiling: true,
            setting: db.setting(),
            catalog: db.catalog(),
            tables: db.tables(),
            archive: db.archive(),
            history: db.history(),
            predcache: db.predcache_for_test(),
            samplecache: db.sample_cache(),
            obs: db.obs(),
        });
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            match decode_state(&bytes[..cut]) {
                Err(JitsError::Recovery(_)) => {}
                Err(other) => panic!("cut at {cut}: expected Recovery error, got {other:?}"),
                Ok(_) => panic!("cut at {cut}: expected Recovery error, got Ok"),
            }
        }
        // trailing garbage is corruption too
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_state(&padded),
            Err(JitsError::Recovery(_))
        ));
    }
}
