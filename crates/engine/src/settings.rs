//! Statistics settings — the experiment knob of the paper's evaluation.

use jits::JitsConfig;

/// How the optimizer gets its statistics for a session. These map directly
/// onto the four settings of the paper's §4.2 workload experiment:
///
/// | Paper setting                          | This enum                     |
/// |----------------------------------------|-------------------------------|
/// | JITS disabled, no initial statistics   | `NoStatistics`                |
/// | JITS disabled, general statistics      | `CatalogOnly` (after RUNSTATS)|
/// | JITS disabled, general + workload stats| `CatalogOnly` + pre-populated archive via `ArchiveReadOnly` |
/// | JITS enabled                           | `Jits(config)`                |
#[derive(Debug, Clone, Default)]
pub enum StatsSetting {
    /// Ignore all statistics: textbook default selectivities only.
    NoStatistics,
    /// General catalog statistics with independence assumptions
    /// (whatever RUNSTATS has populated; an empty catalog degrades to
    /// defaults).
    #[default]
    CatalogOnly,
    /// Consult the QSS archive and catalog, but never collect at compile
    /// time (the paper's "workload statistics" setting: column-group stats
    /// exist from a prior analysis pass but are not maintained).
    ArchiveReadOnly,
    /// Full JITS: sensitivity analysis, compile-time sampling, archive
    /// maintenance, feedback.
    Jits(JitsConfig),
}

impl StatsSetting {
    /// The JITS config, if JITS is active.
    pub fn jits_config(&self) -> Option<&JitsConfig> {
        match self {
            StatsSetting::Jits(c) => Some(c),
            _ => None,
        }
    }

    /// Whether the QSS archive participates in estimation.
    pub fn uses_archive(&self) -> bool {
        matches!(self, StatsSetting::ArchiveReadOnly | StatsSetting::Jits(_))
    }

    /// Human-readable label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            StatsSetting::NoStatistics => "no-stats",
            StatsSetting::CatalogOnly => "general-stats",
            StatsSetting::ArchiveReadOnly => "workload-stats",
            StatsSetting::Jits(_) => "jits",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_flags() {
        assert_eq!(StatsSetting::NoStatistics.label(), "no-stats");
        assert!(!StatsSetting::NoStatistics.uses_archive());
        assert!(StatsSetting::ArchiveReadOnly.uses_archive());
        let j = StatsSetting::Jits(JitsConfig::default());
        assert!(j.uses_archive());
        assert!(j.jits_config().is_some());
        assert!(StatsSetting::CatalogOnly.jits_config().is_none());
    }
}
