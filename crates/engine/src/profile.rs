//! Per-operator query profiles: the estimation-quality observatory.
//!
//! After every executed SELECT the engine zips the physical plan with the
//! executor's post-order observation stream ([`jits_executor::ExecStats`])
//! into a [`QueryProfile`]: one row per operator carrying estimated vs.
//! actual cardinality, q-error, charged work, and inclusive wall time.
//! The deterministic fields (kind, table, rows, q-error, work) are
//! bit-identical between the row and batch executors and across
//! `collect_threads`; only `wall_nanos` is volatile, and every dump path
//! can mask it.
//!
//! Profiles feed three consumers: `EXPLAIN ANALYZE`
//! ([`crate::Database::explain_analyze`]), the `jits_profile` /
//! `jits_flight` system views, and the per-table q-error aggregates the
//! sensitivity loop reads to prioritize re-collection of tables the
//! optimizer actually mispredicted.

use crate::observe;
use jits_catalog::Catalog;
use jits_executor::ExecStats;
use jits_obs::{clamp_q_error, ProfileNodeRow, QueryProfile};
use jits_optimizer::PhysicalPlan;
use std::fmt::Write as _;

/// Everything [`build_profile`] needs about the statement besides the plan
/// and the executor stats.
pub(crate) struct ProfileContext<'a> {
    /// Logical statement clock.
    pub clock: u64,
    /// Session id (0 on the single-owner path).
    pub session: u64,
    /// Statement text.
    pub sql: &'a str,
    /// Whether the batch executor evaluated the statement.
    pub batch_executor: bool,
    /// Result rows returned.
    pub result_rows: usize,
    /// Whether any pipeline stage degraded for this statement.
    pub degraded: bool,
    /// Execute-phase wall nanoseconds (volatile).
    pub exec_wall_nanos: u64,
}

/// Builds the per-operator profile of one executed statement.
///
/// The walker visits the plan in the executor's push order (post-order,
/// children before self) to consume `stats.nodes` / `stats.node_walls`,
/// but emits rows in pre-order with depths so the profile reads as an
/// indented tree.
pub(crate) fn build_profile(
    plan: &PhysicalPlan,
    stats: &ExecStats,
    catalog: &Catalog,
    ctx: &ProfileContext<'_>,
) -> QueryProfile {
    let mut nodes = Vec::with_capacity(stats.nodes.len());
    let mut cursor = 0usize;
    flatten(plan, stats, catalog, 0, &mut cursor, &mut nodes);
    debug_assert_eq!(
        cursor,
        stats.nodes.len(),
        "profile walker out of step with the observation stream"
    );
    let max_q_error = nodes.iter().map(|n| n.q_error).fold(1.0f64, f64::max);
    QueryProfile {
        clock: ctx.clock,
        session: ctx.session,
        sql: ctx.sql.to_string(),
        executor: if ctx.batch_executor { "batch" } else { "row" }.to_string(),
        result_rows: ctx.result_rows,
        total_work: stats.work,
        max_q_error,
        degraded: ctx.degraded,
        exec_wall_nanos: ctx.exec_wall_nanos,
        nodes,
    }
}

/// Consumes this subtree's observations from the post-order stream and
/// appends its rows in pre-order (self before children) at `depth`.
fn flatten(
    plan: &PhysicalPlan,
    stats: &ExecStats,
    catalog: &Catalog,
    depth: usize,
    cursor: &mut usize,
    out: &mut Vec<ProfileNodeRow>,
) {
    match plan {
        PhysicalPlan::SeqScan { scan, .. }
        | PhysicalPlan::PrunedScan { scan, .. }
        | PhysicalPlan::IndexScan { scan, .. } => {
            push_row(
                stats,
                *cursor,
                depth,
                observe::table_name(catalog, scan.table),
                out,
            );
            *cursor += 1;
        }
        PhysicalPlan::HashJoin { build, probe, .. } => {
            let mut kids = Vec::new();
            flatten(build, stats, catalog, depth + 1, cursor, &mut kids);
            flatten(probe, stats, catalog, depth + 1, cursor, &mut kids);
            push_row(stats, *cursor, depth, String::new(), out);
            *cursor += 1;
            out.append(&mut kids);
        }
        PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
            // the inner side is a per-probe index access inside the join
            // operator itself (the executor pushes no separate node for
            // it), so its table labels the join row
            let mut kids = Vec::new();
            flatten(outer, stats, catalog, depth + 1, cursor, &mut kids);
            push_row(
                stats,
                *cursor,
                depth,
                observe::table_name(catalog, inner.table),
                out,
            );
            *cursor += 1;
            out.append(&mut kids);
        }
        PhysicalPlan::NLJoin { outer, inner, .. } => {
            let mut kids = Vec::new();
            flatten(outer, stats, catalog, depth + 1, cursor, &mut kids);
            flatten(inner, stats, catalog, depth + 1, cursor, &mut kids);
            push_row(stats, *cursor, depth, String::new(), out);
            *cursor += 1;
            out.append(&mut kids);
        }
    }
}

/// Emits the row for the observation at `i` (no-op if the stream is
/// shorter than the plan, which the debug assertion above would flag).
fn push_row(
    stats: &ExecStats,
    i: usize,
    depth: usize,
    table: String,
    out: &mut Vec<ProfileNodeRow>,
) {
    let Some(obs) = stats.nodes.get(i) else {
        return;
    };
    out.push(ProfileNodeRow {
        depth,
        kind: obs.kind.label().to_string(),
        table,
        est_rows: obs.est_rows,
        actual_rows: obs.actual_rows,
        q_error: clamp_q_error(obs.q_error()),
        work: obs.work,
        wall_nanos: stats.node_walls.get(i).copied().unwrap_or(0),
    });
}

/// Renders a profile as an indented operator tree (the `EXPLAIN ANALYZE`
/// output format).
pub(crate) fn render_profile(p: &QueryProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN ANALYZE ({} executor): {} rows, work {:.0}, max q-error {:.2}{}",
        p.executor,
        p.result_rows,
        p.total_work,
        p.max_q_error,
        if p.degraded { ", DEGRADED" } else { "" },
    );
    for n in &p.nodes {
        let on = if n.table.is_empty() {
            String::new()
        } else {
            format!(" on {}", n.table)
        };
        let _ = writeln!(
            out,
            "{}{}{} (est={:.1} actual={:.1} q-error={:.2} work={:.0} wall={}ns)",
            "  ".repeat(n.depth + 1),
            n.kind,
            on,
            n.est_rows,
            n.actual_rows,
            n.q_error,
            n.work,
            n.wall_nanos,
        );
    }
    out
}
