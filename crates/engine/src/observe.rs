//! Bridges engine/JITS types into the generic `jits-obs` events and
//! metrics.
//!
//! Both execution paths — the single-owner [`crate::Database`] and the
//! locked [`crate::Session`] — funnel their instrumentation through these
//! helpers so span taxonomy, metric names (`jits.<component>.<name>`), and
//! volatility classification are defined in exactly one place. Registry
//! updates happen unconditionally; trace events cost nothing when the
//! tracer is off (the builder drops the closures unevaluated).
//!
//! The obs registry lock ranks *above* every engine lock, so calling these
//! helpers while holding engine guards is always rank-safe.

use crate::database::MaterializeOutcome;
use crate::metrics::CountersSnapshot;
use jits::{CollectTiming, JitsConfig, MaterializeDecision, SampleOrigin, TableScore};
use jits_catalog::Catalog;
use jits_common::{ColGroup, TableId};
use jits_obs::{
    clamp_q_error, DegradationRow, FlightEvent, Observability, QueryLogEntry, QueryProfile,
    ScoreRow, TraceBuilder, TraceEvent, Volatility,
};
use jits_query::QueryBlock;
use jits_storage::CacheCounters;
use std::collections::BTreeMap;

/// Resolves a table id to its name for trace/score rows.
pub(crate) fn table_name(catalog: &Catalog, tid: TableId) -> String {
    catalog
        .table(tid)
        .map(|t| t.name.clone())
        .unwrap_or_else(|| format!("table{}", tid.0))
}

/// The human-readable rationale of one Algorithm 3 verdict.
pub(crate) fn score_reason(score: &TableScore, cfg: &JitsConfig) -> String {
    if cfg.always_collects() {
        "s_max = 0: always collect".to_string()
    } else if score.collect {
        format!("score {:.3} >= s_max {:.3}", score.score, cfg.s_max)
    } else {
        format!("score {:.3} < s_max {:.3}", score.score, cfg.s_max)
    }
}

/// Records the query-analysis stage (Algorithm 1).
pub(crate) fn note_analysis(
    obs: &Observability,
    tb: &mut TraceBuilder,
    tables: usize,
    candidate_groups: usize,
) {
    obs.registry
        .counter("jits.analysis.candidate_groups", Volatility::Deterministic)
        .add(candidate_groups as u64);
    tb.event(|| TraceEvent::Analysis {
        tables,
        candidate_groups,
    });
}

/// Records the sensitivity stage (Algorithms 2–4): per-table scores with
/// rationale, per-candidate materialize verdicts, and the latest-scores
/// state backing the `jits_table_scores` view.
pub(crate) fn note_sensitivity(
    obs: &Observability,
    tb: &mut TraceBuilder,
    catalog: &Catalog,
    scores: &[TableScore],
    materialize_log: &[MaterializeDecision],
    cfg: &JitsConfig,
    clock: u64,
) {
    let marked = scores.iter().filter(|s| s.collect).count();
    obs.registry
        .counter("jits.sensitivity.tables_scored", Volatility::Deterministic)
        .add(scores.len() as u64);
    obs.registry
        .counter("jits.sensitivity.tables_marked", Volatility::Deterministic)
        .add(marked as u64);
    let rows: Vec<ScoreRow> = scores
        .iter()
        .map(|s| ScoreRow {
            qun: s.qun,
            table: table_name(catalog, s.table),
            s1: s.s1,
            s2: s.s2,
            score: s.score,
            collect: s.collect,
            reason: score_reason(s, cfg),
        })
        .collect();
    for r in &rows {
        tb.event(|| TraceEvent::TableSensitivity {
            qun: r.qun,
            table: r.table.clone(),
            s1: r.s1,
            s2: r.s2,
            score: r.score,
            collect: r.collect,
            reason: r.reason.clone(),
        });
    }
    for d in materialize_log {
        tb.event(|| TraceEvent::MaterializeDecision {
            colgroup: d.colgroup.to_string(),
            materialize: d.materialize,
            reason: d.reason.to_string(),
        });
    }
    obs.record_scores(clock, rows);
}

/// Records the collection stage: deterministic row/probe counters plus
/// volatile per-table sampling wall times.
pub(crate) fn note_collect(
    obs: &Observability,
    tb: &mut TraceBuilder,
    block: &QueryBlock,
    catalog: &Catalog,
    timings: &[CollectTiming],
) {
    if timings.is_empty() {
        return;
    }
    let reg = &obs.registry;
    reg.counter("jits.collect.tables_sampled", Volatility::Deterministic)
        .add(timings.len() as u64);
    reg.counter("jits.collect.rows_sampled", Volatility::Deterministic)
        .add(timings.iter().map(|t| t.rows_sampled as u64).sum());
    reg.counter("jits.collect.slot_probes", Volatility::Deterministic)
        .add(timings.iter().map(|t| t.slot_probes as u64).sum());
    let hist = reg.histogram("jits.collect.table_nanos", Volatility::Volatile);
    let gather = reg.histogram("jits.collect.gather_nanos", Volatility::Volatile);
    let eval = reg.histogram("jits.collect.eval_nanos", Volatility::Volatile);
    for t in timings {
        if t.wall_nanos > 0 {
            hist.observe(t.wall_nanos);
        }
        if t.gather_nanos > 0 {
            gather.observe(t.gather_nanos);
        }
        if t.eval_nanos > 0 {
            eval.observe(t.eval_nanos);
        }
        tb.event(|| TraceEvent::SampleTable {
            qun: t.qun,
            table: table_name(catalog, block.quns[t.qun].table),
            rows_sampled: t.rows_sampled,
            slot_probes: t.slot_probes,
            worker: t.worker,
            wall_nanos: t.wall_nanos,
        });
        match t.origin {
            SampleOrigin::Fresh => {}
            SampleOrigin::Cached { staleness } => tb.event(|| TraceEvent::Note {
                label: "samplecache",
                detail: format!(
                    "qun {} served cached sample (staleness {staleness:.3})",
                    t.qun
                ),
            }),
            SampleOrigin::Redrawn { staleness } => tb.event(|| TraceEvent::Note {
                label: "samplecache",
                detail: format!(
                    "qun {} redrew stale sample (staleness {staleness:.3})",
                    t.qun
                ),
            }),
        }
    }
}

/// Records one collect pass's sample-cache outcomes as counter deltas.
/// The lookups run sequentially in quantifier order before collection fans
/// out, so these counters are deterministic at any `collect_threads`.
pub(crate) fn note_samplecache(
    obs: &Observability,
    tb: &mut TraceBuilder,
    before: CacheCounters,
    after: CacheCounters,
) {
    if before == after {
        return;
    }
    let (hits, misses, stale) = (
        after.hits - before.hits,
        after.misses - before.misses,
        after.stale_redraws - before.stale_redraws,
    );
    let reg = &obs.registry;
    reg.counter("jits.samplecache.hits", Volatility::Deterministic)
        .add(hits);
    reg.counter("jits.samplecache.misses", Volatility::Deterministic)
        .add(misses);
    reg.counter("jits.samplecache.stale_redraws", Volatility::Deterministic)
        .add(stale);
    tb.event(|| TraceEvent::Note {
        label: "samplecache",
        detail: format!("hits {hits}, misses {misses}, stale redraws {stale}"),
    });
}

/// Records one materialization's outcome: cache insert, or archive refine
/// (bucket growth, IPF fit, forced evictions).
pub(crate) fn note_materialize_outcome(
    obs: &Observability,
    tb: &mut TraceBuilder,
    colgroup: &ColGroup,
    outcome: &MaterializeOutcome,
) {
    let reg = &obs.registry;
    match outcome {
        MaterializeOutcome::Skipped => {}
        MaterializeOutcome::Cache => {
            reg.counter("jits.archive.cached_groups", Volatility::Deterministic)
                .inc();
            tb.event(|| TraceEvent::Refine {
                colgroup: colgroup.to_string(),
                target: "predcache",
                buckets_before: 0,
                buckets_after: 0,
                ipf_iterations: 0,
                max_residual: 0.0,
                converged: true,
            });
        }
        MaterializeOutcome::Histogram(r) => {
            reg.counter(
                "jits.archive.materialized_groups",
                Volatility::Deterministic,
            )
            .inc();
            reg.counter("jits.refine.ipf_iterations", Volatility::Deterministic)
                .add(r.fit.iterations as u64);
            if r.buckets_after > r.buckets_before {
                reg.counter("jits.refine.buckets_split", Volatility::Deterministic)
                    .add((r.buckets_after - r.buckets_before) as u64);
            }
            if !r.fit.converged {
                reg.counter("jits.refine.nonconverged", Volatility::Deterministic)
                    .inc();
            }
            reg.counter("jits.archive.evictions", Volatility::Deterministic)
                .add(r.evicted.len() as u64);
            tb.event(|| TraceEvent::Refine {
                colgroup: colgroup.to_string(),
                target: "archive",
                buckets_before: r.buckets_before,
                buckets_after: r.buckets_after,
                ipf_iterations: r.fit.iterations,
                max_residual: r.fit.max_residual,
                converged: r.fit.converged,
            });
            for g in &r.evicted {
                tb.event(|| TraceEvent::Evicted {
                    colgroup: g.to_string(),
                });
            }
        }
    }
}

/// Refreshes the archive-size gauges.
pub(crate) fn note_archive_gauges(obs: &Observability, archive: &jits::QssArchive) {
    obs.registry
        .gauge("jits.archive.histograms", Volatility::Deterministic)
        .set(archive.len() as u64);
    obs.registry
        .gauge("jits.archive.total_buckets", Volatility::Deterministic)
        .set(archive.total_buckets() as u64);
}

/// Registry counter fed by one fault point's degradations. Static names so
/// the registry key set stays closed (and the export surface predictable).
fn degraded_counter_name(point: &str) -> &'static str {
    match point {
        jits_common::fault::FP_SAMPLE_DRAW => "jits.degraded.sample_draw",
        jits_common::fault::FP_SAMPLECACHE_COMMIT => "jits.degraded.samplecache_commit",
        jits_common::fault::FP_COLLECT_WORKER => "jits.degraded.collect_worker",
        jits_common::fault::FP_ARCHIVE_READ => "jits.degraded.archive_read",
        jits_common::fault::FP_ARCHIVE_WRITE => "jits.degraded.archive_write",
        jits_common::fault::FP_HISTORY_READ => "jits.degraded.history_read",
        jits::FP_COLLECT_BUDGET => "jits.degraded.collect_budget",
        _ => "jits.degraded.other",
    }
}

/// Records one degradation event: per-fault-point counter, trace note,
/// `jits_degradation` view row, and the statement-level flag/reason on the
/// metrics. Degradation counters are deterministic — every decision derives
/// from the fault seed or a work-unit budget, never wall clock.
pub(crate) fn note_degradation(
    obs: &Observability,
    tb: &mut TraceBuilder,
    metrics: &mut crate::QueryMetrics,
    clock: u64,
    table: String,
    fault_point: &str,
    fallback: &str,
) {
    obs.registry
        .counter(
            degraded_counter_name(fault_point),
            Volatility::Deterministic,
        )
        .inc();
    obs.registry
        .counter("jits.degraded.total", Volatility::Deterministic)
        .inc();
    tb.event(|| TraceEvent::Note {
        label: "degraded",
        detail: format!("{fault_point} -> {fallback} (table '{table}')"),
    });
    metrics.degraded = true;
    metrics
        .degraded_reasons
        .push(format!("{fault_point} -> {fallback}"));
    obs.flight.record(FlightEvent::Degradation {
        clock,
        table: table.clone(),
        fault_point: fault_point.to_string(),
        fallback: fallback.to_string(),
    });
    obs.record_degradation(DegradationRow {
        clock,
        table,
        fault_point: fault_point.to_string(),
        fallback: fallback.to_string(),
    });
}

/// A q-error in integer milli-units, clamped: the registry speaks `u64`,
/// and thousandths are plenty of resolution for accuracy aggregates.
fn qerror_milli(q: f64) -> u64 {
    (clamp_q_error(q) * 1000.0) as u64
}

/// Records one statement's operator profile: the `jits.qerror.*` accuracy
/// metrics, the per-table q-error aggregates the sensitivity loop reads,
/// the flight-recorder event, and — on a misprediction above
/// `qerror_threshold` or a degraded statement — the anomaly marker that
/// triggers an automatic flight dump. Everything recorded here derives
/// from estimated vs. actual row counts, never timing, so the metrics are
/// deterministic at any `collect_threads`.
pub(crate) fn note_profile(obs: &Observability, profile: &QueryProfile, qerror_threshold: f64) {
    let reg = &obs.registry;
    reg.counter("jits.profile.statements", Volatility::Deterministic)
        .inc();
    let qhist = reg.histogram("jits.qerror.scan_milli", Volatility::Deterministic);
    let mut scans = 0u64;
    let mut mispredicted = 0u64;
    for n in &profile.nodes {
        let is_scan = n.kind == "seq_scan" || n.kind == "pruned_scan" || n.kind == "index_scan";
        if !is_scan || n.table.is_empty() {
            continue;
        }
        obs.record_qerror(&n.table, n.q_error, qerror_threshold);
        qhist.observe(qerror_milli(n.q_error));
        scans += 1;
        if n.q_error > qerror_threshold {
            mispredicted += 1;
        }
    }
    reg.counter("jits.qerror.scans", Volatility::Deterministic)
        .add(scans);
    reg.counter("jits.qerror.mispredicted_scans", Volatility::Deterministic)
        .add(mispredicted);
    reg.gauge("jits.qerror.last_max_milli", Volatility::Deterministic)
        .set(qerror_milli(profile.max_q_error));
    let max_q = profile.max_q_error;
    let (clock, degraded) = (profile.clock, profile.degraded);
    obs.flight.record(FlightEvent::Profile(profile.clone()));
    if max_q > qerror_threshold {
        obs.flight.record_anomaly(
            clock,
            format!("q-error {:.3} above threshold {qerror_threshold:.3}", max_q),
        );
    } else if degraded {
        obs.flight
            .record_anomaly(clock, "degraded statement".to_string());
    }
}

/// Observes one statement's per-stage wall latencies into the fixed-bucket
/// log-scale sketches behind the `jits.stage.*` p50/p99/p999 exports.
/// Volatile by definition — masked out of deterministic metric dumps.
pub(crate) fn note_stage_latencies(
    obs: &Observability,
    plan_nanos: u64,
    collect_nanos: u64,
    exec_nanos: u64,
) {
    let reg = &obs.registry;
    reg.histogram("jits.stage.plan_nanos", Volatility::Volatile)
        .observe(plan_nanos);
    if collect_nanos > 0 {
        reg.histogram("jits.stage.collect_nanos", Volatility::Volatile)
            .observe(collect_nanos);
    }
    reg.histogram("jits.stage.execute_nanos", Volatility::Volatile)
        .observe(exec_nanos);
}

/// The last observed per-table q-errors resolved to table ids — the
/// feedback [`jits::sensitivity_analysis_with_feedback`] uses to boost
/// re-collection of tables the optimizer actually mispredicted. Tables
/// whose names no longer resolve are dropped.
pub(crate) fn qerror_feedback(obs: &Observability, catalog: &Catalog) -> BTreeMap<TableId, f64> {
    obs.qerror_last()
        .into_iter()
        .filter_map(|(name, q)| catalog.resolve(&name).map(|tid| (tid, q)))
        .collect()
}

/// Records the feedback stage (LEO ingest).
/// Records which executor evaluated one SELECT. Deterministic: the choice
/// is a setting, never data- or timing-dependent, so the batch/row split is
/// replayable and backs the A/B comparisons.
pub(crate) fn note_executor(obs: &Observability, batch: bool) {
    let name = if batch {
        "jits.exec.batch_statements"
    } else {
        "jits.exec.row_statements"
    };
    obs.registry.counter(name, Volatility::Deterministic).inc();
}

/// Records one SELECT's access-path usage: zone-map skip counters plus a
/// per-path tally of how base tables were reached. Everything derives from
/// the skip lists and the plan shape — never from whether blocks were
/// physically skipped — so the counters are deterministic and identical
/// with data skipping on or off, on either executor, at any thread count.
pub(crate) fn note_access_paths(obs: &Observability, stats: &jits_executor::ExecStats) {
    use jits_executor::NodeKind;
    let (mut seq, mut pruned, mut index) = (0u64, 0u64, 0u64);
    for n in &stats.nodes {
        match n.kind {
            NodeKind::SeqScan => seq += 1,
            NodeKind::PrunedScan => pruned += 1,
            NodeKind::IndexScan | NodeKind::IndexNLJoin => index += 1,
            NodeKind::HashJoin | NodeKind::NLJoin => {}
        }
    }
    let reg = &obs.registry;
    reg.counter("jits.skip.seq_scans", Volatility::Deterministic)
        .add(seq);
    reg.counter("jits.skip.pruned_scans", Volatility::Deterministic)
        .add(pruned);
    reg.counter("jits.skip.index_scans", Volatility::Deterministic)
        .add(index);
    reg.counter("jits.skip.blocks_total", Volatility::Deterministic)
        .add(stats.blocks_total);
    reg.counter("jits.skip.blocks_pruned", Volatility::Deterministic)
        .add(stats.blocks_pruned);
}

pub(crate) fn note_feedback(obs: &Observability, tb: &mut TraceBuilder, observations: usize) {
    obs.registry
        .counter("jits.feedback.observations", Volatility::Deterministic)
        .add(observations as u64);
    tb.event(|| TraceEvent::Feedback { observations });
}

/// Records one finished statement: counter, latency histograms, query log.
pub(crate) fn note_statement(obs: &Observability, entry: QueryLogEntry) {
    let reg = &obs.registry;
    reg.counter("jits.query.statements", Volatility::Deterministic)
        .inc();
    reg.histogram("jits.query.compile_nanos", Volatility::Volatile)
        .observe(entry.compile_nanos);
    reg.histogram("jits.query.exec_nanos", Volatility::Volatile)
        .observe(entry.exec_nanos);
    obs.log_query(entry);
}

/// Mirrors the engine-wide [`crate::EngineCounters`] into registry gauges
/// (called before exporting a snapshot, so the two surfaces agree).
pub(crate) fn sync_engine_counters(obs: &Observability, snap: &CountersSnapshot) {
    let reg = &obs.registry;
    reg.gauge("jits.engine.statements", Volatility::Deterministic)
        .set(snap.statements);
    reg.gauge("jits.engine.tables_sampled", Volatility::Deterministic)
        .set(snap.tables_sampled);
    reg.gauge("jits.engine.lock_wait_nanos", Volatility::Volatile)
        .set(snap.lock_wait.as_nanos() as u64);
    reg.gauge("jits.engine.contended_acquisitions", Volatility::Volatile)
        .set(snap.contended_acquisitions);
    reg.gauge("jits.engine.parallel_collections", Volatility::Volatile)
        .set(snap.parallel_collections);
}

/// Records one WAL append: kind-tagged count plus the running byte total.
/// All `jits.wal.*` metrics are volatile — a durable run and an in-memory
/// run of the same workload must still produce identical deterministic
/// metric digests, which is exactly what the recovery tests compare.
pub(crate) fn note_wal_append(obs: &Observability, kind: &str, bytes_appended: u64) {
    let reg = &obs.registry;
    reg.counter("jits.wal.appends", Volatility::Volatile).inc();
    reg.counter(&format!("jits.wal.appends.{kind}"), Volatility::Volatile)
        .inc();
    reg.gauge("jits.wal.bytes", Volatility::Volatile)
        .set(bytes_appended);
}

/// Records a swallowed append failure on an infallible-signature knob
/// (setting/flag flips): the log has poisoned itself, so every subsequent
/// fallible durable operation will error loudly — this counter plus the
/// flight note are how the swallowed trigger stays diagnosable.
pub(crate) fn note_wal_append_error(obs: &Observability, clock: u64, kind: &str, err: &str) {
    obs.registry
        .counter("jits.wal.append_errors", Volatility::Volatile)
        .inc();
    obs.flight.record(FlightEvent::Note {
        clock,
        label: "wal_append_error".to_string(),
        detail: format!("append of {kind} record failed (log poisoned): {err}"),
    });
}

/// Records one completed checkpoint.
pub(crate) fn note_checkpoint(obs: &Observability, clock: u64, lsn: u64, payload_bytes: usize) {
    obs.registry
        .counter("jits.wal.checkpoints", Volatility::Volatile)
        .inc();
    obs.registry
        .gauge("jits.wal.checkpoint_bytes", Volatility::Volatile)
        .set(payload_bytes as u64);
    obs.flight.record(FlightEvent::Note {
        clock,
        label: "checkpoint".to_string(),
        detail: format!("checkpoint at lsn {lsn}, {payload_bytes} payload bytes"),
    });
}

/// Records what recovery did at open (volatile counters + a flight note,
/// so `--dump-flight` shows the recovery story post-mortem).
pub(crate) fn note_recovery(obs: &Observability, report: &crate::persist::RecoveryReport) {
    let reg = &obs.registry;
    reg.counter("jits.recovery.opens", Volatility::Volatile).inc();
    reg.counter("jits.recovery.replayed_records", Volatility::Volatile)
        .add(report.replayed_records);
    reg.counter("jits.recovery.replay_errors", Volatility::Volatile)
        .add(report.replay_errors);
    reg.counter("jits.recovery.torn_bytes", Volatility::Volatile)
        .add(report.torn_bytes);
    reg.counter("jits.recovery.corrupt_checkpoints", Volatility::Volatile)
        .add(report.corrupt_checkpoints as u64);
    obs.flight.record(FlightEvent::Note {
        clock: 0,
        label: "recovery".to_string(),
        detail: format!(
            "opened: checkpoint_lsn={:?} replayed={} replay_errors={} torn_bytes={} corrupt_checkpoints={}",
            report.checkpoint_lsn,
            report.replayed_records,
            report.replay_errors,
            report.torn_bytes,
            report.corrupt_checkpoints
        ),
    });
}
