//! Virtual system views over the observability state.
//!
//! Eight read-only views answer plain `SELECT * FROM <view>` statements
//! without touching user data, bumping the query clock, or drawing from
//! the sampling RNG:
//!
//! | View                 | Row layout                                         |
//! |----------------------|----------------------------------------------------|
//! | `jits_archive_stats` | colgroup, buckets, total, uniformity, last_used    |
//! | `jits_table_scores`  | clock, qun, table, s1, s2, score, collect, reason  |
//! | `jits_query_log`     | clock, session, sql, rows, compile_ns, exec_ns, sampled |
//! | `jits_sample_cache`  | table, spec_size, epoch, rows_at_draw, sample_rows, probes, hits, frame_cols |
//! | `jits_degradation`   | clock, table, fault_point, fallback                |
//! | `jits_profile`       | clock, depth, kind, table, est_rows, actual_rows, q_error, work, wall_ns |
//! | `jits_flight`        | clock, kind, detail                                |
//! | `jits_access_paths`  | path, uses, blocks_total, blocks_pruned            |
//!
//! A user table with the same name shadows the view (the interception only
//! fires when the name does not resolve in the catalog).

use jits::QssArchive;
use jits_catalog::Catalog;
use jits_common::Value;
use jits_obs::Observability;
use jits_query::Statement;
use jits_storage::SampleCache;

/// `SELECT * FROM jits_archive_stats` — one row per archived histogram.
pub const VIEW_ARCHIVE_STATS: &str = "jits_archive_stats";
/// `SELECT * FROM jits_table_scores` — latest sensitivity scores.
pub const VIEW_TABLE_SCORES: &str = "jits_table_scores";
/// `SELECT * FROM jits_query_log` — recent statements.
pub const VIEW_QUERY_LOG: &str = "jits_query_log";
/// `SELECT * FROM jits_sample_cache` — one row per memoized table sample.
pub const VIEW_SAMPLE_CACHE: &str = "jits_sample_cache";
/// `SELECT * FROM jits_degradation` — recent pipeline degradation events.
pub const VIEW_DEGRADATION: &str = "jits_degradation";
/// `SELECT * FROM jits_profile` — per-operator profile of the most recent
/// profiled statement.
pub const VIEW_PROFILE: &str = "jits_profile";
/// `SELECT * FROM jits_flight` — the flight-recorder event ring.
pub const VIEW_FLIGHT: &str = "jits_flight";
/// `SELECT * FROM jits_access_paths` — cumulative per-access-path usage and
/// zone-map skip totals.
pub const VIEW_ACCESS_PATHS: &str = "jits_access_paths";

/// Returns the canonical view name if `stmt` is a single-table SELECT from
/// one of the virtual system views (matched case-insensitively).
pub(crate) fn system_view_name(stmt: &Statement) -> Option<&'static str> {
    let Statement::Select(sel) = stmt else {
        return None;
    };
    if sel.from.len() != 1 {
        return None;
    }
    match sel.from[0].table.to_ascii_lowercase().as_str() {
        VIEW_ARCHIVE_STATS => Some(VIEW_ARCHIVE_STATS),
        VIEW_TABLE_SCORES => Some(VIEW_TABLE_SCORES),
        VIEW_QUERY_LOG => Some(VIEW_QUERY_LOG),
        VIEW_SAMPLE_CACHE => Some(VIEW_SAMPLE_CACHE),
        VIEW_DEGRADATION => Some(VIEW_DEGRADATION),
        VIEW_PROFILE => Some(VIEW_PROFILE),
        VIEW_FLIGHT => Some(VIEW_FLIGHT),
        VIEW_ACCESS_PATHS => Some(VIEW_ACCESS_PATHS),
        _ => None,
    }
}

/// Rows of `jits_archive_stats`, in the archive's deterministic key order.
pub(crate) fn archive_stats_rows(archive: &QssArchive) -> Vec<Vec<Value>> {
    archive
        .iter()
        .map(|(group, hist)| {
            vec![
                Value::str(group.to_string()),
                Value::Int(hist.n_buckets() as i64),
                Value::Float(hist.total()),
                Value::Float(hist.uniformity()),
                Value::Int(hist.last_used() as i64),
            ]
        })
        .collect()
}

/// Rows of `jits_table_scores` from the most recent sensitivity pass.
pub(crate) fn table_scores_rows(obs: &Observability) -> Vec<Vec<Value>> {
    let (clock, rows) = obs.latest_scores();
    rows.into_iter()
        .map(|r| {
            vec![
                Value::Int(clock as i64),
                Value::Int(r.qun as i64),
                Value::str(r.table),
                Value::Float(r.s1),
                Value::Float(r.s2),
                Value::Float(r.score),
                Value::Int(r.collect as i64),
                Value::str(r.reason),
            ]
        })
        .collect()
}

/// Rows of `jits_sample_cache`, in table-id order: one row per memoized
/// sample with its version (mutation epoch and cardinality at draw time),
/// serve count, and how many columnar gathers are memoized alongside it.
pub(crate) fn sample_cache_rows(cache: &SampleCache, catalog: &Catalog) -> Vec<Vec<Value>> {
    cache
        .entries()
        .map(|(tid, e)| {
            vec![
                Value::str(crate::observe::table_name(catalog, tid)),
                Value::Int(e.spec.size as i64),
                Value::Int(e.epoch as i64),
                Value::Int(e.rows_at_draw as i64),
                Value::Int(e.rows.len() as i64),
                Value::Int(e.probes as i64),
                Value::Int(e.hits as i64),
                Value::Int(e.frames.len() as i64),
            ]
        })
        .collect()
}

/// Rows of `jits_degradation`, oldest first: every time the pipeline fell
/// back (budget abort, fault-isolated table, quarantined archive group).
pub(crate) fn degradation_rows(obs: &Observability) -> Vec<Vec<Value>> {
    obs.recent_degradations()
        .into_iter()
        .map(|d| {
            vec![
                Value::Int(d.clock as i64),
                Value::str(d.table),
                Value::str(d.fault_point),
                Value::str(d.fallback),
            ]
        })
        .collect()
}

/// Rows of `jits_profile`: the operator tree of the most recent profiled
/// statement, one row per node in pre-order.
pub(crate) fn profile_rows(obs: &Observability) -> Vec<Vec<Value>> {
    let Some(p) = obs.flight.latest_profile() else {
        return Vec::new();
    };
    p.nodes
        .into_iter()
        .map(|n| {
            vec![
                Value::Int(p.clock as i64),
                Value::Int(n.depth as i64),
                Value::str(n.kind),
                Value::str(n.table),
                Value::Float(n.est_rows),
                Value::Float(n.actual_rows),
                Value::Float(n.q_error),
                Value::Float(n.work),
                Value::Int(n.wall_nanos as i64),
            ]
        })
        .collect()
}

/// Rows of `jits_flight`, oldest first: every retained flight-recorder
/// event with a one-line deterministic summary.
pub(crate) fn flight_rows(obs: &Observability) -> Vec<Vec<Value>> {
    use jits_obs::FlightEvent;
    obs.flight
        .recent()
        .into_iter()
        .map(|e| {
            let detail = match &e {
                FlightEvent::Profile(p) => format!(
                    "{} ({} executor, {} rows, max q-error {:.2}{})",
                    p.sql,
                    p.executor,
                    p.result_rows,
                    p.max_q_error,
                    if p.degraded { ", degraded" } else { "" },
                ),
                FlightEvent::Degradation {
                    table,
                    fault_point,
                    fallback,
                    ..
                } => {
                    if table.is_empty() {
                        format!("{fault_point} -> {fallback}")
                    } else {
                        format!("{table}: {fault_point} -> {fallback}")
                    }
                }
                FlightEvent::Note { label, detail, .. } => format!("{label}: {detail}"),
                FlightEvent::Anomaly { reason, .. } => reason.clone(),
            };
            vec![
                Value::Int(e.clock() as i64),
                Value::str(e.kind()),
                Value::str(detail),
            ]
        })
        .collect()
}

/// Rows of `jits_access_paths`: one row per base-table access path with its
/// cumulative use count; the `pruned_scan` row additionally carries the
/// zone-map block totals. Backed by the deterministic `jits.skip.*`
/// counters, so the view is identical with data skipping on or off.
pub(crate) fn access_paths_rows(obs: &Observability) -> Vec<Vec<Value>> {
    use jits_obs::Volatility;
    let reg = &obs.registry;
    let get = |name: &str| reg.counter(name, Volatility::Deterministic).get() as i64;
    vec![
        vec![
            Value::str("seq_scan"),
            Value::Int(get("jits.skip.seq_scans")),
            Value::Int(0),
            Value::Int(0),
        ],
        vec![
            Value::str("pruned_scan"),
            Value::Int(get("jits.skip.pruned_scans")),
            Value::Int(get("jits.skip.blocks_total")),
            Value::Int(get("jits.skip.blocks_pruned")),
        ],
        vec![
            Value::str("index_scan"),
            Value::Int(get("jits.skip.index_scans")),
            Value::Int(0),
            Value::Int(0),
        ],
    ]
}

/// Rows of `jits_query_log`, oldest first.
pub(crate) fn query_log_rows(obs: &Observability) -> Vec<Vec<Value>> {
    obs.recent_queries()
        .into_iter()
        .map(|q| {
            vec![
                Value::Int(q.clock as i64),
                Value::Int(q.session as i64),
                Value::str(q.sql),
                Value::Int(q.result_rows as i64),
                Value::Int(q.compile_nanos as i64),
                Value::Int(q.exec_nanos as i64),
                Value::Int(q.sampled_tables as i64),
            ]
        })
        .collect()
}
