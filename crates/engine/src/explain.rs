//! `EXPLAIN`-style introspection of the JITS compile-phase decisions.
//!
//! [`crate::Database::explain_jits`] / [`crate::Session::explain_jits`]
//! run Algorithms 1–4 against the *current* engine state without executing
//! the statement, bumping the query clock, or drawing from the sampling
//! RNG — so the reported scores and verdicts are exactly what the next
//! `execute` of the same SQL would compute.

use crate::observe;
use crate::settings::StatsSetting;
use jits::{query_analysis, sensitivity_analysis_with_feedback, TableScore};
use jits_catalog::Catalog;
use jits_common::TableId;
use jits_obs::ScoreRow;
use jits_query::QueryBlock;
use jits_storage::Table;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One Algorithm 4 materialize-or-not verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializeExplain {
    /// The candidate column group.
    pub colgroup: String,
    /// Whether the group would be materialized.
    pub materialize: bool,
    /// Why.
    pub reason: String,
}

/// The full JITS decision trace for one statement, without executing it.
#[derive(Debug, Clone, PartialEq)]
pub struct JitsExplain {
    /// The statement.
    pub sql: String,
    /// False when the active setting never collects (non-JITS settings,
    /// or `s_max = 1`): the remaining fields are then empty.
    pub enabled: bool,
    /// The sensitivity threshold in force.
    pub s_max: f64,
    /// Candidate predicate groups Algorithm 1 enumerated.
    pub candidate_groups: usize,
    /// Raw per-table sensitivity scores, bit-for-bit what `execute` would
    /// report in [`crate::QueryMetrics::table_scores`].
    pub table_scores: Vec<TableScore>,
    /// The same scores resolved to table names with rationale strings.
    pub scores: Vec<ScoreRow>,
    /// Names of the tables that would be sampled.
    pub sample_tables: Vec<String>,
    /// Per-candidate materialization verdicts for every sampled table.
    pub materialize: Vec<MaterializeExplain>,
}

impl JitsExplain {
    /// Renders the decision trace as indented text (one line per decision).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "JITS decision trace for: {}", self.sql);
        if !self.enabled {
            out.push_str("  statistics setting does not collect at compile time\n");
            return out;
        }
        let _ = writeln!(
            out,
            "  s_max = {:.3} | candidate groups: {}",
            self.s_max, self.candidate_groups
        );
        for s in &self.scores {
            let verdict = if s.collect { "sample" } else { "skip" };
            let _ = writeln!(
                out,
                "  q{} {}: s1={:.3} s2={:.3} score={:.3} -> {} ({})",
                s.qun, s.table, s.s1, s.s2, s.score, verdict, s.reason
            );
        }
        for m in &self.materialize {
            let verdict = if m.materialize { "materialize" } else { "skip" };
            let _ = writeln!(out, "  {}: {} ({})", m.colgroup, verdict, m.reason);
        }
        if self.sample_tables.is_empty() {
            out.push_str("  tables to sample: none\n");
        } else {
            let _ = writeln!(out, "  tables to sample: {}", self.sample_tables.join(", "));
        }
        out
    }
}

/// Replays the compile-phase decisions for one bound block against a
/// consistent snapshot of the engine state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explain_block(
    sql: &str,
    block: &QueryBlock,
    setting: &StatsSetting,
    catalog: &Catalog,
    tables: &[Table],
    archive: &jits::QssArchive,
    history: &jits::StatHistory,
    predcache: &jits::PredicateCache,
    qerror: &BTreeMap<TableId, f64>,
) -> JitsExplain {
    let mut out = JitsExplain {
        sql: sql.to_string(),
        enabled: false,
        s_max: 1.0,
        candidate_groups: 0,
        table_scores: Vec::new(),
        scores: Vec::new(),
        sample_tables: Vec::new(),
        materialize: Vec::new(),
    };
    let StatsSetting::Jits(cfg) = setting else {
        return out;
    };
    if cfg.never_collects() {
        return out;
    }
    out.enabled = true;
    out.s_max = cfg.s_max;
    let candidates = query_analysis(block, cfg.max_group_enumeration);
    out.candidate_groups = candidates.len();
    // the same q-error feedback `execute` applies, so the preview stays
    // bit-for-bit what the next execution would decide
    let decision = sensitivity_analysis_with_feedback(
        block,
        &candidates,
        history,
        archive,
        predcache,
        catalog,
        tables,
        cfg,
        qerror,
    );
    out.scores = decision
        .table_scores
        .iter()
        .map(|s| ScoreRow {
            qun: s.qun,
            table: observe::table_name(catalog, s.table),
            s1: s.s1,
            s2: s.s2,
            score: s.score,
            collect: s.collect,
            reason: observe::score_reason(s, cfg),
        })
        .collect();
    out.table_scores = decision.table_scores;
    out.sample_tables = decision
        .sample_quns
        .iter()
        .map(|&qun| observe::table_name(catalog, block.quns[qun].table))
        .collect();
    out.materialize = decision
        .materialize_log
        .iter()
        .map(|d| MaterializeExplain {
            colgroup: d.colgroup.to_string(),
            materialize: d.materialize,
            reason: d.reason.to_string(),
        })
        .collect();
    out
}
