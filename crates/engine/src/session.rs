//! Concurrent query sessions over one shared database.
//!
//! [`SharedDatabase`] wraps every piece of engine state a statement touches
//! — catalog, storage tables, QSS archive, StatHistory, predicate cache,
//! statistics setting — in `parking_lot` locks so that N [`Session`]s on N
//! threads can run [`Session::execute`] concurrently. The read-mostly query
//! path (bind, sensitivity analysis, sampling, plan costing, execution)
//! takes shared read guards; only the narrow mutation windows (DML, UDI
//! reset, archive materialization, feedback ingest, migration) take write
//! guards.
//!
//! # Lock ordering
//!
//! Whenever a statement holds more than one lock, it acquires them in this
//! fixed order (and never acquires an earlier lock while holding a later
//! one), which makes deadlock impossible:
//!
//! ```text
//! catalog < tables < archive < history < predcache < samplecache < setting < wal
//! ```
//!
//! (The write-ahead log, rank 8, is always acquired last: a durable
//! mutation takes its component guards first and appends while holding
//! them, so log order matches mutation order. The observability locks sit
//! above the whole engine — registry at rank 9, flight ring at rank 10 —
//! and are therefore usable from any point of the statement path,
//! including under the WAL guard.)
//!
//! The order is load-bearing and enforced twice: statically by
//! `jits-lint`'s lock-order pass over this crate's source, and dynamically
//! by the rank tracker in the `parking_lot` shim — every component lock is
//! built with [`parking_lot::RwLock::with_rank`] using the `RANK_*`
//! constants below, so in debug/test builds any out-of-order acquisition
//! panics with both lock names instead of deadlocking.
//!
//! # Determinism
//!
//! Each session carries its own `SplitMix64` sampling stream. The first
//! session of a [`Database::into_shared`] conversion continues the master
//! stream exactly where the `Database` left it, so a single-session
//! `SharedDatabase` run is bit-identical to the `Database` run it replaces.
//! Later sessions fork independent streams. Within any one statement,
//! parallel statistics collection is bit-identical to sequential regardless
//! of `collect_threads` (see `jits::collect`), so concurrency knobs never
//! change *what* is computed — only wall-clock time.
//!
//! Every acquisition that actually blocks is charged to
//! [`EngineCounters::lock_wait_nanos`] and to the statement's
//! [`QueryMetrics::lock_wait`].

use crate::database::{
    commit_drawn_samples, materialize_group_into, resolve_sample_sources, MaterializeOutcome,
    PhysicalMetadataProvider, OPTIMIZER_CALL_WORK,
};
use crate::explain::{explain_block, JitsExplain};
use crate::metrics::{wall_since, CountersSnapshot, EngineCounters, QueryMetrics, StageWalls};
use crate::persist::{self, RecoveryReport, StateRefs};
use crate::profile::{build_profile, render_profile, ProfileContext};
use crate::settings::StatsSetting;
use crate::{observe, views, Database, QueryResult};
use jits::{
    collect_for_tables_sourced, ingest, query_analysis, sensitivity_analysis_with_feedback,
    CollectedStats, JitsStatisticsProvider, PredicateCache, QssArchive, SensitivityStrategy,
    StatHistory,
};
use jits_catalog::{runstats, Catalog, RunstatsOptions};
use jits_common::fault::{
    FP_ARCHIVE_READ, FP_ARCHIVE_WRITE, FP_HISTORY_READ, FP_SAMPLECACHE_COMMIT,
};
use jits_common::{fault_key, FaultPlane, JitsError, Result, Schema, SplitMix64, TableId, Value};
use jits_executor::{execute_with_opts, ExecOptions, ExecutorKind};
use jits_obs::clock::now_nanos;
use jits_obs::{FlightEvent, Observability, QueryLogEntry, TraceBuilder};
use jits_optimizer::{
    optimize, CardinalityEstimator, CatalogStatisticsProvider, CostModel, DefaultSelectivities,
    PhysicalPlan, PlanSummary,
};
use jits_query::{
    bind_statement, parse, BoundDelete, BoundInsert, BoundStatement, BoundUpdate, QueryBlock,
};
use jits_storage::{RowId, SampleCache, Table};
use jits_wal::{Wal, WalRecord};
use parking_lot::rank::LockRank;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Rank of the catalog lock — first in the acquisition order.
pub const RANK_CATALOG: LockRank = LockRank::new(1, "catalog");
/// Rank of the storage-tables lock.
pub const RANK_TABLES: LockRank = LockRank::new(2, "tables");
/// Rank of the QSS-archive lock.
pub const RANK_ARCHIVE: LockRank = LockRank::new(3, "archive");
/// Rank of the StatHistory lock.
pub const RANK_HISTORY: LockRank = LockRank::new(4, "history");
/// Rank of the predicate-cache lock.
pub const RANK_PREDCACHE: LockRank = LockRank::new(5, "predcache");
/// Rank of the versioned sample-cache lock.
pub const RANK_SAMPLECACHE: LockRank = LockRank::new(6, "samplecache");
/// Rank of the statistics-setting lock — last of the component locks.
pub const RANK_SETTING: LockRank = LockRank::new(7, "setting");
/// Rank of the write-ahead-log lock — last in the acquisition order, so a
/// durable mutation can append while still holding its component guards.
pub const RANK_WAL: LockRank = LockRank::new(8, "wal");

/// Engine state shared by all sessions, each component behind its own lock
/// (see the module docs for the acquisition order).
struct Shared {
    catalog: RwLock<Catalog>,
    tables: RwLock<Vec<Table>>,
    archive: RwLock<QssArchive>,
    history: RwLock<StatHistory>,
    predcache: RwLock<PredicateCache>,
    samplecache: RwLock<SampleCache>,
    setting: RwLock<StatsSetting>,
    /// Logical statement clock, global across sessions so archive/history
    /// timestamps stay monotone.
    clock: AtomicU64,
    /// Master RNG: the first session takes its state verbatim (and writes
    /// the advanced state back after each sampling phase so checkpoints
    /// snapshot the live stream); later sessions fork independent streams
    /// from it.
    rng_source: Mutex<SplitMix64>,
    /// Sessions handed out so far.
    sessions: AtomicU64,
    cost: CostModel,
    defaults: DefaultSelectivities,
    runstats_opts: RunstatsOptions,
    /// Evaluate SELECTs on the vectorized batch executor (default) or the
    /// row-at-a-time A/B path; lock-free, togglable at any time.
    batch_executor: AtomicBool,
    /// Physically skip zone-map-pruned blocks in pruned scans (default on);
    /// bit-identical results either way, lock-free, togglable at any time.
    data_skipping: AtomicBool,
    /// Build per-operator profiles of executed SELECTs (default on);
    /// lock-free, togglable at any time.
    profiling: AtomicBool,
    counters: EngineCounters,
    /// Tracer, metrics registry, and query log (lock-free or rank-9/10
    /// internally, so usable while holding any engine lock — including the
    /// rank-8 WAL guard).
    obs: Arc<Observability>,
    /// Deterministic fault-injection plane. Like `rng_source`, guarded by a
    /// plain mutex outside the ranked hierarchy: sessions clone the handle
    /// (an `Arc` bump) once per statement before taking any engine lock.
    fault: Mutex<FaultPlane>,
    /// Write-ahead log, `None` for in-memory databases. Rank 8: acquired
    /// last, so durable mutations append while holding their component
    /// guards and log order matches mutation order.
    wal: RwLock<Option<Wal>>,
    /// WAL records between automatic fuzzy checkpoints (0 disables the
    /// automatic trigger; explicit [`SharedDatabase::checkpoint`] still
    /// works).
    checkpoint_every: AtomicU64,
    /// What recovery did when this database was opened (all zeros for a
    /// fresh or in-memory database).
    recovery: RecoveryReport,
}

impl Shared {
    /// Appends one record to the WAL, if one is attached (the shared
    /// counterpart of `Database::wal_append`). Legal while holding any
    /// component guard — the WAL lock is rank 8, above them all — which is
    /// how durable mutations keep log order consistent with mutation
    /// order. Errors poison the log, so propagating callers fail before
    /// mutating.
    fn wal_append(&self, rec: &WalRecord, waited: &mut u64) -> Result<()> {
        // plain mutexes (fault, outside the ranked hierarchy) are cloned
        // before the ranked acquisition, as everywhere else in this module
        let fault = self.fault.lock().clone();
        let clock = self.clock.load(Ordering::SeqCst);
        let mut wal = timed_write(&self.wal, &self.counters, waited);
        let Some(w) = wal.as_mut() else {
            return Ok(());
        };
        w.append(rec, &fault, clock)?;
        let bytes = w.bytes_appended();
        observe::note_wal_append(&self.obs, rec.kind(), bytes);
        Ok(())
    }

    /// [`Shared::wal_append`] for infallible-signature knobs: failures are
    /// counted and flight-noted, and the poisoned log makes the next
    /// fallible durable operation error loudly (DESIGN.md §14).
    fn wal_append_lossy(&self, rec: &WalRecord, waited: &mut u64) {
        let kind = rec.kind();
        if let Err(e) = self.wal_append(rec, waited) {
            let clock = self.clock.load(Ordering::SeqCst);
            observe::note_wal_append_error(&self.obs, clock, kind, &e.to_string());
        }
    }

    /// Flips a lock-free boolean knob, logging a `SetFlag` record only
    /// when the value actually changes (idempotent re-sets stay silent, as
    /// on `Database`).
    fn set_flag_logged(&self, flag: &AtomicBool, name: &str, on: bool) {
        let was = flag.swap(on, Ordering::SeqCst);
        if was != on {
            let mut w = 0u64;
            self.wal_append_lossy(
                &WalRecord::SetFlag {
                    name: name.to_string(),
                    on,
                },
                &mut w,
            );
        }
    }

    /// Folds the entire shared state into a new checkpoint segment and
    /// truncates the log (the shared counterpart of
    /// `Database::checkpoint`). Takes read guards over every component in
    /// rank order, so the snapshot is consistent even with concurrent
    /// sessions; "fuzzy" refers to its placement in the workload, not to
    /// torn state.
    fn checkpoint(&self, waited: &mut u64) -> Result<Option<u64>> {
        {
            if timed_read(&self.wal, &self.counters, waited).is_none() {
                return Ok(None);
            }
        }
        // un-ranked snapshots first, then guards in rank order 1..=7
        let fault = self.fault.lock().clone();
        let rng_state = self.rng_source.lock().state();
        let catalog = timed_read(&self.catalog, &self.counters, waited);
        let tables = timed_read(&self.tables, &self.counters, waited);
        let archive = timed_read(&self.archive, &self.counters, waited);
        let history = timed_read(&self.history, &self.counters, waited);
        let predcache = timed_read(&self.predcache, &self.counters, waited);
        let samplecache = timed_read(&self.samplecache, &self.counters, waited);
        let setting = timed_read(&self.setting, &self.counters, waited);
        let clock = self.clock.load(Ordering::SeqCst);
        let payload = persist::encode_state(&StateRefs {
            clock,
            rng_state,
            batch_executor: self.batch_executor.load(Ordering::SeqCst),
            data_skipping: self.data_skipping.load(Ordering::SeqCst),
            profiling: self.profiling.load(Ordering::SeqCst),
            setting: &setting,
            catalog: &catalog,
            tables: &tables,
            archive: &archive,
            history: &history,
            predcache: &predcache,
            samplecache: &samplecache,
            obs: &self.obs,
        });
        let mut wal = timed_write(&self.wal, &self.counters, waited);
        let Some(w) = wal.as_mut() else {
            return Ok(None); // detached between the check and now
        };
        let lsn = w.checkpoint(&payload, &fault, clock)?;
        observe::note_checkpoint(&self.obs, clock, lsn, payload.len());
        Ok(Some(lsn))
    }

    /// Checkpoints when enough records have accumulated since the last
    /// one; runs before the next statement is logged. Two sessions racing
    /// the trigger at worst checkpoint twice, which is harmless.
    fn maybe_checkpoint(&self, waited: &mut u64) -> Result<()> {
        let every = self.checkpoint_every.load(Ordering::SeqCst);
        if every == 0 {
            return Ok(());
        }
        let due = timed_read(&self.wal, &self.counters, waited)
            .as_ref()
            .is_some_and(|w| w.since_checkpoint() >= every);
        if due {
            self.checkpoint(waited)?;
        }
        Ok(())
    }
}

/// A database whose state is shareable across threads; spawn one
/// [`Session`] per thread with [`SharedDatabase::session`].
///
/// ```
/// use jits_common::{DataType, Schema, Value};
/// use jits_engine::SharedDatabase;
///
/// let db = SharedDatabase::new(42);
/// db.create_table("t", Schema::from_pairs(&[("id", DataType::Int)]))?;
/// db.load_rows("t", (0..10i64).map(|i| vec![Value::Int(i)]).collect())?;
///
/// let mut a = db.session();
/// let mut b = db.session();
/// std::thread::scope(|s| {
///     s.spawn(|| a.execute("SELECT id FROM t WHERE id > 4").unwrap());
///     s.spawn(|| b.execute("SELECT id FROM t WHERE id < 5").unwrap());
/// });
/// # jits_common::Result::Ok(())
/// ```
pub struct SharedDatabase {
    shared: Arc<Shared>,
}

/// One thread's handle onto a [`SharedDatabase`]: owns a private sampling
/// RNG and executes statements against the shared state.
pub struct Session {
    shared: Arc<Shared>,
    rng: SplitMix64,
    id: u64,
}

/// Reads a lock, charging any blocked time to the counters and the
/// statement's running wait tally (uncontended acquisitions cost nothing).
fn timed_read<'a, T: ?Sized>(
    lock: &'a RwLock<T>,
    counters: &EngineCounters,
    waited: &mut u64,
) -> RwLockReadGuard<'a, T> {
    if let Some(g) = lock.try_read() {
        return g;
    }
    let t = now_nanos();
    let g = lock.read();
    let ns = now_nanos().saturating_sub(t);
    counters.charge_lock_wait(ns);
    *waited += ns;
    g
}

/// Write-lock counterpart of [`timed_read`].
fn timed_write<'a, T: ?Sized>(
    lock: &'a RwLock<T>,
    counters: &EngineCounters,
    waited: &mut u64,
) -> RwLockWriteGuard<'a, T> {
    if let Some(g) = lock.try_write() {
        return g;
    }
    let t = now_nanos();
    let g = lock.write();
    let ns = now_nanos().saturating_sub(t);
    counters.charge_lock_wait(ns);
    *waited += ns;
    g
}

impl SharedDatabase {
    /// Creates an empty shared database; equal seeds give bit-identical
    /// single-session runs (and statistically independent per-session
    /// streams under concurrency).
    pub fn new(seed: u64) -> Self {
        Database::new(seed).into_shared()
    }

    /// Opens (or creates) a durable shared database rooted at `dir`:
    /// recovery runs on the single-owner [`Database`] (see
    /// [`Database::open`]), which is then converted, WAL attached and all.
    /// Subsequent sessions append durably and [`SharedDatabase::checkpoint`]
    /// folds the shared state into a new segment.
    pub fn open(seed: u64, dir: &Path) -> Result<SharedDatabase> {
        Ok(Database::open(seed, dir)?.into_shared())
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_database_parts(
        tables: Vec<Table>,
        catalog: Catalog,
        archive: QssArchive,
        history: StatHistory,
        predcache: PredicateCache,
        samplecache: SampleCache,
        setting: StatsSetting,
        clock: u64,
        rng: SplitMix64,
        cost: CostModel,
        defaults: DefaultSelectivities,
        runstats_opts: RunstatsOptions,
        batch_executor: bool,
        data_skipping: bool,
        profiling: bool,
        obs: Arc<Observability>,
        fault: FaultPlane,
        wal: Option<Wal>,
        checkpoint_every: u64,
        recovery: RecoveryReport,
    ) -> Self {
        SharedDatabase {
            shared: Arc::new(Shared {
                catalog: RwLock::with_rank(catalog, RANK_CATALOG),
                tables: RwLock::with_rank(tables, RANK_TABLES),
                archive: RwLock::with_rank(archive, RANK_ARCHIVE),
                history: RwLock::with_rank(history, RANK_HISTORY),
                predcache: RwLock::with_rank(predcache, RANK_PREDCACHE),
                samplecache: RwLock::with_rank(samplecache, RANK_SAMPLECACHE),
                setting: RwLock::with_rank(setting, RANK_SETTING),
                clock: AtomicU64::new(clock),
                rng_source: Mutex::new(rng),
                sessions: AtomicU64::new(0),
                cost,
                defaults,
                runstats_opts,
                batch_executor: AtomicBool::new(batch_executor),
                data_skipping: AtomicBool::new(data_skipping),
                profiling: AtomicBool::new(profiling),
                counters: EngineCounters::default(),
                obs,
                fault: Mutex::new(fault),
                wal: RwLock::with_rank(wal, RANK_WAL),
                checkpoint_every: AtomicU64::new(checkpoint_every),
                recovery,
            }),
        }
    }

    /// Folds the entire shared state into a new checkpoint segment and
    /// truncates the log. Returns the covered LSN, or `None` for an
    /// in-memory database.
    pub fn checkpoint(&self) -> Result<Option<u64>> {
        let mut w = 0u64;
        self.shared.checkpoint(&mut w)
    }

    /// Sets the automatic checkpoint cadence (records since the last
    /// checkpoint; 0 disables the automatic trigger).
    pub fn set_checkpoint_every(&self, every: u64) {
        self.shared.checkpoint_every.store(every, Ordering::SeqCst);
    }

    /// What recovery did when this database was opened (all zeros for a
    /// fresh or in-memory database).
    pub fn recovery_report(&self) -> RecoveryReport {
        self.shared.recovery.clone()
    }

    /// Whether a WAL is attached (durable mode).
    pub fn is_durable(&self) -> bool {
        let mut w = 0u64;
        timed_read(&self.shared.wal, &self.shared.counters, &mut w).is_some()
    }

    /// Installs the deterministic fault-injection plane for every session
    /// (see [`Database::set_fault_plane`]). Takes effect at each session's
    /// next statement.
    pub fn set_fault_plane(&self, fault: FaultPlane) {
        *self.shared.fault.lock() = fault;
    }

    /// Selects the executor for every session's subsequent SELECTs (see
    /// [`Database::set_batch_executor`]); lock-free, takes effect at each
    /// session's next statement.
    pub fn set_batch_executor(&self, on: bool) {
        self.shared
            .set_flag_logged(&self.shared.batch_executor, "batch_executor", on);
    }

    /// Whether SELECTs run on the vectorized batch executor.
    pub fn batch_executor(&self) -> bool {
        self.shared.batch_executor.load(Ordering::SeqCst)
    }

    /// Enables or disables physical block skipping in pruned scans for
    /// every session (see [`Database::set_data_skipping`]); lock-free,
    /// takes effect at each session's next statement.
    pub fn set_data_skipping(&self, on: bool) {
        self.shared
            .set_flag_logged(&self.shared.data_skipping, "data_skipping", on);
    }

    /// Whether pruned scans physically skip pruned blocks.
    pub fn data_skipping(&self) -> bool {
        self.shared.data_skipping.load(Ordering::SeqCst)
    }

    /// Enables or disables per-operator profiling for every session (see
    /// [`Database::set_profiling`]); lock-free, takes effect at each
    /// session's next statement.
    pub fn set_profiling(&self, on: bool) {
        self.shared
            .set_flag_logged(&self.shared.profiling, "profiling", on);
    }

    /// Whether per-operator profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.shared.profiling.load(Ordering::SeqCst)
    }

    /// Opens a new session. The first session continues the master RNG
    /// stream verbatim (single-session replay parity with [`Database`]);
    /// every later session forks an independent stream.
    pub fn session(&self) -> Session {
        let id = self.shared.sessions.fetch_add(1, Ordering::SeqCst);
        let rng = {
            let mut src = self.shared.rng_source.lock();
            if id == 0 {
                src.clone()
            } else {
                src.fork()
            }
        };
        Session {
            shared: Arc::clone(&self.shared),
            rng,
            id,
        }
    }

    /// Selects the statistics setting for subsequent statements (all
    /// sessions). Accumulated statistics survive, as on [`Database`].
    pub fn set_setting(&self, setting: StatsSetting) {
        let mut w = 0u64;
        self.shared.wal_append_lossy(
            &WalRecord::SetSetting {
                payload: persist::encode_setting(&setting),
            },
            &mut w,
        );
        if let StatsSetting::Jits(cfg) = &setting {
            let mut archive = timed_write(&self.shared.archive, &self.shared.counters, &mut w);
            archive.set_limits(cfg.archive_bucket_budget, cfg.eviction_uniformity);
            let mut predcache = timed_write(&self.shared.predcache, &self.shared.counters, &mut w);
            predcache.set_capacity(cfg.predicate_cache_capacity);
            if !cfg.sample_cache {
                timed_write(&self.shared.samplecache, &self.shared.counters, &mut w).clear();
            }
        }
        *timed_write(&self.shared.setting, &self.shared.counters, &mut w) = setting;
    }

    // ---- DDL and bulk loading (admin path; narrow write locks) -----------

    /// Creates a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<TableId> {
        let mut w = 0u64;
        let mut catalog = timed_write(&self.shared.catalog, &self.shared.counters, &mut w);
        let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut w);
        // append under the write guards (wal is rank 8, above them): log
        // order matches mutation order, and a failed append aborts before
        // any in-memory mutation
        self.shared.wal_append(
            &WalRecord::CreateTable {
                name: name.to_string(),
                schema: schema.clone(),
            },
            &mut w,
        )?;
        let id = catalog.register_table(name, schema.clone())?;
        debug_assert_eq!(id.index(), tables.len());
        tables.push(Table::new(name, schema));
        Ok(id)
    }

    /// Creates a secondary index.
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        let mut w = 0u64;
        let mut catalog = timed_write(&self.shared.catalog, &self.shared.counters, &mut w);
        let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut w);
        self.shared.wal_append(
            &WalRecord::CreateIndex {
                table: table.to_string(),
                column: column.to_string(),
            },
            &mut w,
        )?;
        let tid = catalog.require(table)?;
        let col = catalog
            .table(tid)
            .ok_or_else(|| JitsError::internal(format!("catalog entry missing for {tid:?}")))?
            .schema
            .require_column(column)?;
        tables[tid.index()].create_index(col)?;
        catalog.add_index(tid, col)
    }

    /// Declares a primary key (also builds its index).
    pub fn set_primary_key(&self, table: &str, column: &str) -> Result<()> {
        let mut w = 0u64;
        let mut catalog = timed_write(&self.shared.catalog, &self.shared.counters, &mut w);
        let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut w);
        self.shared.wal_append(
            &WalRecord::SetPrimaryKey {
                table: table.to_string(),
                column: column.to_string(),
            },
            &mut w,
        )?;
        let tid = catalog.require(table)?;
        let col = catalog
            .table(tid)
            .ok_or_else(|| JitsError::internal(format!("catalog entry missing for {tid:?}")))?
            .schema
            .require_column(column)?;
        catalog.set_primary_key(tid, col)?;
        tables[tid.index()].create_index(col)?;
        catalog.add_index(tid, col)
    }

    /// Bulk-loads rows (bypasses SQL parsing; used by data generators).
    pub fn load_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let mut w = 0u64;
        let tid = {
            let catalog = timed_read(&self.shared.catalog, &self.shared.counters, &mut w);
            catalog.require(table)?
        };
        let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut w);
        // encode into the record, append, then take the rows back — the
        // append borrows them, so bulk loads cost no extra copy
        let rec = WalRecord::LoadRows {
            table: table.to_string(),
            rows,
        };
        self.shared.wal_append(&rec, &mut w)?;
        let WalRecord::LoadRows { rows, .. } = rec else {
            // jits-lint: allow(panic-surface) -- variant constructed above
            unreachable!("constructed two lines up")
        };
        let t = &mut tables[tid.index()];
        let n = rows.len();
        for row in rows {
            t.insert(row)?;
        }
        Ok(n)
    }

    /// Resets a table's UDI counter (bulk loads are initial state, not
    /// churn).
    pub fn reset_udi(&self, id: TableId) {
        let mut w = 0u64;
        let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut w);
        self.shared
            .wal_append_lossy(&WalRecord::ResetUdi { table: id.0 }, &mut w);
        if let Some(t) = tables.get_mut(id.index()) {
            t.reset_udi();
        }
    }

    /// Resolves a table name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        let mut w = 0u64;
        timed_read(&self.shared.catalog, &self.shared.counters, &mut w).resolve(name)
    }

    // ---- statistics management -------------------------------------------

    /// Runs RUNSTATS over every table (see [`Database::runstats_all`]).
    pub fn runstats_all(&self) -> Result<()> {
        let mut w = 0u64;
        self.shared.wal_append(&WalRecord::RunstatsAll, &mut w)?;
        let clock = self.shared.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let mut catalog = timed_write(&self.shared.catalog, &self.shared.counters, &mut w);
        let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut w);
        for tid in 0..tables.len() {
            let (ts, cs) = runstats(&tables[tid], self.shared.runstats_opts, clock);
            catalog.set_stats(TableId(tid as u32), ts, cs)?;
            tables[tid].reset_udi();
        }
        Ok(())
    }

    /// Migrates one-dimensional QSS histograms into the catalog.
    pub fn migrate_statistics(&self) -> usize {
        let mut w = 0u64;
        self.shared
            .wal_append_lossy(&WalRecord::MigrateStats, &mut w);
        let clock = self.shared.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let mut catalog = timed_write(&self.shared.catalog, &self.shared.counters, &mut w);
        let archive = timed_read(&self.shared.archive, &self.shared.counters, &mut w);
        jits::migrate::migrate(&archive, &mut catalog, clock)
    }

    /// Drops catalog statistics, the archive, and the history.
    pub fn clear_statistics(&self) {
        let mut w = 0u64;
        self.shared
            .wal_append_lossy(&WalRecord::ClearStats, &mut w);
        timed_write(&self.shared.catalog, &self.shared.counters, &mut w).clear_stats();
        timed_write(&self.shared.archive, &self.shared.counters, &mut w).clear();
        timed_write(&self.shared.history, &self.shared.counters, &mut w).clear();
        timed_write(&self.shared.predcache, &self.shared.counters, &mut w).clear();
        timed_write(&self.shared.samplecache, &self.shared.counters, &mut w).clear();
    }

    // ---- observation ------------------------------------------------------

    /// The logical clock (statements executed so far).
    pub fn clock(&self) -> u64 {
        self.shared.clock.load(Ordering::SeqCst)
    }

    /// Point-in-time copy of the engine-wide concurrency counters.
    pub fn counters(&self) -> CountersSnapshot {
        self.shared.counters.snapshot()
    }

    /// The observability state: tracer, metrics registry, and query log
    /// (shared by every session).
    pub fn obs(&self) -> &Arc<Observability> {
        &self.shared.obs
    }

    /// Exports the metrics registry as JSON, after mirroring the engine
    /// counters and archive gauges into it. Pass `include_volatile =
    /// false` for the deterministic subset, which is byte-identical for
    /// equal workloads and seeds at any `collect_threads`.
    pub fn metrics_json(&self, include_volatile: bool) -> String {
        self.sync_observability();
        self.shared.obs.metrics_json(include_volatile)
    }

    /// Exports the metrics registry in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        self.sync_observability();
        self.shared.obs.metrics_prometheus(true)
    }

    /// Mirrors point-in-time engine state (counters, archive size) into
    /// the registry so exports are coherent.
    fn sync_observability(&self) {
        observe::sync_engine_counters(&self.shared.obs, &self.shared.counters.snapshot());
        let mut w = 0u64;
        let archive = timed_read(&self.shared.archive, &self.shared.counters, &mut w);
        observe::note_archive_gauges(&self.shared.obs, &archive);
    }

    /// Runs `f` under a read guard on the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        let mut w = 0u64;
        f(&timed_read(
            &self.shared.catalog,
            &self.shared.counters,
            &mut w,
        ))
    }

    /// Runs `f` under a read guard on the storage tables.
    pub fn with_tables<R>(&self, f: impl FnOnce(&[Table]) -> R) -> R {
        let mut w = 0u64;
        f(&timed_read(
            &self.shared.tables,
            &self.shared.counters,
            &mut w,
        ))
    }

    /// Runs `f` under a read guard on the QSS archive.
    pub fn with_archive<R>(&self, f: impl FnOnce(&QssArchive) -> R) -> R {
        let mut w = 0u64;
        f(&timed_read(
            &self.shared.archive,
            &self.shared.counters,
            &mut w,
        ))
    }

    /// Runs `f` under a read guard on the StatHistory.
    pub fn with_history<R>(&self, f: impl FnOnce(&StatHistory) -> R) -> R {
        let mut w = 0u64;
        f(&timed_read(
            &self.shared.history,
            &self.shared.counters,
            &mut w,
        ))
    }
}

impl Session {
    /// This session's id (0 for the first session opened).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Parses, optimizes and executes one SQL statement. Mirrors
    /// [`Database::execute`] statement-for-statement, but against shared
    /// state under the module's lock discipline.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let t0 = now_nanos();
        let mut waited = 0u64;
        self.shared
            .counters
            .statements
            .fetch_add(1, Ordering::Relaxed);
        let stmt = parse(sql)?;
        if let Some(rows) = self.system_view_rows(&stmt, &mut waited) {
            return Ok(QueryResult {
                metrics: QueryMetrics {
                    compile_wall: wall_since(t0),
                    result_rows: rows.len(),
                    lock_wait: Duration::from_nanos(waited),
                    ..QueryMetrics::default()
                },
                rows,
            });
        }
        // checkpoint first so the statement lands in the fresh log
        // generation, then log it before binding (statement-level logical
        // WAL: even failed statements replay to the same failure)
        self.shared.maybe_checkpoint(&mut waited)?;
        self.shared.wal_append(
            &WalRecord::Statement {
                sql: sql.to_string(),
            },
            &mut waited,
        )?;
        let bound = {
            let catalog = timed_read(&self.shared.catalog, &self.shared.counters, &mut waited);
            bind_statement(&stmt, &catalog)?
        };
        match bound {
            BoundStatement::Select(block) => self.run_select(block, t0, waited, sql),
            BoundStatement::Explain(block) => {
                let clock = self.shared.clock.fetch_add(1, Ordering::SeqCst) + 1;
                let setting =
                    timed_read(&self.shared.setting, &self.shared.counters, &mut waited).clone();
                let (collected, _, _, _, _) = self.compile_phase(
                    &block,
                    &setting,
                    clock,
                    &mut waited,
                    &mut TraceBuilder::off(),
                    &mut QueryMetrics::default(),
                );
                let plan = self.plan_for(&block, &collected, &setting, clock, &mut waited)?;
                let metrics = QueryMetrics {
                    compile_wall: wall_since(t0),
                    compile_work: collected.work,
                    plan: Some(PlanSummary::from(&plan)),
                    collect_threads: collected.collect_threads,
                    lock_wait: Duration::from_nanos(waited),
                    ..QueryMetrics::default()
                };
                let rows = plan
                    .explain()
                    .lines()
                    .map(|l| vec![Value::str(l)])
                    .collect();
                Ok(QueryResult { rows, metrics })
            }
            BoundStatement::Insert(ins) => self.run_insert(ins, t0, waited),
            BoundStatement::Update(upd) => self.run_update(upd, t0, waited),
            BoundStatement::Delete(del) => self.run_delete(del, t0, waited),
        }
    }

    /// Compiles a query and renders its plan (EXPLAIN).
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        let mut waited = 0u64;
        let stmt = parse(sql)?;
        // logged like a statement: EXPLAIN compiles, which mutates the
        // statistics plane (clock, archive touches, sample draws)
        self.shared.maybe_checkpoint(&mut waited)?;
        self.shared.wal_append(
            &WalRecord::Explain {
                sql: sql.to_string(),
            },
            &mut waited,
        )?;
        let bound = {
            let catalog = timed_read(&self.shared.catalog, &self.shared.counters, &mut waited);
            bind_statement(&stmt, &catalog)?
        };
        let (BoundStatement::Select(block) | BoundStatement::Explain(block)) = bound else {
            return Err(JitsError::Plan("EXPLAIN supports SELECT only".into()));
        };
        let clock = self.shared.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let setting = timed_read(&self.shared.setting, &self.shared.counters, &mut waited).clone();
        let (collected, _, _, _, _) = self.compile_phase(
            &block,
            &setting,
            clock,
            &mut waited,
            &mut TraceBuilder::off(),
            &mut QueryMetrics::default(),
        );
        let plan = self.plan_for(&block, &collected, &setting, clock, &mut waited)?;
        Ok(plan.explain())
    }

    /// Replays the JITS compile-phase decisions for `sql` against a
    /// consistent snapshot of the shared state, without executing,
    /// bumping the clock, or drawing from this session's sampling RNG
    /// (the locked counterpart of [`Database::explain_jits`]).
    pub fn explain_jits(&self, sql: &str) -> Result<JitsExplain> {
        let mut waited = 0u64;
        let sh = &self.shared;
        let stmt = parse(sql)?;
        // guards in rank order; all reads, held together for a coherent
        // snapshot of the decision inputs
        let catalog = timed_read(&sh.catalog, &sh.counters, &mut waited);
        let (BoundStatement::Select(block) | BoundStatement::Explain(block)) =
            bind_statement(&stmt, &catalog)?
        else {
            return Err(JitsError::Plan("EXPLAIN JITS supports SELECT only".into()));
        };
        let tables = timed_read(&sh.tables, &sh.counters, &mut waited);
        let archive = timed_read(&sh.archive, &sh.counters, &mut waited);
        let history = timed_read(&sh.history, &sh.counters, &mut waited);
        let predcache = timed_read(&sh.predcache, &sh.counters, &mut waited);
        let setting = timed_read(&sh.setting, &sh.counters, &mut waited).clone();
        Ok(explain_block(
            sql,
            &block,
            &setting,
            &catalog,
            &tables,
            &archive,
            &history,
            &predcache,
            &observe::qerror_feedback(&sh.obs, &catalog),
        ))
    }

    /// Executes `sql` with profiling forced on and renders the per-operator
    /// profile tree (the locked counterpart of
    /// [`Database::explain_analyze`]). The statement's own profile is
    /// rendered — never another session's — because the profile rides on
    /// the returned metrics, not on the shared flight ring.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        // flips route through the logged setter so a durable log replays
        // the same profiling state around the statement
        let was = self.shared.profiling.load(Ordering::SeqCst);
        self.shared
            .set_flag_logged(&self.shared.profiling, "profiling", true);
        let result = self.execute(sql);
        self.shared
            .set_flag_logged(&self.shared.profiling, "profiling", was);
        let profile = result?
            .metrics
            .profile
            .ok_or_else(|| JitsError::Plan("EXPLAIN ANALYZE supports plain SELECT only".into()))?;
        Ok(render_profile(&profile))
    }

    /// Answers a `SELECT` from one of the virtual system views, unless a
    /// user table shadows the name.
    fn system_view_rows(
        &self,
        stmt: &jits_query::Statement,
        waited: &mut u64,
    ) -> Option<Vec<Vec<Value>>> {
        let view = views::system_view_name(stmt)?;
        let sh = &self.shared;
        {
            let catalog = timed_read(&sh.catalog, &sh.counters, waited);
            if catalog.resolve(view).is_some() {
                return None;
            }
        }
        Some(match view {
            views::VIEW_ARCHIVE_STATS => {
                let archive = timed_read(&sh.archive, &sh.counters, waited);
                views::archive_stats_rows(&archive)
            }
            views::VIEW_TABLE_SCORES => views::table_scores_rows(&sh.obs),
            views::VIEW_SAMPLE_CACHE => {
                let catalog = timed_read(&sh.catalog, &sh.counters, waited);
                let samplecache = timed_read(&sh.samplecache, &sh.counters, waited);
                views::sample_cache_rows(&samplecache, &catalog)
            }
            views::VIEW_DEGRADATION => views::degradation_rows(&sh.obs),
            views::VIEW_PROFILE => views::profile_rows(&sh.obs),
            views::VIEW_FLIGHT => views::flight_rows(&sh.obs),
            views::VIEW_ACCESS_PATHS => views::access_paths_rows(&sh.obs),
            _ => views::query_log_rows(&sh.obs),
        })
    }

    fn run_select(
        &mut self,
        block: QueryBlock,
        t0: u64,
        mut waited: u64,
        sql: &str,
    ) -> Result<QueryResult> {
        let sh = Arc::clone(&self.shared);
        let clock = sh.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let mut tb = sh.obs.tracer.start(sql, clock, self.id);
        tb.begin("parse_bind");
        tb.end(now_nanos().saturating_sub(t0));
        let setting = timed_read(&sh.setting, &sh.counters, &mut waited).clone();
        let cfg = setting.jits_config().cloned().unwrap_or_default();
        let mut metrics = QueryMetrics::default();

        // -- JITS compile-time pipeline --
        let (collected, sampled, materialized, scores, walls) =
            self.compile_phase(&block, &setting, clock, &mut waited, &mut tb, &mut metrics);
        metrics.set_stage_walls(walls);
        metrics.compile_work = collected.work;
        metrics.sampled_tables = sampled;
        metrics.materialized_groups = materialized;
        metrics.table_scores = scores;
        metrics.collect_threads = collected.collect_threads;

        // -- optimize --
        tb.begin("optimize");
        let topt = now_nanos();
        let plan = self.plan_for(&block, &collected, &setting, clock, &mut waited)?;
        let plan_nanos = now_nanos().saturating_sub(topt);
        tb.end(plan_nanos);
        metrics.plan = Some(PlanSummary::from(&plan));
        metrics.compile_wall = wall_since(t0);

        // -- execute --
        tb.begin("execute");
        let t1 = now_nanos();
        let batch_exec = sh.batch_executor.load(Ordering::SeqCst);
        let kind = if batch_exec {
            ExecutorKind::Batch
        } else {
            ExecutorKind::Row
        };
        let skipping = sh.data_skipping.load(Ordering::SeqCst);
        let out = {
            let tables = timed_read(&sh.tables, &sh.counters, &mut waited);
            execute_with_opts(
                kind,
                &plan,
                &block,
                &tables,
                &sh.cost,
                ExecOptions {
                    data_skipping: skipping,
                },
            )?
        };
        metrics.exec_wall = wall_since(t1);
        let exec_nanos = metrics.exec_wall.as_nanos() as u64;
        tb.end(exec_nanos);
        metrics.exec_work = out.stats.work;
        metrics.result_rows = out.rows.len();
        metrics.batch_executor = batch_exec;
        observe::note_executor(&sh.obs, batch_exec);
        observe::note_access_paths(&sh.obs, &out.stats);

        // -- profile (estimation-quality observatory) --
        if sh.profiling.load(Ordering::SeqCst) {
            let profile = {
                let catalog = timed_read(&sh.catalog, &sh.counters, &mut waited);
                build_profile(
                    &plan,
                    &out.stats,
                    &catalog,
                    &ProfileContext {
                        clock,
                        session: self.id,
                        sql,
                        batch_executor: batch_exec,
                        result_rows: out.rows.len(),
                        degraded: metrics.degraded,
                        exec_wall_nanos: exec_nanos,
                    },
                )
            };
            observe::note_profile(&sh.obs, &profile, cfg.qerror_threshold);
            metrics.profile = Some(profile);
        }
        observe::note_stage_latencies(
            &sh.obs,
            plan_nanos,
            metrics.collect_wall.as_nanos() as u64,
            exec_nanos,
        );

        // -- feedback (LEO) --
        tb.begin("feedback");
        let tf = now_nanos();
        {
            let catalog = timed_read(&sh.catalog, &sh.counters, &mut waited);
            let mut archive = timed_write(&sh.archive, &sh.counters, &mut waited);
            let mut history = timed_write(&sh.history, &sh.counters, &mut waited);
            ingest(
                &block,
                &out.stats.scans,
                &mut history,
                &mut archive,
                &catalog,
                &cfg,
                clock,
            );
        }
        observe::note_feedback(&sh.obs, &mut tb, out.stats.scans.len());
        tb.end(now_nanos().saturating_sub(tf));

        // -- periodic statistics migration (paper Figure 1) --
        if matches!(setting, StatsSetting::Jits(_))
            && cfg.migrate_every > 0
            && clock.is_multiple_of(cfg.migrate_every)
        {
            let mut catalog = timed_write(&sh.catalog, &sh.counters, &mut waited);
            let archive = timed_read(&sh.archive, &sh.counters, &mut waited);
            jits::migrate::migrate(&archive, &mut catalog, clock);
        }

        metrics.lock_wait = Duration::from_nanos(waited);
        observe::note_statement(
            &sh.obs,
            QueryLogEntry {
                clock,
                session: self.id,
                sql: sql.to_string(),
                result_rows: metrics.result_rows,
                compile_nanos: metrics.compile_wall.as_nanos() as u64,
                exec_nanos: metrics.exec_wall.as_nanos() as u64,
                sampled_tables: sampled,
            },
        );
        sh.obs.tracer.finish(tb, now_nanos().saturating_sub(t0));
        Ok(QueryResult {
            rows: out.rows,
            metrics,
        })
    }

    /// Runs query analysis, sensitivity analysis, sampling and archive
    /// materialization under read guards, with two narrow write windows
    /// (UDI reset, materialization). Returns the fresh statistics, the
    /// sampled-table count, the materialized-group count, the scores,
    /// and the per-stage wall times (which also decorate `tb`'s spans).
    fn compile_phase(
        &mut self,
        block: &QueryBlock,
        setting: &StatsSetting,
        clock: u64,
        waited: &mut u64,
        tb: &mut TraceBuilder,
        metrics: &mut QueryMetrics,
    ) -> (
        CollectedStats,
        usize,
        usize,
        Vec<jits::TableScore>,
        StageWalls,
    ) {
        // Snapshot the fault plane before any ranked lock is taken (the
        // handle is an Arc clone; decisions stay pure functions of the
        // plane's seed and the statement clock).
        let fault = self.shared.fault.lock().clone();
        let mut walls = StageWalls::default();
        let StatsSetting::Jits(cfg) = setting.clone() else {
            return (CollectedStats::default(), 0, 0, Vec::new(), walls);
        };
        if cfg.never_collects() {
            return (CollectedStats::default(), 0, 0, Vec::new(), walls);
        }

        // -- query analysis (Algorithm 1; no locks needed) --
        tb.begin("analyze");
        let t = now_nanos();
        let candidates = query_analysis(block, cfg.max_group_enumeration);
        walls.analyze = wall_since(t);
        let sh = &self.shared;
        observe::note_analysis(&sh.obs, tb, block.quns.len(), candidates.len());
        tb.end(walls.analyze.as_nanos() as u64);

        let (sample_quns, materialize, table_scores, collected) = {
            let catalog = timed_read(&sh.catalog, &sh.counters, waited);
            let tables = timed_read(&sh.tables, &sh.counters, waited);
            let archive = timed_read(&sh.archive, &sh.counters, waited);
            let history = timed_read(&sh.history, &sh.counters, waited);

            // -- sensitivity analysis (Algorithms 2-4) --
            tb.begin("sensitivity");
            let t = now_nanos();
            let (sample_quns, materialize, table_scores, extra_work, mat_log) = match &cfg.strategy
            {
                SensitivityStrategy::PaperHeuristic => {
                    let predcache = timed_read(&sh.predcache, &sh.counters, waited);
                    // history.read fault: degrade to an empty StatHistory,
                    // biasing sensitivity toward collecting (see the
                    // single-owner path in `database.rs`).
                    let (history_ok, _) = fault.retry(FP_HISTORY_READ, clock);
                    let empty_history = (!history_ok).then(StatHistory::new);
                    if !history_ok {
                        observe::note_degradation(
                            &sh.obs,
                            tb,
                            metrics,
                            clock,
                            String::new(),
                            FP_HISTORY_READ,
                            "empty_history",
                        );
                    }
                    let decision = sensitivity_analysis_with_feedback(
                        block,
                        &candidates,
                        empty_history.as_ref().unwrap_or(&history),
                        &archive,
                        &predcache,
                        &catalog,
                        &tables,
                        &cfg,
                        &observe::qerror_feedback(&sh.obs, &catalog),
                    );
                    (
                        decision.sample_quns,
                        decision.materialize,
                        decision.table_scores,
                        0.0,
                        decision.materialize_log,
                    )
                }
                SensitivityStrategy::EpsilonPlanning(eps) => {
                    let outcome = jits::epsilon::epsilon_sensitivity_default(
                        block, &archive, &catalog, &tables, &sh.cost, eps,
                    )
                    .unwrap_or(jits::EpsilonOutcome {
                        sample_quns: Vec::new(),
                        optimizer_calls: 0,
                        final_gap: 0.0,
                    });
                    let work = outcome.optimizer_calls as f64 * OPTIMIZER_CALL_WORK;
                    (
                        outcome.sample_quns,
                        Vec::new(),
                        Vec::new(),
                        work,
                        Vec::new(),
                    )
                }
            };
            walls.sensitivity = wall_since(t);
            observe::note_sensitivity(&sh.obs, tb, &catalog, &table_scores, &mat_log, &cfg, clock);
            tb.end(walls.sensitivity.as_nanos() as u64);

            // -- statistics collection (sampling) --
            tb.begin("collect");
            let t = now_nanos();
            let clock_fn: Option<&(dyn Fn() -> u64 + Sync)> = if tb.enabled() {
                Some(&jits_obs::clock::now_nanos)
            } else {
                None
            };
            // Phase A: resolve each quantifier's sample source under a short
            // samplecache write window (rank 6, legal above the held reads).
            let (sources, draw_meta, cache_before) = {
                let mut samplecache = timed_write(&sh.samplecache, &sh.counters, waited);
                let before = samplecache.counters();
                let (sources, draw_meta) =
                    resolve_sample_sources(&mut samplecache, block, &sample_quns, &tables, &cfg);
                (sources, draw_meta, before)
            };
            // Phase B: collect with no cache lock held.
            let (mut collected, timings, drawn) = collect_for_tables_sourced(
                block,
                &sample_quns,
                &candidates,
                &tables,
                cfg.sample,
                &mut self.rng,
                cfg.collect_threads,
                clock_fn,
                &sources,
                cfg.collect_budget,
                &fault,
                clock,
            );
            // The master session carries the checkpoint-visible RNG stream:
            // publish the advanced state so a later fuzzy checkpoint
            // snapshots the draws just consumed. Forked streams (sessions
            // after the first) are not recoverable through single-stream
            // replay and are intentionally not published.
            if self.id == 0 {
                *self.shared.rng_source.lock() = self.rng.clone();
            }
            for d in &collected.degraded {
                let table = observe::table_name(&catalog, d.table);
                observe::note_degradation(
                    &sh.obs,
                    tb,
                    metrics,
                    clock,
                    table,
                    d.fault_point,
                    d.fallback,
                );
            }
            // Phase C: commit freshly drawn samples for future queries. A
            // failed (post-retry) commit skips the memoization; the draw is
            // still used for this statement's statistics.
            let (commit_ok, _) = fault.retry(FP_SAMPLECACHE_COMMIT, clock);
            let cache_after = if commit_ok {
                let mut samplecache = timed_write(&sh.samplecache, &sh.counters, waited);
                commit_drawn_samples(&mut samplecache, &cfg, &drawn, &draw_meta);
                samplecache.counters()
            } else {
                observe::note_degradation(
                    &sh.obs,
                    tb,
                    metrics,
                    clock,
                    String::new(),
                    FP_SAMPLECACHE_COMMIT,
                    "skip_commit",
                );
                // still account the Phase A lookup outcomes
                timed_read(&sh.samplecache, &sh.counters, waited).counters()
            };
            collected.work += extra_work;
            walls.collect = wall_since(t);
            observe::note_collect(&sh.obs, tb, block, &catalog, &timings);
            observe::note_samplecache(&sh.obs, tb, cache_before, cache_after);
            tb.end(walls.collect.as_nanos() as u64);

            (sample_quns, materialize, table_scores, collected)
        };
        if collected.collect_threads > 1 {
            sh.counters
                .parallel_collections
                .fetch_add(1, Ordering::Relaxed);
        }
        sh.counters
            .tables_sampled
            .fetch_add(sample_quns.len() as u64, Ordering::Relaxed);
        if !sample_quns.is_empty() {
            let mut tables = timed_write(&sh.tables, &sh.counters, waited);
            for &qun in &sample_quns {
                let tid = block.quns[qun].table;
                tables[tid.index()].reset_udi();
            }
        }

        // -- archive materialization / max-entropy refinement --
        tb.begin("refine");
        let t = now_nanos();
        let mut materialized = 0usize;
        // With the fault plane enabled the write window also runs the
        // rebuild scan and checksum verification; disabled, neither can
        // have any effect (quarantines only originate from faults), so the
        // guard is skipped exactly as before.
        if !materialize.is_empty() || (fault.is_enabled() && !candidates.is_empty()) {
            // Candidate table names resolved up front: the catalog (rank 1)
            // must not be acquired under the archive guard (rank 3).
            let cand_tables: Vec<String> = {
                let catalog = timed_read(&sh.catalog, &sh.counters, waited);
                candidates
                    .iter()
                    .map(|c| observe::table_name(&catalog, block.quns[c.qun].table))
                    .collect()
            };
            let mut archive = timed_write(&sh.archive, &sh.counters, waited);
            let mut predcache = timed_write(&sh.predcache, &sh.counters, waited);
            // Quarantined groups rebuild on the next collection covering
            // them, regardless of the sensitivity verdict.
            let rebuilds: Vec<&jits::CandidateGroup> = candidates
                .iter()
                .filter(|c| {
                    archive.pending_rebuild(&c.colgroup)
                        && !materialize
                            .iter()
                            .any(|m| m.qun == c.qun && m.colgroup == c.colgroup)
                })
                .collect();
            for (i, cand) in materialize.iter().chain(rebuilds).enumerate() {
                let outcome = materialize_group_into(
                    block,
                    cand,
                    &collected,
                    clock,
                    &mut archive,
                    &mut predcache,
                );
                if !matches!(outcome, MaterializeOutcome::Skipped) {
                    materialized += 1;
                }
                observe::note_materialize_outcome(&sh.obs, tb, &cand.colgroup, &outcome);
                // archive.write fault: a torn write is detected (and
                // quarantined) by the verification pass below.
                let (write_ok, _) = fault.retry(FP_ARCHIVE_WRITE, fault_key(clock, i as u64));
                if !write_ok {
                    archive.corrupt_checksum(&cand.colgroup);
                }
            }
            // Verify every group the optimizer may read for this block: a
            // failed read or checksum mismatch quarantines the bucket set,
            // so planning falls back to default selectivities instead of
            // serving poisoned statistics.
            for (i, cand) in candidates.iter().enumerate() {
                if archive.histogram(&cand.colgroup).is_none() {
                    continue;
                }
                let (read_ok, _) = fault.retry(FP_ARCHIVE_READ, fault_key(clock, i as u64));
                if !read_ok || !archive.validate(&cand.colgroup) {
                    // flight-note the failing checksum pair *before*
                    // quarantine drops it, so --dump-flight shows exactly
                    // which group and which mismatch triggered the rebuild
                    sh.obs.flight.record(FlightEvent::Note {
                        clock,
                        label: "quarantine".to_string(),
                        detail: format!(
                            "group {:?}: stored checksum {:?} vs computed {:?} ({}); rebuild scheduled",
                            cand.colgroup,
                            archive.stored_checksum(&cand.colgroup),
                            archive.computed_checksum(&cand.colgroup),
                            if read_ok { "mismatch" } else { "read fault" },
                        ),
                    });
                    archive.quarantine(&cand.colgroup);
                    observe::note_degradation(
                        &sh.obs,
                        tb,
                        metrics,
                        clock,
                        cand_tables[i].clone(),
                        FP_ARCHIVE_READ,
                        "default_selectivity",
                    );
                }
            }
            observe::note_archive_gauges(&sh.obs, &archive);
        }
        walls.refine = wall_since(t);
        tb.end(walls.refine.as_nanos() as u64);

        (
            collected,
            sample_quns.len(),
            materialized,
            table_scores,
            walls,
        )
    }

    /// Optimizes a block under the given statistics setting (the locked
    /// counterpart of `Database::plan_for`).
    fn plan_for(
        &self,
        block: &QueryBlock,
        collected: &CollectedStats,
        setting: &StatsSetting,
        clock: u64,
        waited: &mut u64,
    ) -> Result<PhysicalPlan> {
        let sh = &self.shared;
        match setting {
            StatsSetting::NoStatistics => {
                let catalog = timed_read(&sh.catalog, &sh.counters, waited);
                let tables = timed_read(&sh.tables, &sh.counters, waited);
                let provider = PhysicalMetadataProvider { tables: &tables };
                let est = CardinalityEstimator::new(&provider, sh.defaults);
                optimize(block, &est, &sh.cost, &catalog)
            }
            StatsSetting::CatalogOnly => {
                let catalog = timed_read(&sh.catalog, &sh.counters, waited);
                let provider = CatalogStatisticsProvider::new(&catalog);
                let est = CardinalityEstimator::new(&provider, sh.defaults);
                optimize(block, &est, &sh.cost, &catalog)
            }
            StatsSetting::ArchiveReadOnly | StatsSetting::Jits(_) => {
                let cfg = setting.jits_config().cloned().unwrap_or_default();
                let (plan, used, used_cache) = {
                    let catalog = timed_read(&sh.catalog, &sh.counters, waited);
                    let tables = timed_read(&sh.tables, &sh.counters, waited);
                    let archive = timed_read(&sh.archive, &sh.counters, waited);
                    let predcache = timed_read(&sh.predcache, &sh.counters, waited);
                    let provider =
                        JitsStatisticsProvider::new(collected, &archive, &catalog, &tables)
                            .with_accuracy_gate(cfg.archive_accuracy_gate)
                            .with_predicate_cache(&predcache)
                            .with_superset_inference(cfg.infer_from_supersets);
                    let est = CardinalityEstimator::new(&provider, sh.defaults);
                    let plan = optimize(block, &est, &sh.cost, &catalog)?;
                    (
                        plan,
                        provider.take_used_archive_groups(),
                        provider.take_used_cache_entries(),
                    )
                };
                if !used.is_empty() {
                    let mut archive = timed_write(&sh.archive, &sh.counters, waited);
                    for g in used {
                        archive.touch(&g, clock);
                    }
                }
                if !used_cache.is_empty() {
                    let mut predcache = timed_write(&sh.predcache, &sh.counters, waited);
                    for (t, fp) in used_cache {
                        predcache.touch(t, &fp, clock);
                    }
                }
                Ok(plan)
            }
        }
    }

    fn run_insert(&mut self, ins: BoundInsert, t0: u64, mut waited: u64) -> Result<QueryResult> {
        self.shared.clock.fetch_add(1, Ordering::SeqCst);
        let compile_wall = wall_since(t0);
        let t1 = now_nanos();
        let n = ins.rows.len();
        {
            let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut waited);
            let t = &mut tables[ins.table.index()];
            for row in ins.rows {
                t.insert(row)?;
            }
        }
        Ok(QueryResult {
            rows: Vec::new(),
            metrics: QueryMetrics {
                compile_wall,
                exec_wall: wall_since(t1),
                exec_work: n as f64,
                result_rows: n,
                lock_wait: Duration::from_nanos(waited),
                ..QueryMetrics::default()
            },
        })
    }

    fn run_update(&mut self, upd: BoundUpdate, t0: u64, mut waited: u64) -> Result<QueryResult> {
        self.shared.clock.fetch_add(1, Ordering::SeqCst);
        let compile_wall = wall_since(t0);
        let t1 = now_nanos();
        let (scanned, changed) = {
            let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut waited);
            let t = &mut tables[upd.table.index()];
            let matching: Vec<RowId> = t
                .scan()
                .filter(|&r| {
                    upd.predicates
                        .iter()
                        .all(|p| p.matches(&t.value(r, p.column)))
                })
                .collect();
            let scanned = t.row_count();
            for &r in &matching {
                for (col, v) in &upd.sets {
                    t.update(r, *col, v.clone())?;
                }
            }
            (scanned, matching.len())
        };
        Ok(QueryResult {
            rows: Vec::new(),
            metrics: QueryMetrics {
                compile_wall,
                exec_wall: wall_since(t1),
                exec_work: scanned as f64 + changed as f64,
                result_rows: changed,
                lock_wait: Duration::from_nanos(waited),
                ..QueryMetrics::default()
            },
        })
    }

    fn run_delete(&mut self, del: BoundDelete, t0: u64, mut waited: u64) -> Result<QueryResult> {
        self.shared.clock.fetch_add(1, Ordering::SeqCst);
        let compile_wall = wall_since(t0);
        let t1 = now_nanos();
        let (scanned, changed) = {
            let mut tables = timed_write(&self.shared.tables, &self.shared.counters, &mut waited);
            let t = &mut tables[del.table.index()];
            let matching: Vec<RowId> = t
                .scan()
                .filter(|&r| {
                    del.predicates
                        .iter()
                        .all(|p| p.matches(&t.value(r, p.column)))
                })
                .collect();
            let scanned = t.row_count();
            for &r in &matching {
                t.delete(r);
            }
            (scanned, matching.len())
        };
        Ok(QueryResult {
            rows: Vec::new(),
            metrics: QueryMetrics {
                compile_wall,
                exec_wall: wall_since(t1),
                exec_work: scanned as f64 + changed as f64,
                result_rows: changed,
                lock_wait: Duration::from_nanos(waited),
                ..QueryMetrics::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits::JitsConfig;
    use jits_common::DataType;

    fn seed_shared(seed: u64) -> SharedDatabase {
        let db = SharedDatabase::new(seed);
        db.create_table(
            "car",
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("make", DataType::Str),
                ("year", DataType::Int),
            ]),
        )
        .unwrap();
        let rows = (0..1500i64)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(if i % 3 == 0 { "Toyota" } else { "Honda" }),
                    Value::Int(1990 + i % 17),
                ]
            })
            .collect();
        db.load_rows("car", rows).unwrap();
        db
    }

    fn seed_database(seed: u64) -> Database {
        let mut db = Database::new(seed);
        db.create_table(
            "car",
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("make", DataType::Str),
                ("year", DataType::Int),
            ]),
        )
        .unwrap();
        let rows = (0..1500i64)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(if i % 3 == 0 { "Toyota" } else { "Honda" }),
                    Value::Int(1990 + i % 17),
                ]
            })
            .collect();
        db.load_rows("car", rows).unwrap();
        db
    }

    const QUERIES: &[&str] = &[
        "SELECT id FROM car WHERE make = 'Toyota' AND year > 2000",
        "SELECT id FROM car WHERE year > 1995",
        "SELECT id FROM car WHERE make = 'Honda' AND year > 1992",
    ];

    #[test]
    fn single_session_replays_database_exactly() {
        let mut db = seed_database(7);
        db.set_setting(StatsSetting::Jits(JitsConfig::default()));
        let shared = seed_shared(7);
        shared.set_setting(StatsSetting::Jits(JitsConfig::default()));
        let mut s = shared.session();
        for sql in QUERIES.iter().chain(QUERIES.iter()) {
            let a = db.execute(sql).unwrap();
            let b = s.execute(sql).unwrap();
            assert_eq!(a.rows, b.rows, "{sql}");
            assert_eq!(a.metrics.sampled_tables, b.metrics.sampled_tables, "{sql}");
            assert_eq!(
                a.metrics.materialized_groups, b.metrics.materialized_groups,
                "{sql}"
            );
            assert_eq!(
                a.metrics.compile_work.to_bits(),
                b.metrics.compile_work.to_bits(),
                "{sql}"
            );
            let (pa, pb) = (a.metrics.plan.unwrap(), b.metrics.plan.unwrap());
            assert_eq!(pa.est_rows.to_bits(), pb.est_rows.to_bits(), "{sql}");
        }
        // the learned state converged identically too
        assert_eq!(db.clock(), shared.clock());
        let mut db_sel = db
            .archive()
            .iter()
            .map(|(g, _)| format!("{g:?}"))
            .collect::<Vec<_>>();
        let mut sh_sel =
            shared.with_archive(|a| a.iter().map(|(g, _)| format!("{g:?}")).collect::<Vec<_>>());
        db_sel.sort();
        sh_sel.sort();
        assert_eq!(db_sel, sh_sel);
    }

    #[test]
    fn concurrent_sessions_make_progress_and_stay_consistent() {
        let shared = seed_shared(11);
        shared.set_setting(StatsSetting::Jits(JitsConfig::default()));
        let n_threads = 4;
        let per_thread = 12;
        let sessions: Vec<Session> = (0..n_threads).map(|_| shared.session()).collect();
        std::thread::scope(|scope| {
            for mut s in sessions {
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let sql = QUERIES[i % QUERIES.len()];
                        let r = s.execute(sql).unwrap();
                        assert!(!r.rows.is_empty(), "{sql}");
                        if i % 5 == 4 {
                            s.execute("UPDATE car SET year = 2001 WHERE id = 3")
                                .unwrap();
                        }
                    }
                });
            }
        });
        let snap = shared.counters();
        let expected = (n_threads * per_thread) as u64 + (n_threads * (per_thread / 5)) as u64;
        assert_eq!(snap.statements, expected);
        assert_eq!(shared.clock(), expected);
        // the unmutated predicate still answers exactly
        let mut s = shared.session();
        let r = s
            .execute("SELECT id FROM car WHERE make = 'Toyota'")
            .unwrap();
        assert_eq!(r.rows.len(), 500);
    }

    #[test]
    fn blocked_acquisitions_are_charged() {
        let shared = seed_shared(3);
        let inner = Arc::clone(&shared.shared);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            let _guard = inner.tables.write();
            tx.send(()).unwrap();
            std::thread::sleep(Duration::from_millis(30));
        });
        rx.recv().unwrap(); // writer certainly holds the lock now
        let mut s = shared.session();
        let r = s.execute("SELECT id FROM car WHERE year > 2004").unwrap();
        holder.join().unwrap();
        assert!(r.metrics.lock_wait > Duration::ZERO);
        let snap = shared.counters();
        assert!(snap.contended_acquisitions >= 1);
        assert!(snap.lock_wait > Duration::ZERO);
    }

    #[test]
    fn dml_and_ddl_through_shared_paths() {
        let shared = seed_shared(5);
        shared.runstats_all().unwrap();
        let mut s = shared.session();
        let r = s
            .execute("INSERT INTO car VALUES (9000, 'BMW', 2006)")
            .unwrap();
        assert_eq!(r.metrics.result_rows, 1);
        let r = s
            .execute("UPDATE car SET year = 2007 WHERE make = 'BMW'")
            .unwrap();
        assert_eq!(r.metrics.result_rows, 1);
        let r = s.execute("DELETE FROM car WHERE make = 'BMW'").unwrap();
        assert_eq!(r.metrics.result_rows, 1);
        let plan = s.explain("SELECT id FROM car WHERE year > 2000").unwrap();
        assert!(plan.contains("Scan"), "{plan}");
        assert!(s.execute("SELECT * FROM nosuch").is_err());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank tracker compiles out in release")]
    fn shared_database_locks_are_rank_tracked() {
        // Holding `tables` (rank 2) and then taking `catalog` (rank 1) on
        // the same thread must panic — proof the runtime validator guards
        // the real SharedDatabase locks, not just synthetic ones.
        let shared = seed_shared(1);
        let inner = Arc::clone(&shared.shared);
        let _tables = inner.tables.read();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _catalog = inner.catalog.read();
        }))
        .expect_err("catalog after tables must violate the rank order");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-rank violation"), "{msg}");
        assert!(msg.contains("catalog") && msg.contains("tables"), "{msg}");
        // in-order acquisition still works on this thread
        drop(_tables);
        let _catalog = inner.catalog.read();
        let _tables = inner.tables.read();
    }

    #[test]
    fn sessions_get_distinct_streams() {
        let shared = seed_shared(9);
        let a = shared.session();
        let b = shared.session();
        let c = shared.session();
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(c.id(), 2);
        let (mut ra, mut rb, mut rc) = (a.rng.clone(), b.rng.clone(), c.rng.clone());
        let (xa, xb, xc) = (ra.next_u64(), rb.next_u64(), rc.next_u64());
        assert_ne!(xa, xb);
        assert_ne!(xb, xc);
        assert_ne!(xa, xc);
    }
}
