//! The `Database` facade.

use crate::explain::{explain_block, JitsExplain};
use crate::metrics::{wall_since, QueryMetrics, StageWalls};
use crate::persist::{self, RecoveryReport, RestoredState, StateRefs};
use crate::profile::{build_profile, render_profile, ProfileContext};
use crate::settings::StatsSetting;
use crate::{observe, views};
use jits::{
    collect_for_tables, collect_for_tables_sourced, ingest, query_analysis,
    sensitivity_analysis_with_feedback, CollectedStats, JitsConfig, JitsStatisticsProvider,
    PredicateCache, QssArchive, RefineOutcome, SampleSource, SensitivityStrategy, StatHistory,
};
use jits_catalog::{runstats, Catalog, RunstatsOptions};
use jits_common::fault::{
    FP_ARCHIVE_READ, FP_ARCHIVE_WRITE, FP_HISTORY_READ, FP_SAMPLECACHE_COMMIT,
};
use jits_common::{
    fault_key, ColumnId, FaultPlane, JitsError, Result, Schema, SplitMix64, TableId, Value,
};
use jits_executor::{execute_with_opts, ExecOptions, ExecutorKind};
use jits_obs::clock::now_nanos;
use jits_obs::{FlightEvent, Observability, QueryLogEntry, TraceBuilder};
use jits_optimizer::{
    optimize, CardinalityEstimator, CatalogStatisticsProvider, CostModel, DefaultSelectivities,
    PhysicalPlan, PlanSummary, SelEstimate, StatisticsProvider,
};
use jits_query::{
    bind_statement, parse, BoundDelete, BoundInsert, BoundStatement, BoundUpdate, QueryBlock,
    Statement,
};
use jits_storage::{CacheLookup, CachedSample, RowId, SampleCache, Table};
use jits_wal::{Wal, WalRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;

/// Default number of WAL records between automatic fuzzy checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 512;

/// Result of executing one SQL statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result rows (empty for DML).
    pub rows: Vec<Vec<Value>>,
    /// Timing, work, and JITS diagnostics.
    pub metrics: QueryMetrics,
}

/// An in-memory database with a cost-based optimizer and the JITS pipeline.
///
/// ```
/// use jits::JitsConfig;
/// use jits_common::{DataType, Schema, Value};
/// use jits_engine::{Database, StatsSetting};
///
/// let mut db = Database::new(42);
/// db.create_table("t", Schema::from_pairs(&[
///     ("id", DataType::Int),
///     ("tag", DataType::Str),
/// ]))?;
/// db.load_rows("t", (0..100i64).map(|i| vec![
///     Value::Int(i),
///     Value::str(if i % 4 == 0 { "hot" } else { "cold" }),
/// ]).collect())?;
///
/// db.set_setting(StatsSetting::Jits(JitsConfig::default()));
/// let result = db.execute("SELECT COUNT(*) FROM t WHERE tag = 'hot'")?;
/// assert_eq!(result.rows[0][0], Value::Int(25));
/// # jits_common::Result::Ok(())
/// ```
pub struct Database {
    tables: Vec<Table>,
    catalog: Catalog,
    archive: QssArchive,
    history: StatHistory,
    predcache: PredicateCache,
    samplecache: SampleCache,
    setting: StatsSetting,
    clock: u64,
    rng: SplitMix64,
    cost: CostModel,
    defaults: DefaultSelectivities,
    runstats_opts: RunstatsOptions,
    /// Groups materialized by the most recent JITS compile phase.
    last_materialized: usize,
    /// Evaluate SELECTs on the vectorized batch executor (default) or the
    /// row-at-a-time path; bit-identical either way, kept for A/B runs.
    batch_executor: bool,
    /// Physically skip zone-map-pruned blocks during pruned scans (default
    /// on). Results, work, and observations are bit-identical either way —
    /// the skip list is always consulted for charging — so this is another
    /// wall-clock-only A/B knob.
    data_skipping: bool,
    /// Build per-operator profiles of executed SELECTs (default on; see
    /// `crate::profile`). Off disables the q-error observatory and the
    /// flight-recorder profile events, for overhead A/B runs.
    profiling: bool,
    /// Tracer, metrics registry, and query log.
    obs: Arc<Observability>,
    /// Deterministic fault-injection plane (disabled by default: every
    /// check is a constant `false`).
    fault: FaultPlane,
    /// Write-ahead log when the database is durable ([`Database::open`]);
    /// `None` for in-memory databases and during recovery replay (replay
    /// must never re-append the records it is re-executing).
    wal: Option<Wal>,
    /// WAL records between automatic fuzzy checkpoints (0 disables the
    /// automatic trigger; explicit [`Database::checkpoint`] still works).
    checkpoint_every: u64,
    /// What recovery did at the last [`Database::open`] (all zeros for a
    /// fresh or in-memory database).
    recovery: RecoveryReport,
}

impl Database {
    /// Creates an empty database; `seed` drives all sampling decisions, so
    /// equal seeds give bit-identical runs.
    pub fn new(seed: u64) -> Self {
        Database {
            tables: Vec::new(),
            catalog: Catalog::new(),
            archive: QssArchive::default(),
            history: StatHistory::new(),
            predcache: PredicateCache::default(),
            samplecache: SampleCache::new(),
            setting: StatsSetting::default(),
            clock: 0,
            rng: SplitMix64::new(seed),
            cost: CostModel::default(),
            defaults: DefaultSelectivities::default(),
            runstats_opts: RunstatsOptions::default(),
            last_materialized: 0,
            batch_executor: true,
            data_skipping: true,
            profiling: true,
            obs: Arc::new(Observability::new()),
            fault: FaultPlane::disabled(),
            wal: None,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            recovery: RecoveryReport::default(),
        }
    }

    /// Opens (or creates) a durable database rooted at `dir`: restores the
    /// newest intact checkpoint segment, replays the post-checkpoint WAL
    /// tail through the normal engine paths, and only then attaches the
    /// log so subsequent operations append. `seed` is used only when no
    /// checkpoint exists — a restored database continues the checkpointed
    /// RNG stream, which is what makes recovery bit-identical.
    ///
    /// Replayed statements that error do so deterministically (the
    /// original execution failed the same way), so statement-level replay
    /// errors are counted, not fatal. A checkpoint that fails to *decode*
    /// after passing its CRC is real corruption and aborts the open with
    /// [`JitsError::Recovery`].
    pub fn open(seed: u64, dir: &Path) -> Result<Database> {
        let opened = Wal::open(dir)?;
        let mut report = RecoveryReport {
            checkpoint_lsn: opened.checkpoint.as_ref().map(|c| c.lsn),
            replayed_records: 0,
            replay_errors: 0,
            torn_bytes: opened.torn_bytes,
            corrupt_checkpoints: opened.corrupt_checkpoints,
        };
        let mut db = Database::new(seed);
        if let Some(ckpt) = &opened.checkpoint {
            db.restore(persist::decode_state(&ckpt.payload)?);
        }
        for (_lsn, rec) in &opened.records {
            report.replayed_records += 1;
            if db.replay(rec).is_err() {
                report.replay_errors += 1;
            }
        }
        db.wal = Some(opened.wal);
        db.recovery = report.clone();
        observe::note_recovery(&db.obs, &report);
        Ok(db)
    }

    /// Installs checkpointed state verbatim. Unlike
    /// [`Database::set_setting`], the setting is assigned directly: the
    /// archive limits and cache capacities it would re-derive are already
    /// inside the restored snapshots, and re-deriving them could clear a
    /// restored sample cache.
    fn restore(&mut self, s: RestoredState) {
        self.clock = s.clock;
        self.rng = s.rng;
        self.batch_executor = s.batch_executor;
        self.data_skipping = s.data_skipping;
        self.profiling = s.profiling;
        self.setting = s.setting;
        self.catalog = s.catalog;
        self.tables = s.tables;
        self.archive = s.archive;
        self.history = s.history;
        self.predcache = s.predcache;
        self.samplecache = s.samplecache;
        self.obs.registry.restore(&s.metrics);
        self.obs.restore_qerror(s.qerror);
    }

    /// Re-executes one WAL record through the normal engine path. Only
    /// called while `self.wal` is `None`, so nothing re-appends.
    fn replay(&mut self, rec: &WalRecord) -> Result<()> {
        debug_assert!(self.wal.is_none(), "replay must not re-append");
        match rec {
            WalRecord::Statement { sql } => self.execute(sql).map(|_| ()),
            WalRecord::Explain { sql } => self.explain(sql).map(|_| ()),
            WalRecord::CreateTable { name, schema } => {
                self.create_table(name, schema.clone()).map(|_| ())
            }
            WalRecord::CreateIndex { table, column } => self.create_index(table, column),
            WalRecord::SetPrimaryKey { table, column } => self.set_primary_key(table, column),
            WalRecord::LoadRows { table, rows } => self.load_rows(table, rows.clone()).map(|_| ()),
            WalRecord::ResetUdi { table } => {
                self.reset_udi(TableId(*table));
                Ok(())
            }
            WalRecord::RunstatsAll => self.runstats_all(),
            WalRecord::Precollect { sql } => self.precollect_query_stats(sql),
            WalRecord::MigrateStats => {
                self.migrate_statistics();
                Ok(())
            }
            WalRecord::ClearStats => {
                self.clear_statistics();
                Ok(())
            }
            WalRecord::SetSetting { payload } => {
                self.set_setting(persist::decode_setting(payload)?);
                Ok(())
            }
            WalRecord::SetFlag { name, on } => {
                match name.as_str() {
                    "profiling" => self.set_profiling(*on),
                    "batch_executor" => self.set_batch_executor(*on),
                    "data_skipping" => self.set_data_skipping(*on),
                    other => {
                        return Err(JitsError::Recovery(format!(
                            "wal replay: unknown flag '{other}'"
                        )))
                    }
                }
                Ok(())
            }
        }
    }

    /// Appends one record to the WAL, if one is attached. Errors poison
    /// the log (no further durable operations succeed), so a caller that
    /// propagates this error fails the triggering operation before any
    /// in-memory mutation happens — write-ahead in the strict sense.
    fn wal_append(&mut self, rec: &WalRecord) -> Result<()> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(());
        };
        wal.append(rec, &self.fault, self.clock)?;
        let bytes = wal.bytes_appended();
        observe::note_wal_append(&self.obs, rec.kind(), bytes);
        Ok(())
    }

    /// [`Database::wal_append`] for infallible-signature knobs (setting and
    /// flag flips): a failure is counted and flight-noted instead of
    /// propagated. The log has poisoned itself, so the very next fallible
    /// durable operation errors loudly — the knob's effect is never
    /// silently lost past that point (DESIGN.md §14).
    fn wal_append_lossy(&mut self, rec: &WalRecord) {
        let kind = rec.kind();
        if let Err(e) = self.wal_append(rec) {
            observe::note_wal_append_error(&self.obs, self.clock, kind, &e.to_string());
        }
    }

    /// Folds the entire engine state into a new checkpoint segment and
    /// truncates the log. Returns the covered LSN, or `None` for an
    /// in-memory database. The snapshot is taken synchronously between
    /// statements, so it is trivially consistent; "fuzzy" refers to its
    /// placement at an arbitrary point of the workload, not to torn
    /// in-flight state.
    pub fn checkpoint(&mut self) -> Result<Option<u64>> {
        if self.wal.is_none() {
            return Ok(None);
        }
        let payload = persist::encode_state(&StateRefs {
            clock: self.clock,
            rng_state: self.rng.state(),
            batch_executor: self.batch_executor,
            data_skipping: self.data_skipping,
            profiling: self.profiling,
            setting: &self.setting,
            catalog: &self.catalog,
            tables: &self.tables,
            archive: &self.archive,
            history: &self.history,
            predcache: &self.predcache,
            samplecache: &self.samplecache,
            obs: &self.obs,
        });
        // jits-lint: allow(panic-surface) -- the None case returned above
        let wal = self.wal.as_mut().expect("checked above");
        let lsn = wal.checkpoint(&payload, &self.fault, self.clock)?;
        observe::note_checkpoint(&self.obs, self.clock, lsn, payload.len());
        Ok(Some(lsn))
    }

    /// Checkpoints when enough records have accumulated since the last
    /// one. Runs *before* the next statement is logged, so the statement
    /// lands in the fresh log generation.
    fn maybe_checkpoint(&mut self) -> Result<()> {
        let due = self.checkpoint_every > 0
            && self
                .wal
                .as_ref()
                .is_some_and(|w| w.since_checkpoint() >= self.checkpoint_every);
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Sets the automatic checkpoint cadence (records since the last
    /// checkpoint; 0 disables the automatic trigger).
    pub fn set_checkpoint_every(&mut self, every: u64) {
        self.checkpoint_every = every;
    }

    /// What recovery did at the last [`Database::open`].
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Whether a WAL is attached (durable mode).
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// RNG stream position (recovery tests compare it across crashes).
    #[doc(hidden)]
    pub fn rng_state_for_test(&self) -> u64 {
        self.rng.state()
    }

    /// The predicate cache (recovery tests snapshot it).
    #[doc(hidden)]
    pub fn predcache_for_test(&self) -> &PredicateCache {
        &self.predcache
    }

    /// Selects the executor for subsequent SELECTs: the vectorized batch
    /// engine (`true`, the default) or the row-at-a-time path. The two are
    /// differential-tested bit-identical in result rows, work, and
    /// observations, so this only affects wall-clock speed.
    pub fn set_batch_executor(&mut self, on: bool) {
        if self.batch_executor != on {
            self.wal_append_lossy(&WalRecord::SetFlag {
                name: "batch_executor".to_string(),
                on,
            });
        }
        self.batch_executor = on;
    }

    /// Whether SELECTs run on the vectorized batch executor.
    pub fn batch_executor(&self) -> bool {
        self.batch_executor
    }

    /// Enables or disables physical block skipping in pruned scans (default
    /// on). The plan still chooses the pruned-scan access path and charges
    /// pruned-scan work either way; off forces the executor to read every
    /// block, which is the baseline arm of the data-skipping benchmark.
    pub fn set_data_skipping(&mut self, on: bool) {
        if self.data_skipping != on {
            self.wal_append_lossy(&WalRecord::SetFlag {
                name: "data_skipping".to_string(),
                on,
            });
        }
        self.data_skipping = on;
    }

    /// Whether pruned scans physically skip pruned blocks.
    pub fn data_skipping(&self) -> bool {
        self.data_skipping
    }

    /// Enables or disables per-operator profiling of SELECTs (default on).
    /// When off, executed statements carry no [`QueryMetrics::profile`],
    /// record no flight-recorder profile events, and feed no q-error
    /// aggregates — the knob the profiling-overhead benchmark flips.
    pub fn set_profiling(&mut self, on: bool) {
        if self.profiling != on {
            self.wal_append_lossy(&WalRecord::SetFlag {
                name: "profiling".to_string(),
                on,
            });
        }
        self.profiling = on;
    }

    /// Whether per-operator profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Installs the deterministic fault-injection plane (chaos testing).
    /// Every fault decision is a pure function of the plane's seed, the
    /// fault point, and the statement clock — never wall time — so a
    /// faulted run replays bit-identically at any `collect_threads`.
    /// [`FaultPlane::disabled`] (the default) restores normal operation.
    pub fn set_fault_plane(&mut self, fault: FaultPlane) {
        self.fault = fault;
    }

    /// The observability state: tracer, metrics registry, and query log.
    pub fn obs(&self) -> &Arc<Observability> {
        &self.obs
    }

    /// Exports the metrics registry as JSON (see `jits-obs` for the
    /// format). Pass `include_volatile = false` for the deterministic
    /// subset, which is byte-identical for equal workloads and seeds at
    /// any `collect_threads`.
    pub fn metrics_json(&self, include_volatile: bool) -> String {
        observe::note_archive_gauges(&self.obs, &self.archive);
        self.obs.metrics_json(include_volatile)
    }

    /// Exports the metrics registry in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        observe::note_archive_gauges(&self.obs, &self.archive);
        self.obs.metrics_prometheus(true)
    }

    /// Selects the statistics setting for subsequent queries.
    ///
    /// Accumulated statistics (archive, predicate cache, history) survive
    /// the switch — tuning `s_max` mid-session must not discard what JITS
    /// has learned. Use [`Database::clear_statistics`] for a clean slate.
    pub fn set_setting(&mut self, setting: StatsSetting) {
        self.wal_append_lossy(&WalRecord::SetSetting {
            payload: persist::encode_setting(&setting),
        });
        if let StatsSetting::Jits(cfg) = &setting {
            self.archive
                .set_limits(cfg.archive_bucket_budget, cfg.eviction_uniformity);
            self.predcache.set_capacity(cfg.predicate_cache_capacity);
            if !cfg.sample_cache {
                self.samplecache.clear();
            }
        }
        self.setting = setting;
    }

    /// The current statistics setting.
    pub fn setting(&self) -> &StatsSetting {
        &self.setting
    }

    // ---- DDL -----------------------------------------------------------

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        self.wal_append(&WalRecord::CreateTable {
            name: name.to_string(),
            schema: schema.clone(),
        })?;
        let id = self.catalog.register_table(name, schema.clone())?;
        debug_assert_eq!(id.index(), self.tables.len());
        self.tables.push(Table::new(name, schema));
        Ok(id)
    }

    /// Creates a secondary index.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        self.wal_append(&WalRecord::CreateIndex {
            table: table.to_string(),
            column: column.to_string(),
        })?;
        let tid = self.catalog.require(table)?;
        let col = self
            .catalog
            .table(tid)
            .ok_or_else(|| JitsError::internal(format!("catalog entry missing for {tid:?}")))?
            .schema
            .require_column(column)?;
        self.tables[tid.index()].create_index(col)?;
        self.catalog.add_index(tid, col)
    }

    /// Declares a primary key (also builds its index).
    pub fn set_primary_key(&mut self, table: &str, column: &str) -> Result<()> {
        self.wal_append(&WalRecord::SetPrimaryKey {
            table: table.to_string(),
            column: column.to_string(),
        })?;
        let tid = self.catalog.require(table)?;
        let col = self
            .catalog
            .table(tid)
            .ok_or_else(|| JitsError::internal(format!("catalog entry missing for {tid:?}")))?
            .schema
            .require_column(column)?;
        self.catalog.set_primary_key(tid, col)?;
        self.tables[tid.index()].create_index(col)?;
        self.catalog.add_index(tid, col)
    }

    // ---- bulk loading and direct access ---------------------------------

    /// Bulk-loads rows (bypasses SQL parsing; used by data generators).
    pub fn load_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        // encode into the record, append, then take the rows back — the
        // append borrows them, so bulk loads cost no extra copy
        let rec = WalRecord::LoadRows {
            table: table.to_string(),
            rows,
        };
        self.wal_append(&rec)?;
        let WalRecord::LoadRows { rows, .. } = rec else {
            // jits-lint: allow(panic-surface) -- variant constructed above
            unreachable!("constructed two lines up")
        };
        let tid = self.catalog.require(table)?;
        let t = &mut self.tables[tid.index()];
        let n = rows.len();
        for row in rows {
            t.insert(row)?;
        }
        Ok(n)
    }

    /// Storage handle of a table.
    pub fn table(&self, id: TableId) -> Option<&Table> {
        self.tables.get(id.index())
    }

    /// All storage tables, indexed by `TableId` (read access — used by
    /// benchmarks and diagnostics that drive JITS components directly).
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Resets a table's UDI counter (bulk loads are initial state, not
    /// churn).
    pub fn reset_udi(&mut self, id: TableId) {
        self.wal_append_lossy(&WalRecord::ResetUdi { table: id.0 });
        if let Some(t) = self.tables.get_mut(id.index()) {
            t.reset_udi();
        }
    }

    /// Resolves a table name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.catalog.resolve(name)
    }

    /// The catalog (read access).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The QSS archive (read access, for diagnostics).
    pub fn archive(&self) -> &QssArchive {
        &self.archive
    }

    /// The StatHistory (read access, for diagnostics).
    pub fn history(&self) -> &StatHistory {
        &self.history
    }

    /// The versioned sample cache (read access, for diagnostics).
    pub fn sample_cache(&self) -> &SampleCache {
        &self.samplecache
    }

    /// The logical clock (statements executed).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    // ---- statistics management ------------------------------------------

    /// Runs RUNSTATS over every table: populates the catalog's general
    /// statistics and resets UDI counters (the paper's "general (basic and
    /// distribution) statistics about all tables and columns").
    pub fn runstats_all(&mut self) -> Result<()> {
        self.wal_append(&WalRecord::RunstatsAll)?;
        self.clock += 1;
        for tid in 0..self.tables.len() {
            let (ts, cs) = runstats(&self.tables[tid], self.runstats_opts, self.clock);
            self.catalog.set_stats(TableId(tid as u32), ts, cs)?;
            self.tables[tid].reset_udi();
        }
        Ok(())
    }

    /// Analyzes a query and collects *all* its candidate predicate groups
    /// into the QSS archive (the paper's "workload statistics" preparation:
    /// "all column groups that occur in all the queries" collected
    /// beforehand). Does not count toward any query's compile time.
    pub fn precollect_query_stats(&mut self, sql: &str) -> Result<()> {
        let stmt = parse(sql)?;
        self.wal_append(&WalRecord::Precollect {
            sql: sql.to_string(),
        })?;
        let BoundStatement::Select(block) = bind_statement(&stmt, &self.catalog)? else {
            return Ok(()); // only SELECTs carry predicate groups
        };
        self.clock += 1;
        let cfg = JitsConfig::default();
        let candidates = query_analysis(&block, cfg.max_group_enumeration);
        let all_quns: Vec<usize> = (0..block.quns.len())
            .filter(|&q| candidates.iter().any(|c| c.qun == q))
            .collect();
        let collected = collect_for_tables(
            &block,
            &all_quns,
            &candidates,
            &self.tables,
            cfg.sample,
            &mut self.rng,
        );
        for cand in &candidates {
            self.materialize_group(&block, cand, &collected);
        }
        Ok(())
    }

    /// Migrates one-dimensional QSS histograms into the catalog.
    pub fn migrate_statistics(&mut self) -> usize {
        self.wal_append_lossy(&WalRecord::MigrateStats);
        self.clock += 1;
        jits::migrate::migrate(&self.archive, &mut self.catalog, self.clock)
    }

    /// Drops catalog statistics, the archive, and the history (the paper's
    /// "no initial statistics" baseline).
    pub fn clear_statistics(&mut self) {
        self.wal_append_lossy(&WalRecord::ClearStats);
        self.catalog.clear_stats();
        self.archive.clear();
        self.history.clear();
        self.predcache.clear();
        self.samplecache.clear();
    }

    /// Converts this single-owner database into a [`crate::SharedDatabase`]
    /// whose sessions can execute concurrently. The master RNG state moves
    /// over verbatim, so the first session replays exactly where this
    /// `Database` would have continued.
    pub fn into_shared(self) -> crate::SharedDatabase {
        crate::session::SharedDatabase::from_database_parts(
            self.tables,
            self.catalog,
            self.archive,
            self.history,
            self.predcache,
            self.samplecache,
            self.setting,
            self.clock,
            self.rng,
            self.cost,
            self.defaults,
            self.runstats_opts,
            self.batch_executor,
            self.data_skipping,
            self.profiling,
            self.obs,
            self.fault,
            self.wal,
            self.checkpoint_every,
            self.recovery,
        )
    }

    // ---- query execution --------------------------------------------------

    /// Parses, optimizes and executes one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let t0 = now_nanos();
        let stmt = parse(sql)?;
        if let Some(rows) = self.system_view_rows(&stmt) {
            return Ok(QueryResult {
                metrics: QueryMetrics {
                    compile_wall: wall_since(t0),
                    result_rows: rows.len(),
                    ..QueryMetrics::default()
                },
                rows,
            });
        }
        // Logged after parse (parse errors mutate nothing) and before bind:
        // a bind error happens after the record is durable, and replays to
        // the identical error without ticking the clock. Checkpoint first,
        // so this statement lands in the fresh log generation.
        self.maybe_checkpoint()?;
        self.wal_append(&WalRecord::Statement {
            sql: sql.to_string(),
        })?;
        let bound = bind_statement(&stmt, &self.catalog)?;
        match bound {
            BoundStatement::Select(block) => self.run_select(block, t0, sql),
            BoundStatement::Explain(block) => {
                self.clock += 1;
                let (collected, _, _, _) = self.jits_compile_phase(
                    &block,
                    &mut TraceBuilder::off(),
                    &mut QueryMetrics::default(),
                );
                let plan = self.plan_for(&block, &collected)?;
                let metrics = QueryMetrics {
                    compile_wall: wall_since(t0),
                    compile_work: collected.work,
                    plan: Some(PlanSummary::from(&plan)),
                    ..QueryMetrics::default()
                };
                let rows = plan
                    .explain()
                    .lines()
                    .map(|l| vec![Value::str(l)])
                    .collect();
                Ok(QueryResult { rows, metrics })
            }
            BoundStatement::Insert(ins) => self.run_insert(ins, t0),
            BoundStatement::Update(upd) => self.run_update(upd, t0),
            BoundStatement::Delete(del) => self.run_delete(del, t0),
        }
    }

    /// Compiles a query and renders its plan (EXPLAIN).
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        let stmt = parse(sql)?;
        self.maybe_checkpoint()?;
        self.wal_append(&WalRecord::Explain {
            sql: sql.to_string(),
        })?;
        let (BoundStatement::Select(block) | BoundStatement::Explain(block)) =
            bind_statement(&stmt, &self.catalog)?
        else {
            return Err(JitsError::Plan("EXPLAIN supports SELECT only".into()));
        };
        self.clock += 1;
        let (collected, _, _, _) = self.jits_compile_phase(
            &block,
            &mut TraceBuilder::off(),
            &mut QueryMetrics::default(),
        );
        let plan = self.plan_for(&block, &collected)?;
        Ok(plan.explain())
    }

    /// Replays the JITS compile-phase decisions for `sql` without
    /// executing it, bumping the clock, or drawing from the sampling RNG:
    /// the reported scores and verdicts are bit-for-bit what the next
    /// [`Database::execute`] of the same statement would compute.
    pub fn explain_jits(&self, sql: &str) -> Result<JitsExplain> {
        let stmt = parse(sql)?;
        let (BoundStatement::Select(block) | BoundStatement::Explain(block)) =
            bind_statement(&stmt, &self.catalog)?
        else {
            return Err(JitsError::Plan("EXPLAIN JITS supports SELECT only".into()));
        };
        Ok(explain_block(
            sql,
            &block,
            &self.setting,
            &self.catalog,
            &self.tables,
            &self.archive,
            &self.history,
            &self.predcache,
            &observe::qerror_feedback(&self.obs, &self.catalog),
        ))
    }

    /// Executes `sql` with profiling forced on and renders the per-operator
    /// profile tree: estimated vs. actual cardinality, q-error, charged
    /// work, and wall time for every node of the executed plan.
    ///
    /// Errors for statements that execute no plan (DML, EXPLAIN, system
    /// views).
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        // the flips route through set_profiling so they are WAL-logged:
        // replay must profile (and feed the q-error aggregates) exactly as
        // the original run did
        let was = self.profiling;
        self.set_profiling(true);
        let result = self.execute(sql);
        self.set_profiling(was);
        let profile = result?
            .metrics
            .profile
            .ok_or_else(|| JitsError::Plan("EXPLAIN ANALYZE supports plain SELECT only".into()))?;
        Ok(render_profile(&profile))
    }

    /// Answers a `SELECT` from one of the virtual system views, unless a
    /// user table shadows the name.
    fn system_view_rows(&self, stmt: &Statement) -> Option<Vec<Vec<Value>>> {
        let view = views::system_view_name(stmt)?;
        if self.catalog.resolve(view).is_some() {
            return None;
        }
        Some(match view {
            views::VIEW_ARCHIVE_STATS => views::archive_stats_rows(&self.archive),
            views::VIEW_TABLE_SCORES => views::table_scores_rows(&self.obs),
            views::VIEW_SAMPLE_CACHE => views::sample_cache_rows(&self.samplecache, &self.catalog),
            views::VIEW_DEGRADATION => views::degradation_rows(&self.obs),
            views::VIEW_PROFILE => views::profile_rows(&self.obs),
            views::VIEW_FLIGHT => views::flight_rows(&self.obs),
            views::VIEW_ACCESS_PATHS => views::access_paths_rows(&self.obs),
            _ => views::query_log_rows(&self.obs),
        })
    }

    fn run_select(&mut self, block: QueryBlock, t0: u64, sql: &str) -> Result<QueryResult> {
        self.clock += 1;
        let obs = Arc::clone(&self.obs);
        let cfg = self.setting.jits_config().cloned().unwrap_or_default();
        let mut tb = obs.tracer.start(sql, self.clock, 0);
        tb.begin("parse_bind");
        tb.end(now_nanos().saturating_sub(t0));
        let mut metrics = QueryMetrics::default();

        // -- JITS compile-time pipeline --
        let (collected, sampled, scores, walls) =
            self.jits_compile_phase(&block, &mut tb, &mut metrics);
        metrics.set_stage_walls(walls);
        metrics.compile_work = collected.work;
        metrics.sampled_tables = sampled;
        metrics.materialized_groups = self.last_materialized;
        metrics.table_scores = scores;
        metrics.collect_threads = collected.collect_threads;

        // -- optimize --
        tb.begin("optimize");
        let topt = now_nanos();
        let plan = self.plan_for(&block, &collected)?;
        let plan_nanos = now_nanos().saturating_sub(topt);
        tb.end(plan_nanos);
        metrics.plan = Some(PlanSummary::from(&plan));
        metrics.compile_wall = wall_since(t0);

        // -- execute --
        tb.begin("execute");
        let t1 = now_nanos();
        let kind = if self.batch_executor {
            ExecutorKind::Batch
        } else {
            ExecutorKind::Row
        };
        let out = execute_with_opts(
            kind,
            &plan,
            &block,
            &self.tables,
            &self.cost,
            ExecOptions {
                data_skipping: self.data_skipping,
            },
        )?;
        metrics.exec_wall = wall_since(t1);
        let exec_nanos = metrics.exec_wall.as_nanos() as u64;
        tb.end(exec_nanos);
        metrics.exec_work = out.stats.work;
        metrics.result_rows = out.rows.len();
        metrics.batch_executor = self.batch_executor;
        observe::note_executor(&obs, self.batch_executor);
        observe::note_access_paths(&obs, &out.stats);

        // -- profile (estimation-quality observatory) --
        if self.profiling {
            let profile = build_profile(
                &plan,
                &out.stats,
                &self.catalog,
                &ProfileContext {
                    clock: self.clock,
                    session: 0,
                    sql,
                    batch_executor: self.batch_executor,
                    result_rows: out.rows.len(),
                    degraded: metrics.degraded,
                    exec_wall_nanos: exec_nanos,
                },
            );
            observe::note_profile(&obs, &profile, cfg.qerror_threshold);
            metrics.profile = Some(profile);
        }
        observe::note_stage_latencies(
            &obs,
            plan_nanos,
            metrics.collect_wall.as_nanos() as u64,
            exec_nanos,
        );

        // -- feedback (LEO) --
        tb.begin("feedback");
        let tf = now_nanos();
        ingest(
            &block,
            &out.stats.scans,
            &mut self.history,
            &mut self.archive,
            &self.catalog,
            &cfg,
            self.clock,
        );
        observe::note_feedback(&obs, &mut tb, out.stats.scans.len());
        tb.end(now_nanos().saturating_sub(tf));

        // -- periodic statistics migration (paper Figure 1) --
        if matches!(self.setting, StatsSetting::Jits(_))
            && cfg.migrate_every > 0
            && self.clock.is_multiple_of(cfg.migrate_every)
        {
            jits::migrate::migrate(&self.archive, &mut self.catalog, self.clock);
        }

        observe::note_statement(
            &obs,
            QueryLogEntry {
                clock: self.clock,
                session: 0,
                sql: sql.to_string(),
                result_rows: metrics.result_rows,
                compile_nanos: metrics.compile_wall.as_nanos() as u64,
                exec_nanos: metrics.exec_wall.as_nanos() as u64,
                sampled_tables: sampled,
            },
        );
        obs.tracer.finish(tb, now_nanos().saturating_sub(t0));

        Ok(QueryResult {
            rows: out.rows,
            metrics,
        })
    }

    /// Runs query analysis, sensitivity analysis, sampling and archive
    /// materialization, if JITS is enabled. Returns the fresh statistics,
    /// the number of sampled tables, the sensitivity scores, and the
    /// per-stage wall times (which also decorate `tb`'s spans).
    ///
    /// Degradations (fault-isolated tables, budget aborts, quarantined
    /// archive groups) are recorded onto `metrics` and the obs state as
    /// they happen; the statement always proceeds to planning.
    fn jits_compile_phase(
        &mut self,
        block: &QueryBlock,
        tb: &mut TraceBuilder,
        metrics: &mut QueryMetrics,
    ) -> (CollectedStats, usize, Vec<jits::TableScore>, StageWalls) {
        self.last_materialized = 0;
        let mut walls = StageWalls::default();
        let StatsSetting::Jits(cfg) = self.setting.clone() else {
            return (CollectedStats::default(), 0, Vec::new(), walls);
        };
        if cfg.never_collects() {
            return (CollectedStats::default(), 0, Vec::new(), walls);
        }

        // -- query analysis (Algorithm 1) --
        tb.begin("analyze");
        let t = now_nanos();
        let candidates = query_analysis(block, cfg.max_group_enumeration);
        walls.analyze = wall_since(t);
        observe::note_analysis(&self.obs, tb, block.quns.len(), candidates.len());
        tb.end(walls.analyze.as_nanos() as u64);

        // -- sensitivity analysis (Algorithms 2-4) --
        tb.begin("sensitivity");
        let t = now_nanos();
        let (sample_quns, materialize, table_scores, extra_work, mat_log) = match &cfg.strategy {
            SensitivityStrategy::PaperHeuristic => {
                // history.read fault: a failed (post-retry) history read
                // degrades to an empty StatHistory — every table scores
                // s1 = 1 (no accuracy evidence), so sensitivity errs
                // toward collecting, never toward serving stale stats.
                let (history_ok, _) = self.fault.retry(FP_HISTORY_READ, self.clock);
                let empty_history = (!history_ok).then(StatHistory::new);
                if !history_ok {
                    observe::note_degradation(
                        &self.obs,
                        tb,
                        metrics,
                        self.clock,
                        String::new(),
                        FP_HISTORY_READ,
                        "empty_history",
                    );
                }
                let decision = sensitivity_analysis_with_feedback(
                    block,
                    &candidates,
                    empty_history.as_ref().unwrap_or(&self.history),
                    &self.archive,
                    &self.predcache,
                    &self.catalog,
                    &self.tables,
                    &cfg,
                    &observe::qerror_feedback(&self.obs, &self.catalog),
                );
                (
                    decision.sample_quns,
                    decision.materialize,
                    decision.table_scores,
                    0.0,
                    decision.materialize_log,
                )
            }
            SensitivityStrategy::EpsilonPlanning(eps) => {
                // the [6]-style baseline: decide by double-optimizing; it
                // neither consults the history nor materializes anything
                // for reuse — exactly the contrast the paper draws
                let outcome = jits::epsilon::epsilon_sensitivity_default(
                    block,
                    &self.archive,
                    &self.catalog,
                    &self.tables,
                    &self.cost,
                    eps,
                )
                .unwrap_or(jits::EpsilonOutcome {
                    sample_quns: Vec::new(),
                    optimizer_calls: 0,
                    final_gap: 0.0,
                });
                // each extra optimizer invocation costs real compile work
                let work = outcome.optimizer_calls as f64 * OPTIMIZER_CALL_WORK;
                (
                    outcome.sample_quns,
                    Vec::new(),
                    Vec::new(),
                    work,
                    Vec::new(),
                )
            }
        };
        walls.sensitivity = wall_since(t);
        observe::note_sensitivity(
            &self.obs,
            tb,
            &self.catalog,
            &table_scores,
            &mat_log,
            &cfg,
            self.clock,
        );
        tb.end(walls.sensitivity.as_nanos() as u64);

        // -- statistics collection (sampling) --
        tb.begin("collect");
        let t = now_nanos();
        let clock_fn: Option<&(dyn Fn() -> u64 + Sync)> = if tb.enabled() {
            Some(&jits_obs::clock::now_nanos)
        } else {
            None
        };
        let cache_before = self.samplecache.counters();
        let (sources, draw_meta) = resolve_sample_sources(
            &mut self.samplecache,
            block,
            &sample_quns,
            &self.tables,
            &cfg,
        );
        let (mut collected, timings, drawn) = collect_for_tables_sourced(
            block,
            &sample_quns,
            &candidates,
            &self.tables,
            cfg.sample,
            &mut self.rng,
            cfg.collect_threads,
            clock_fn,
            &sources,
            cfg.collect_budget,
            &self.fault,
            self.clock,
        );
        for d in &collected.degraded {
            let table = observe::table_name(&self.catalog, d.table);
            observe::note_degradation(
                &self.obs,
                tb,
                metrics,
                self.clock,
                table,
                d.fault_point,
                d.fallback,
            );
        }
        // samplecache.commit fault: a failed (post-retry) commit skips the
        // memoization — the draw is still used for this statement's stats,
        // only its reuse by later statements is lost.
        let (commit_ok, _) = self.fault.retry(FP_SAMPLECACHE_COMMIT, self.clock);
        if commit_ok {
            commit_drawn_samples(&mut self.samplecache, &cfg, &drawn, &draw_meta);
        } else {
            observe::note_degradation(
                &self.obs,
                tb,
                metrics,
                self.clock,
                String::new(),
                FP_SAMPLECACHE_COMMIT,
                "skip_commit",
            );
        }
        collected.work += extra_work;
        walls.collect = wall_since(t);
        observe::note_collect(&self.obs, tb, block, &self.catalog, &timings);
        observe::note_samplecache(&self.obs, tb, cache_before, self.samplecache.counters());
        tb.end(walls.collect.as_nanos() as u64);

        for &qun in &sample_quns {
            let tid = block.quns[qun].table;
            self.tables[tid.index()].reset_udi();
        }

        // -- archive materialization / max-entropy refinement --
        tb.begin("refine");
        let t = now_nanos();
        // Quarantined groups rebuild on the next collection that covers
        // them, regardless of the sensitivity verdict (the verdict may be
        // "skip" precisely because the group *was* archived).
        let rebuilds: Vec<&jits::CandidateGroup> = candidates
            .iter()
            .filter(|c| {
                self.archive.pending_rebuild(&c.colgroup)
                    && !materialize
                        .iter()
                        .any(|m| m.qun == c.qun && m.colgroup == c.colgroup)
            })
            .collect();
        for (i, cand) in materialize.iter().chain(rebuilds).enumerate() {
            self.materialize_group_traced(block, cand, &collected, tb);
            // archive.write fault: a torn write lands a histogram whose
            // stored checksum no longer matches — detected (and
            // quarantined) by the verification pass below.
            let (write_ok, _) = self
                .fault
                .retry(FP_ARCHIVE_WRITE, fault_key(self.clock, i as u64));
            if !write_ok {
                self.archive.corrupt_checksum(&cand.colgroup);
            }
        }
        // Verify every group the optimizer may read for this block before
        // planning: a failed read or checksum mismatch quarantines the
        // bucket set, so the estimate falls back to default selectivities
        // instead of serving poisoned statistics.
        for (i, cand) in candidates.iter().enumerate() {
            if self.archive.histogram(&cand.colgroup).is_none() {
                continue;
            }
            let (read_ok, _) = self
                .fault
                .retry(FP_ARCHIVE_READ, fault_key(self.clock, i as u64));
            if !read_ok || !self.archive.validate(&cand.colgroup) {
                // flight-note the failing checksum pair *before* quarantine
                // drops it, so --dump-flight shows exactly which group and
                // which mismatch triggered the rebuild
                self.obs.flight.record(FlightEvent::Note {
                    clock: self.clock,
                    label: "quarantine".to_string(),
                    detail: format!(
                        "group {:?}: stored checksum {:?} vs computed {:?} ({}); rebuild scheduled",
                        cand.colgroup,
                        self.archive.stored_checksum(&cand.colgroup),
                        self.archive.computed_checksum(&cand.colgroup),
                        if read_ok { "mismatch" } else { "read fault" },
                    ),
                });
                self.archive.quarantine(&cand.colgroup);
                let table = observe::table_name(&self.catalog, block.quns[cand.qun].table);
                observe::note_degradation(
                    &self.obs,
                    tb,
                    metrics,
                    self.clock,
                    table,
                    FP_ARCHIVE_READ,
                    "default_selectivity",
                );
            }
        }
        walls.refine = wall_since(t);
        observe::note_archive_gauges(&self.obs, &self.archive);
        tb.end(walls.refine.as_nanos() as u64);

        (collected, sample_quns.len(), table_scores, walls)
    }

    /// Pushes one collected group into the archive (if it was actually
    /// collected and has a region form).
    fn materialize_group(
        &mut self,
        block: &QueryBlock,
        cand: &jits::CandidateGroup,
        collected: &CollectedStats,
    ) {
        self.materialize_group_traced(block, cand, collected, &mut TraceBuilder::off());
    }

    /// [`Database::materialize_group`] with trace/metric recording.
    fn materialize_group_traced(
        &mut self,
        block: &QueryBlock,
        cand: &jits::CandidateGroup,
        collected: &CollectedStats,
        tb: &mut TraceBuilder,
    ) {
        let outcome = materialize_group_into(
            block,
            cand,
            collected,
            self.clock,
            &mut self.archive,
            &mut self.predcache,
        );
        if !matches!(outcome, MaterializeOutcome::Skipped) {
            self.last_materialized += 1;
        }
        observe::note_materialize_outcome(&self.obs, tb, &cand.colgroup, &outcome);
    }

    /// Optimizes a block under the session's statistics setting.
    fn plan_for(&mut self, block: &QueryBlock, collected: &CollectedStats) -> Result<PhysicalPlan> {
        match &self.setting {
            StatsSetting::NoStatistics => {
                let provider = PhysicalMetadataProvider {
                    tables: &self.tables,
                };
                let est = CardinalityEstimator::new(&provider, self.defaults);
                optimize(block, &est, &self.cost, &self.catalog)
            }
            StatsSetting::CatalogOnly => {
                let provider = CatalogStatisticsProvider::new(&self.catalog);
                let est = CardinalityEstimator::new(&provider, self.defaults);
                optimize(block, &est, &self.cost, &self.catalog)
            }
            StatsSetting::ArchiveReadOnly | StatsSetting::Jits(_) => {
                let cfg = self.setting.jits_config().cloned().unwrap_or_default();
                let (plan, used, used_cache) = {
                    let provider = JitsStatisticsProvider::new(
                        collected,
                        &self.archive,
                        &self.catalog,
                        &self.tables,
                    )
                    .with_accuracy_gate(cfg.archive_accuracy_gate)
                    .with_predicate_cache(&self.predcache)
                    .with_superset_inference(cfg.infer_from_supersets);
                    let est = CardinalityEstimator::new(&provider, self.defaults);
                    let plan = optimize(block, &est, &self.cost, &self.catalog)?;
                    (
                        plan,
                        provider.take_used_archive_groups(),
                        provider.take_used_cache_entries(),
                    )
                };
                for g in used {
                    self.archive.touch(&g, self.clock);
                }
                for (t, fp) in used_cache {
                    self.predcache.touch(t, &fp, self.clock);
                }
                Ok(plan)
            }
        }
    }

    fn run_insert(&mut self, ins: BoundInsert, t0: u64) -> Result<QueryResult> {
        self.clock += 1;
        let compile_wall = wall_since(t0);
        let t1 = now_nanos();
        let t = &mut self.tables[ins.table.index()];
        let n = ins.rows.len();
        for row in ins.rows {
            t.insert(row)?;
        }
        Ok(QueryResult {
            rows: Vec::new(),
            metrics: QueryMetrics {
                compile_wall,
                exec_wall: wall_since(t1),
                exec_work: n as f64,
                result_rows: n,
                ..QueryMetrics::default()
            },
        })
    }

    fn run_update(&mut self, upd: BoundUpdate, t0: u64) -> Result<QueryResult> {
        self.clock += 1;
        let compile_wall = wall_since(t0);
        let t1 = now_nanos();
        let t = &mut self.tables[upd.table.index()];
        let matching: Vec<RowId> = t
            .scan()
            .filter(|&r| {
                upd.predicates
                    .iter()
                    .all(|p| p.matches(&t.value(r, p.column)))
            })
            .collect();
        let scanned = t.row_count();
        for &r in &matching {
            for (col, v) in &upd.sets {
                t.update(r, *col, v.clone())?;
            }
        }
        Ok(QueryResult {
            rows: Vec::new(),
            metrics: QueryMetrics {
                compile_wall,
                exec_wall: wall_since(t1),
                exec_work: scanned as f64 + matching.len() as f64,
                result_rows: matching.len(),
                ..QueryMetrics::default()
            },
        })
    }

    fn run_delete(&mut self, del: BoundDelete, t0: u64) -> Result<QueryResult> {
        self.clock += 1;
        let compile_wall = wall_since(t0);
        let t1 = now_nanos();
        let t = &mut self.tables[del.table.index()];
        let matching: Vec<RowId> = t
            .scan()
            .filter(|&r| {
                del.predicates
                    .iter()
                    .all(|p| p.matches(&t.value(r, p.column)))
            })
            .collect();
        let scanned = t.row_count();
        for &r in &matching {
            t.delete(r);
        }
        Ok(QueryResult {
            rows: Vec::new(),
            metrics: QueryMetrics {
                compile_wall,
                exec_wall: wall_since(t1),
                exec_work: scanned as f64 + matching.len() as f64,
                result_rows: matching.len(),
                ..QueryMetrics::default()
            },
        })
    }
}

/// Simulated work units one optimizer invocation costs — charged by the
/// ε-planning sensitivity baseline for each of its extra plan enumerations
/// (the lightweight heuristic makes none).
pub(crate) const OPTIMIZER_CALL_WORK: f64 = 2_000.0;

/// What [`materialize_group_into`] did with one collected group.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MaterializeOutcome {
    /// Nothing was materialized (group not collected, or no frame/total).
    Skipped,
    /// The measured selectivity went into the predicate cache.
    Cache,
    /// The observation refined (or created) an archive histogram.
    Histogram(RefineOutcome),
}

/// Pushes one collected group into the archive or the predicate cache.
/// Returns what happened. Shared by the single-owner [`Database`] path and
/// the locked [`crate::SharedDatabase`] path, which holds narrow write
/// guards on `archive`/`predcache` around the call.
pub(crate) fn materialize_group_into(
    block: &QueryBlock,
    cand: &jits::CandidateGroup,
    collected: &CollectedStats,
    clock: u64,
    archive: &mut QssArchive,
    predcache: &mut PredicateCache,
) -> MaterializeOutcome {
    let Some(stat) = collected.group(cand.qun, &cand.pred_indices) else {
        return MaterializeOutcome::Skipped;
    };
    let tid = block.quns[cand.qun].table;
    let Some(region) = &stat.region else {
        // no region form (e.g. a `<>` predicate): the auxiliary
        // predicate cache stores the measured selectivity instead
        // (paper §3.4 footnote 1)
        let fp = jits::fingerprint(block, &cand.pred_indices);
        predcache.insert(tid, fp, stat.selectivity, clock);
        return MaterializeOutcome::Cache;
    };
    // collected.frames is this statement's own draw (single epoch by
    // construction); the epoch comparison happens at SampleCache
    // commit/lookup, not at archive materialization
    // jits-lint: allow(epoch-safety)
    let Some(frame) = collected.frames.get(&cand.colgroup) else {
        return MaterializeOutcome::Skipped;
    };
    let Some(total) = collected.table_rows.get(&tid).copied() else {
        return MaterializeOutcome::Skipped;
    };
    let outcome = archive.apply_observation(
        cand.colgroup.clone(),
        frame,
        region,
        stat.selectivity * total,
        total,
        clock,
    );
    MaterializeOutcome::Histogram(outcome)
}

/// Phase A of the collection fast path: decide, per marked quantifier,
/// whether to serve a cached sample or draw fresh, and capture each table's
/// mutation epoch and cardinality *at resolve time* (the version a fresh
/// draw will be committed under). Decisions are made sequentially in
/// quantifier order, so they are independent of `collect_threads`. With the
/// cache disabled both maps come back empty — exactly the cold path.
///
/// Shared by the single-owner [`Database`] path and the locked
/// [`crate::SharedDatabase`] path, which holds the `samplecache` write
/// guard (rank 6) around the call.
pub(crate) fn resolve_sample_sources(
    cache: &mut jits_storage::SampleCache,
    block: &QueryBlock,
    sample_quns: &[usize],
    tables: &[Table],
    cfg: &JitsConfig,
) -> (BTreeMap<usize, SampleSource>, BTreeMap<TableId, (u64, u64)>) {
    let mut sources = BTreeMap::new();
    let mut draw_meta = BTreeMap::new();
    if !cfg.sample_cache {
        return (sources, draw_meta);
    }
    for &qun in sample_quns {
        let tid = block.quns[qun].table;
        let Some(table) = tables.get(tid.index()) else {
            continue;
        };
        let epoch = table.mutation_epoch();
        draw_meta.insert(tid, (epoch, table.row_count() as u64));
        let source = match cache.lookup(tid, cfg.sample, epoch, cfg.sample_cache_staleness) {
            CacheLookup::Hit {
                rows,
                probes,
                staleness,
                frames,
                bitsets,
            } => SampleSource::Served {
                rows,
                probes,
                staleness,
                frames,
                bitsets,
            },
            CacheLookup::Stale { staleness } => SampleSource::Draw {
                staleness: Some(staleness),
            },
            CacheLookup::Miss => SampleSource::Draw { staleness: None },
        };
        sources.insert(qun, source);
    }
    (sources, draw_meta)
}

/// Phase C of the collection fast path: memoize the fresh draws (with their
/// columnar gathers) under the epoch captured at resolve time, and merge
/// frame-only deposits — columns gathered on top of a served sample — into
/// the existing entry. When several quantifiers of a self-join drew from
/// the same table, the first quantifier's draw wins (lowest qun — `drawn`
/// arrives in quantifier order), keeping the committed entry deterministic.
/// Frame merges carry the resolve-time epoch, so a gather made over a
/// stale-but-served sample (newer cell values than the entry's version)
/// is rejected by the cache rather than contaminating the older sample.
pub(crate) fn commit_drawn_samples(
    cache: &mut jits_storage::SampleCache,
    cfg: &JitsConfig,
    drawn: &[jits::DrawnSample],
    draw_meta: &BTreeMap<TableId, (u64, u64)>,
) {
    if !cfg.sample_cache {
        return;
    }
    let mut committed = BTreeSet::new();
    for d in drawn {
        let Some(&(epoch, rows_at_draw)) = draw_meta.get(&d.table) else {
            continue;
        };
        if !d.fresh {
            cache.merge_artifacts(d.table, cfg.sample, epoch, &d.frames, &d.bitsets);
            continue;
        }
        if !committed.insert(d.table) {
            continue;
        }
        cache.store(
            d.table,
            CachedSample {
                spec: cfg.sample,
                epoch,
                rows_at_draw,
                rows: Arc::clone(&d.rows),
                probes: d.probes,
                hits: 0,
                frames: d.frames.iter().cloned().collect(),
                bitsets: d.bitsets.iter().cloned().collect(),
            },
        );
    }
}

/// The "no statistics" provider a real DBMS actually has: nothing from any
/// statistics subsystem, but table cardinalities still come from physical
/// storage metadata (DB2 derives a default CARD from the table's page
/// count even before any RUNSTATS). Selectivities all fall to textbook
/// defaults.
pub(crate) struct PhysicalMetadataProvider<'a> {
    pub(crate) tables: &'a [Table],
}

impl StatisticsProvider for PhysicalMetadataProvider<'_> {
    fn table_cardinality(&self, table: TableId) -> Option<f64> {
        self.tables.get(table.index()).map(|t| t.row_count() as f64)
    }

    fn group_selectivity(
        &self,
        _block: &QueryBlock,
        _qun: usize,
        _pred_indices: &[usize],
    ) -> Option<SelEstimate> {
        None
    }

    fn distinct(&self, table: TableId, column: jits_common::ColumnId) -> Option<f64> {
        // index metadata (key cardinality) is also physical, not statistical
        let idx = self.tables.get(table.index())?.index(column)?;
        Some(idx.distinct_keys() as f64)
    }
}

// Field added after the struct definition for clarity of the compile phase:
// the count of groups materialized by the last jits_compile_phase call.
// (Declared here to keep the struct body focused on long-lived state.)
impl Database {
    /// Columns of a table by name (test/diagnostic convenience).
    pub fn column_id(&self, table: &str, column: &str) -> Option<(TableId, ColumnId)> {
        let tid = self.catalog.resolve(table)?;
        let col = self.catalog.table(tid)?.schema.column_id(column)?;
        Some((tid, col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::DataType;

    fn demo_db() -> Database {
        let mut db = Database::new(42);
        db.create_table(
            "car",
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("ownerid", DataType::Int),
                ("make", DataType::Str),
                ("model", DataType::Str),
                ("year", DataType::Int),
            ]),
        )
        .unwrap();
        db.create_table(
            "owner",
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("name", DataType::Str),
                ("salary", DataType::Int),
            ]),
        )
        .unwrap();
        db.set_primary_key("owner", "id").unwrap();
        db.create_index("car", "ownerid").unwrap();

        let mut rows = Vec::new();
        for i in 0..2000i64 {
            let (make, model) = match i % 10 {
                0..=2 => ("Toyota", "Camry"),
                3..=5 => ("Toyota", "Corolla"),
                6..=7 => ("Honda", "Civic"),
                _ => ("Audi", "A4"),
            };
            rows.push(vec![
                Value::Int(i),
                Value::Int(i % 200),
                Value::str(make),
                Value::str(model),
                Value::Int(1990 + i % 17),
            ]);
        }
        db.load_rows("car", rows).unwrap();
        let rows = (0..200i64)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("owner{i}")),
                    Value::Int(i * 500),
                ]
            })
            .collect();
        db.load_rows("owner", rows).unwrap();
        db
    }

    #[test]
    fn end_to_end_select_with_general_stats() {
        let mut db = demo_db();
        db.runstats_all().unwrap();
        db.set_setting(StatsSetting::CatalogOnly);
        let r = db
            .execute("SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'")
            .unwrap();
        assert_eq!(r.rows.len(), 600);
        assert!(r.metrics.exec_work > 0.0);
        assert_eq!(r.metrics.compile_work, 0.0, "no JITS sampling");
        assert_eq!(r.metrics.sampled_tables, 0);
    }

    #[test]
    fn jits_collects_and_improves_estimates() {
        let mut db = demo_db();
        db.set_setting(StatsSetting::Jits(JitsConfig::default()));
        // first query: no history -> s1=1, sampling happens
        let r = db
            .execute("SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'")
            .unwrap();
        assert_eq!(r.rows.len(), 600);
        assert_eq!(r.metrics.sampled_tables, 1);
        assert!(r.metrics.compile_work > 0.0);
        // with fresh exact stats, the estimate must be near-perfect
        let plan = r.metrics.plan.as_ref().unwrap();
        assert!(
            (plan.est_rows - 600.0).abs() < 100.0,
            "estimated {} for actual 600",
            plan.est_rows
        );
        // history recorded
        assert!(!db.history().is_empty());
    }

    #[test]
    fn jits_skips_collection_once_history_is_accurate() {
        let mut db = demo_db();
        db.set_setting(StatsSetting::Jits(JitsConfig::default()));
        let sql = "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'";
        // query 1: no history -> sample, but nothing has proven useful yet
        let r1 = db.execute(sql).unwrap();
        assert_eq!(r1.metrics.sampled_tables, 1);
        assert_eq!(r1.metrics.materialized_groups, 0);
        // query 2: the fresh QSS statistic proved accurate (errorFactor 1)
        // -> Algorithm 4 now materializes it; the table is still sampled
        // because the statistic was not yet stored anywhere
        let r2 = db.execute(sql).unwrap();
        assert_eq!(r2.metrics.sampled_tables, 1);
        assert!(
            r2.metrics.materialized_groups > 0,
            "proven-useful groups must be materialized"
        );
        // query 3: the archive histogram has boundaries exactly at the
        // query constants -> MaxAcc = 1, s1 = 0, no UDI -> skip sampling
        let r3 = db.execute(sql).unwrap();
        assert_eq!(
            r3.metrics.sampled_tables, 0,
            "scores: {:?}",
            r3.metrics.table_scores
        );
        assert_eq!(r3.rows.len(), 600);
    }

    #[test]
    fn dml_statements_and_udi() {
        let mut db = demo_db();
        let (tid, _) = db.column_id("car", "make").unwrap();
        let before = db.table(tid).unwrap().row_count();
        let r = db
            .execute("INSERT INTO car VALUES (9999, 1, 'BMW', 'M3', 2006)")
            .unwrap();
        assert_eq!(r.metrics.result_rows, 1);
        assert_eq!(db.table(tid).unwrap().row_count(), before + 1);

        let r = db
            .execute("UPDATE car SET year = 2007 WHERE make = 'BMW'")
            .unwrap();
        assert_eq!(r.metrics.result_rows, 1);

        let r = db.execute("DELETE FROM car WHERE make = 'BMW'").unwrap();
        assert_eq!(r.metrics.result_rows, 1);
        assert_eq!(db.table(tid).unwrap().row_count(), before);
        assert!(db.table(tid).unwrap().udi().total() >= 3);
    }

    #[test]
    fn udi_churn_triggers_recollection() {
        let mut db = demo_db();
        db.set_setting(StatsSetting::Jits(JitsConfig::default()));
        let sql = "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'";
        db.execute(sql).unwrap();
        db.execute(sql).unwrap();
        let r = db.execute(sql).unwrap();
        assert_eq!(r.metrics.sampled_tables, 0);
        // with a perfectly accurate history (s1 = 0) and the paper's
        // average aggregate, only full churn pushes the score to s_max:
        // s2 = 1 -> score = 0.5 >= 0.5
        db.execute("UPDATE car SET year = 1980").unwrap();
        let r = db.execute(sql).unwrap();
        assert_eq!(
            r.metrics.sampled_tables, 1,
            "churn must trigger recollection: {:?}",
            r.metrics.table_scores
        );
    }

    #[test]
    fn explain_renders_plan() {
        let mut db = demo_db();
        db.runstats_all().unwrap();
        db.set_setting(StatsSetting::CatalogOnly);
        let plan = db
            .explain("SELECT * FROM car c, owner o WHERE c.ownerid = o.id AND salary > 50000")
            .unwrap();
        assert!(plan.contains("Join"), "{plan}");
        assert!(plan.contains("Scan"), "{plan}");
    }

    #[test]
    fn workload_stats_setting_uses_prepopulated_archive() {
        let mut db = demo_db();
        db.runstats_all().unwrap();
        let sql = "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'";
        db.precollect_query_stats(sql).unwrap();
        assert!(!db.archive().is_empty());
        db.set_setting(StatsSetting::ArchiveReadOnly);
        let r = db.execute(sql).unwrap();
        assert_eq!(r.metrics.sampled_tables, 0, "read-only never samples");
        let plan = r.metrics.plan.unwrap();
        // archive answers the correlated group: estimate near truth
        assert!(
            (plan.est_rows - 600.0).abs() < 120.0,
            "estimated {}",
            plan.est_rows
        );
    }

    #[test]
    fn statistics_migration_flows_to_catalog() {
        let mut db = demo_db();
        db.set_setting(StatsSetting::Jits(JitsConfig {
            s_max: 0.0,
            ..JitsConfig::default()
        }));
        db.execute("SELECT id FROM car WHERE year > 2000").unwrap();
        assert!(!db.archive().is_empty());
        let migrated = db.migrate_statistics();
        assert!(migrated >= 1);
        let (tid, col) = db.column_id("car", "year").unwrap();
        assert!(db.catalog().column_stats(tid, col).is_some());
    }

    #[test]
    fn explain_jits_matches_next_execution_bit_for_bit() {
        let mut db = demo_db();
        db.set_setting(StatsSetting::Jits(JitsConfig::default()));
        let sql = "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'";
        // across the full lifecycle (first sample, materialize, then skip)
        // the preview must equal what execute() then actually decides
        for _ in 0..4 {
            let ex = db.explain_jits(sql).unwrap();
            assert!(ex.enabled);
            let r = db.execute(sql).unwrap();
            assert_eq!(ex.table_scores, r.metrics.table_scores);
            assert_eq!(ex.sample_tables.len(), r.metrics.sampled_tables);
        }
        let rendered = db.explain_jits(sql).unwrap().render();
        assert!(rendered.contains("s1="), "{rendered}");
        assert!(rendered.contains("s_max"), "{rendered}");
        // non-JITS settings report a disabled trace
        db.set_setting(StatsSetting::CatalogOnly);
        assert!(!db.explain_jits(sql).unwrap().enabled);
    }

    #[test]
    fn tracer_spans_system_views_and_exports() {
        let mut db = demo_db();
        db.set_setting(StatsSetting::Jits(JitsConfig::default()));
        db.obs().tracer.set_enabled(true);
        let sql = "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'";
        db.execute(sql).unwrap();
        let trace = db.obs().tracer.latest().unwrap();
        let text = trace.render();
        for span in ["analyze", "sensitivity", "collect", "optimize", "execute"] {
            assert!(text.contains(span), "missing span {span} in:\n{text}");
        }
        assert!(text.contains("car"), "{text}");

        // system views answer without executing user plans
        let scores = db.execute("SELECT * FROM jits_table_scores").unwrap();
        assert!(!scores.rows.is_empty());
        let log = db.execute("SELECT * FROM jits_query_log").unwrap();
        assert_eq!(log.rows.len(), 1, "views must not log themselves");
        db.execute(sql).unwrap();
        db.execute(sql).unwrap(); // second run materializes proven groups
        let arch = db.execute("SELECT * FROM jits_archive_stats").unwrap();
        assert!(!arch.rows.is_empty());

        // both exporters produce grammatically valid output
        jits_obs::export::validate_json(&db.metrics_json(true)).unwrap();
        jits_obs::export::validate_prometheus(&db.metrics_prometheus()).unwrap();
    }

    #[test]
    fn errors_propagate() {
        let mut db = demo_db();
        assert!(db.execute("SELECT * FROM nosuch").is_err());
        assert!(db.execute("garbage").is_err());
        assert!(db
            .create_table("car", Schema::from_pairs(&[("x", DataType::Int)]))
            .is_err());
    }
}
