//! Per-query timing and diagnostics, plus engine-wide concurrency counters.

use jits::TableScore;
use jits_optimizer::PlanSummary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Wall-clock elapsed since a [`jits_obs::clock::now_nanos`] reading.
///
/// Every engine wall measurement goes through this helper (and thus through
/// `obs::clock`), so the determinism lint can pin OS-clock reads to a
/// single file.
pub(crate) fn wall_since(start_nanos: u64) -> Duration {
    Duration::from_nanos(jits_obs::clock::now_nanos().saturating_sub(start_nanos))
}

/// The rate converting cost-model work units into simulated seconds.
///
/// Calibrated so the single-query experiment at default scale lands in the
/// same order of magnitude as the paper's DB2 numbers (seconds); all
/// experiment *shapes* are rate-invariant.
pub const WORK_UNITS_PER_SIM_SECOND: f64 = 250_000.0;

/// Wall-clock durations of the JITS compile-phase stages of one statement.
///
/// The same measurements decorate the statement's trace spans — flat
/// metrics and spans are populated from a single reading, so they cannot
/// disagree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageWalls {
    /// Query analysis (Algorithm 1 group enumeration).
    pub analyze: Duration,
    /// Sensitivity analysis (Algorithms 2–4).
    pub sensitivity: Duration,
    /// Sampling / statistics collection.
    pub collect: Duration,
    /// Archive materialization and max-entropy refinement.
    pub refine: Duration,
}

/// Everything measured about one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Wall-clock compilation time (parse + bind + JITS + optimize).
    pub compile_wall: Duration,
    /// Wall-clock execution time.
    pub exec_wall: Duration,
    /// Wall-clock time of query analysis (Algorithm 1).
    pub analyze_wall: Duration,
    /// Wall-clock time of sensitivity analysis (Algorithms 2–4).
    pub sensitivity_wall: Duration,
    /// Wall-clock time of sampling / statistics collection.
    pub collect_wall: Duration,
    /// Wall-clock time of archive materialization and refinement.
    pub refine_wall: Duration,
    /// Compile-side work in cost-model units (JITS sampling).
    pub compile_work: f64,
    /// Execution work in cost-model units.
    pub exec_work: f64,
    /// Chosen plan (empty for DML).
    pub plan: Option<PlanSummary>,
    /// Result rows returned (or rows affected, for DML).
    pub result_rows: usize,
    /// Tables JITS sampled for this query.
    pub sampled_tables: usize,
    /// Predicate groups materialized into the QSS archive.
    pub materialized_groups: usize,
    /// Sensitivity-analysis diagnostics.
    pub table_scores: Vec<TableScore>,
    /// Worker threads the JITS collection pass of this statement ran on
    /// (0 when nothing was collected, 1 when sequential).
    pub collect_threads: usize,
    /// Time this statement spent blocked acquiring engine locks (always
    /// zero on the single-session [`crate::Database`] path).
    pub lock_wait: Duration,
    /// True when the statement was evaluated on the vectorized batch
    /// executor (the default); false on the row-at-a-time A/B path. Always
    /// false for DML, which bypasses plan execution.
    pub batch_executor: bool,
    /// True when any part of the JITS pipeline degraded for this statement
    /// (budget abort, fault-isolated table, quarantined archive group, …).
    /// The statement still returns a plan — degradation trades statistics
    /// quality, never availability.
    pub degraded: bool,
    /// One `"<fault-point> -> <fallback>"` entry per degradation, in the
    /// deterministic order they were recorded.
    pub degraded_reasons: Vec<String>,
    /// Per-operator profile of the executed plan (None for DML, system
    /// views, or when profiling is disabled). Captured at execution time so
    /// `explain_analyze` never races other sessions for the flight ring.
    pub profile: Option<jits_obs::QueryProfile>,
}

impl QueryMetrics {
    /// Total wall-clock time.
    pub fn total_wall(&self) -> Duration {
        self.compile_wall + self.exec_wall
    }

    /// Copies the per-stage compile-phase durations into the flat fields
    /// (the single write point keeping flat fields and spans in agreement).
    pub fn set_stage_walls(&mut self, walls: StageWalls) {
        self.analyze_wall = walls.analyze;
        self.sensitivity_wall = walls.sensitivity;
        self.collect_wall = walls.collect;
        self.refine_wall = walls.refine;
    }

    /// Simulated compilation seconds (work-unit based, machine-independent).
    pub fn compile_sim(&self) -> f64 {
        self.compile_work / WORK_UNITS_PER_SIM_SECOND
    }

    /// Simulated execution seconds.
    pub fn exec_sim(&self) -> f64 {
        self.exec_work / WORK_UNITS_PER_SIM_SECOND
    }

    /// Simulated total seconds.
    pub fn total_sim(&self) -> f64 {
        self.compile_sim() + self.exec_sim()
    }
}

/// Engine-wide concurrency counters, shared by every session of a
/// [`crate::SharedDatabase`]. All counters are monotone atomics so readers
/// never need a lock to observe them.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Total nanoseconds sessions spent blocked acquiring engine locks
    /// (only acquisitions that actually had to wait are charged).
    pub lock_wait_nanos: AtomicU64,
    /// Lock acquisitions that had to block.
    pub contended_acquisitions: AtomicU64,
    /// Statistics-collection passes that fanned out over >1 worker thread.
    pub parallel_collections: AtomicU64,
    /// Tables sampled by collection passes, across all sessions.
    pub tables_sampled: AtomicU64,
    /// Statements executed, across all sessions.
    pub statements: AtomicU64,
}

impl EngineCounters {
    /// Charges one blocked lock acquisition of `nanos` wall-clock.
    pub fn charge_lock_wait(&self, nanos: u64) {
        self.lock_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.contended_acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    /// A coherent point-in-time copy for reports and assertions.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            lock_wait: Duration::from_nanos(self.lock_wait_nanos.load(Ordering::Relaxed)),
            contended_acquisitions: self.contended_acquisitions.load(Ordering::Relaxed),
            parallel_collections: self.parallel_collections.load(Ordering::Relaxed),
            tables_sampled: self.tables_sampled.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`EngineCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Total time spent blocked on engine locks.
    pub lock_wait: Duration,
    /// Lock acquisitions that had to block.
    pub contended_acquisitions: u64,
    /// Collection passes that used >1 worker.
    pub parallel_collections: u64,
    /// Tables sampled across all sessions.
    pub tables_sampled: u64,
    /// Statements executed across all sessions.
    pub statements: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = EngineCounters::default();
        c.charge_lock_wait(1_500);
        c.charge_lock_wait(500);
        c.statements.fetch_add(3, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.lock_wait, Duration::from_nanos(2_000));
        assert_eq!(s.contended_acquisitions, 2);
        assert_eq!(s.statements, 3);
        assert_eq!(s.parallel_collections, 0);
    }

    #[test]
    fn derived_times() {
        let m = QueryMetrics {
            compile_wall: Duration::from_millis(10),
            exec_wall: Duration::from_millis(30),
            compile_work: 250_000.0,
            exec_work: 500_000.0,
            ..QueryMetrics::default()
        };
        assert_eq!(m.total_wall(), Duration::from_millis(40));
        assert!((m.compile_sim() - 1.0).abs() < 1e-12);
        assert!((m.exec_sim() - 2.0).abs() < 1e-12);
        assert!((m.total_sim() - 3.0).abs() < 1e-12);
    }
}
