//! Per-query timing and diagnostics.

use jits::TableScore;
use jits_optimizer::PlanSummary;
use std::time::Duration;

/// The rate converting cost-model work units into simulated seconds.
///
/// Calibrated so the single-query experiment at default scale lands in the
/// same order of magnitude as the paper's DB2 numbers (seconds); all
/// experiment *shapes* are rate-invariant.
pub const WORK_UNITS_PER_SIM_SECOND: f64 = 250_000.0;

/// Everything measured about one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Wall-clock compilation time (parse + bind + JITS + optimize).
    pub compile_wall: Duration,
    /// Wall-clock execution time.
    pub exec_wall: Duration,
    /// Compile-side work in cost-model units (JITS sampling).
    pub compile_work: f64,
    /// Execution work in cost-model units.
    pub exec_work: f64,
    /// Chosen plan (empty for DML).
    pub plan: Option<PlanSummary>,
    /// Result rows returned (or rows affected, for DML).
    pub result_rows: usize,
    /// Tables JITS sampled for this query.
    pub sampled_tables: usize,
    /// Predicate groups materialized into the QSS archive.
    pub materialized_groups: usize,
    /// Sensitivity-analysis diagnostics.
    pub table_scores: Vec<TableScore>,
}

impl QueryMetrics {
    /// Total wall-clock time.
    pub fn total_wall(&self) -> Duration {
        self.compile_wall + self.exec_wall
    }

    /// Simulated compilation seconds (work-unit based, machine-independent).
    pub fn compile_sim(&self) -> f64 {
        self.compile_work / WORK_UNITS_PER_SIM_SECOND
    }

    /// Simulated execution seconds.
    pub fn exec_sim(&self) -> f64 {
        self.exec_work / WORK_UNITS_PER_SIM_SECOND
    }

    /// Simulated total seconds.
    pub fn total_sim(&self) -> f64 {
        self.compile_sim() + self.exec_sim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_times() {
        let m = QueryMetrics {
            compile_wall: Duration::from_millis(10),
            exec_wall: Duration::from_millis(30),
            compile_work: 250_000.0,
            exec_work: 500_000.0,
            ..QueryMetrics::default()
        };
        assert_eq!(m.total_wall(), Duration::from_millis(40));
        assert!((m.compile_sim() - 1.0).abs() < 1e-12);
        assert!((m.exec_sim() - 2.0).abs() < 1e-12);
        assert!((m.total_sim() - 3.0).abs() < 1e-12);
    }
}
