//! The database engine facade.
//!
//! [`Database`] owns the storage tables, the catalog, the QSS archive and
//! the StatHistory, and wires the full query path:
//!
//! ```text
//! SQL → parse → bind → [JITS: analyze → sensitivity → sample → archive]
//!     → optimize (provider = defaults | catalog | JITS layers)
//!     → execute (work counters + cardinality observations)
//!     → feedback (StatHistory)
//! ```
//!
//! Each query returns [`QueryMetrics`] carrying wall-clock *and* simulated
//! (cost-unit) compile/execution times — the quantities every experiment in
//! the paper's evaluation section reports.
//!
//! Observability (see `jits-obs` and DESIGN.md §8): every statement can be
//! traced span-by-span, counters/histograms accumulate in a metrics
//! registry, [`Database::explain_jits`] previews the JITS decisions
//! without executing, and virtual system views (`jits_archive_stats`,
//! `jits_table_scores`, `jits_query_log`, `jits_degradation`) expose the
//! collected state through plain SQL.
//!
//! Fault injection and graceful degradation (DESIGN.md §10): install a
//! [`jits_common::FaultPlane`] with [`Database::set_fault_plane`] to
//! deterministically fail named pipeline points; every failure degrades to
//! a weaker statistics source — the statement always returns a plan.
//!
//! Durability (DESIGN.md §14): [`Database::open`] attaches a write-ahead
//! log and restores the newest checkpoint + record tail, recovering tables
//! *and* the statistics plane — archive, history, caches, clock, RNG —
//! bit-identically, so a restarted engine answers its first query from
//! warm statistics instead of re-degrading to cold defaults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod explain;
pub mod metrics;
mod observe;
mod persist;
mod profile;
pub mod session;
pub mod settings;
pub mod views;

pub use database::{Database, QueryResult, DEFAULT_CHECKPOINT_EVERY};
pub use persist::RecoveryReport;
pub use explain::{JitsExplain, MaterializeExplain};
pub use metrics::{CountersSnapshot, EngineCounters, QueryMetrics, StageWalls};
pub use session::{Session, SharedDatabase};
pub use settings::StatsSetting;
pub use views::{
    VIEW_ARCHIVE_STATS, VIEW_DEGRADATION, VIEW_FLIGHT, VIEW_PROFILE, VIEW_QUERY_LOG,
    VIEW_TABLE_SCORES,
};
