//! The database engine facade.
//!
//! [`Database`] owns the storage tables, the catalog, the QSS archive and
//! the StatHistory, and wires the full query path:
//!
//! ```text
//! SQL → parse → bind → [JITS: analyze → sensitivity → sample → archive]
//!     → optimize (provider = defaults | catalog | JITS layers)
//!     → execute (work counters + cardinality observations)
//!     → feedback (StatHistory)
//! ```
//!
//! Each query returns [`QueryMetrics`] carrying wall-clock *and* simulated
//! (cost-unit) compile/execution times — the quantities every experiment in
//! the paper's evaluation section reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod metrics;
pub mod session;
pub mod settings;

pub use database::{Database, QueryResult};
pub use metrics::{CountersSnapshot, EngineCounters, QueryMetrics};
pub use session::{Session, SharedDatabase};
pub use settings::StatsSetting;
