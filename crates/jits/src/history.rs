//! StatHistory — the statistics-collection history of paper §3.3.1.
//!
//! Each entry is `(T, colgrp, statlist, count, errorFactor)`: the optimizer
//! estimated the selectivity of column group `colgrp` on table `T` using the
//! statistics in `statlist`, `count` times, with `errorFactor` = estimated /
//! actual selectivity (supplied by the LEO-style feedback loop).
//!
//! Table 1 of the paper, as this module stores it:
//!
//! ```
//! use jits::history::StatHistory;
//! use jits_common::{ColGroup, ColumnId, TableId};
//!
//! let t1 = TableId(1);
//! let g = |cols: &[u32]| ColGroup::new(t1, cols.iter().map(|c| ColumnId(*c)).collect());
//! let abc = g(&[0, 1, 2]);
//!
//! let mut h = StatHistory::default();
//! // estimated (a,b,c) from {(a,b), (c)} with errorFactor 0.8
//! h.record(t1, abc.clone(), vec![g(&[0, 1]), g(&[2])], 0.8, 8);
//! // ... and from {(a), (b,c)} with errorFactor 0.6
//! h.record(t1, abc.clone(), vec![g(&[0]), g(&[1, 2])], 0.6, 8);
//!
//! let entries = h.entries_for(t1, &abc);
//! assert_eq!(entries.len(), 2);
//! assert!(h.entries_using(&g(&[0, 1])).count() == 1);
//! ```

use jits_common::{ColGroup, TableId};
use std::collections::BTreeMap;

/// One StatHistory row (sans the key fields, which index the map).
#[derive(Debug, Clone, PartialEq)]
pub struct HistEntry {
    /// The statistics used to estimate the column group's selectivity
    /// (canonically sorted).
    pub statlist: Vec<ColGroup>,
    /// How many times this statlist estimated this group.
    pub count: u64,
    /// Estimated / actual selectivity (EWMA over observations, clamped away
    /// from 0 and infinity).
    pub error_factor: f64,
}

impl HistEntry {
    /// Symmetric accuracy derived from the error factor: `min(ef, 1/ef)`,
    /// in `(0, 1]`. The paper treats errorFactor as an accuracy directly
    /// (its example has ef < 1); the symmetric form extends that to
    /// overestimates.
    pub fn accuracy(&self) -> f64 {
        if self.error_factor <= 0.0 {
            return 0.0;
        }
        self.error_factor.min(1.0 / self.error_factor)
    }
}

/// The statistics-collection history.
///
/// Keyed by `BTreeMap`: [`StatHistory::entries_using`] iterates the whole
/// map and its results feed sensitivity scores, so the visit order must be
/// deterministic, never hash order.
#[derive(Debug, Default, Clone)]
pub struct StatHistory {
    entries: BTreeMap<(TableId, ColGroup), Vec<HistEntry>>,
}

/// Error factors are clamped into this range so EWMAs stay finite.
const EF_MIN: f64 = 1e-4;
const EF_MAX: f64 = 1e4;

impl StatHistory {
    /// An empty history.
    pub fn new() -> Self {
        StatHistory::default()
    }

    /// Records an observation: `colgrp` on `table` was estimated using
    /// `statlist` with the given error factor. Observations with an existing
    /// (table, colgrp, statlist) entry bump its count and fold the error
    /// factor in with an EWMA (weight 0.5 on the new observation); new
    /// statlists insert a fresh entry, evicting the least-used entry when
    /// the per-key cap is exceeded.
    pub fn record(
        &mut self,
        table: TableId,
        colgrp: ColGroup,
        mut statlist: Vec<ColGroup>,
        error_factor: f64,
        per_key_cap: usize,
    ) {
        statlist.sort();
        statlist.dedup();
        let ef = error_factor.clamp(EF_MIN, EF_MAX);
        let entries = self.entries.entry((table, colgrp)).or_default();
        if let Some(e) = entries.iter_mut().find(|e| e.statlist == statlist) {
            e.count += 1;
            e.error_factor = 0.5 * e.error_factor + 0.5 * ef;
            return;
        }
        entries.push(HistEntry {
            statlist,
            count: 1,
            error_factor: ef,
        });
        if entries.len() > per_key_cap.max(1) {
            // evict the least-used (ties: worst accuracy) entry
            let victim = entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.count
                        .cmp(&b.count)
                        .then(a.accuracy().total_cmp(&b.accuracy()))
                })
                .map(|(i, _)| i)
                .expect("entries is non-empty");
            entries.swap_remove(victim);
        }
    }

    /// Entries describing estimates *of* this column group (Algorithm 3's
    /// `H ← {h | h.T = t, h.colgrp = g}`).
    pub fn entries_for(&self, table: TableId, colgrp: &ColGroup) -> &[HistEntry] {
        self.entries
            .get(&(table, colgrp.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Entries whose statlist *uses* the given statistic (Algorithm 4's
    /// `H ← {h | g ∈ h.statlist}`).
    pub fn entries_using<'a>(
        &'a self,
        stat: &'a ColGroup,
    ) -> impl Iterator<Item = &'a HistEntry> + 'a {
        self.entries
            .values()
            .flatten()
            .filter(move |e| e.statlist.contains(stat))
    }

    /// Total number of entries across all keys.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all history (used between experiment settings).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Raw state dump for checkpointing: every `(table, colgrp)` key with
    /// its entry vector in stored order. Entry order matters — the
    /// per-key-cap eviction `swap_remove`s, so order is history the
    /// sensitivity scores iterate over.
    pub fn snapshot(&self) -> Vec<((TableId, ColGroup), Vec<HistEntry>)> {
        self.entries
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Rebuilds a history from a [`StatHistory::snapshot`], field for
    /// field.
    pub fn from_snapshot(s: Vec<((TableId, ColGroup), Vec<HistEntry>)>) -> StatHistory {
        StatHistory {
            entries: s.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::ColumnId;

    fn g(cols: &[u32]) -> ColGroup {
        ColGroup::new(TableId(1), cols.iter().map(|c| ColumnId(*c)).collect())
    }

    #[test]
    fn record_and_query() {
        let mut h = StatHistory::new();
        h.record(TableId(1), g(&[0, 1]), vec![g(&[0]), g(&[1])], 0.5, 8);
        let entries = h.entries_for(TableId(1), &g(&[0, 1]));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 1);
        assert_eq!(entries[0].error_factor, 0.5);
        assert!(h.entries_for(TableId(2), &g(&[0, 1])).is_empty());
    }

    #[test]
    fn same_statlist_merges_with_ewma() {
        let mut h = StatHistory::new();
        h.record(TableId(1), g(&[0, 1]), vec![g(&[0]), g(&[1])], 0.4, 8);
        // statlist order must not matter
        h.record(TableId(1), g(&[0, 1]), vec![g(&[1]), g(&[0])], 0.8, 8);
        let entries = h.entries_for(TableId(1), &g(&[0, 1]));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 2);
        assert!((entries[0].error_factor - 0.6).abs() < 1e-12);
    }

    #[test]
    fn entries_using_statistic() {
        let mut h = StatHistory::new();
        h.record(TableId(1), g(&[0, 1, 2]), vec![g(&[0, 1]), g(&[2])], 0.8, 8);
        h.record(TableId(1), g(&[0, 1, 3]), vec![g(&[0, 1]), g(&[3])], 0.9, 8);
        h.record(TableId(1), g(&[0, 1, 2]), vec![g(&[0]), g(&[1, 2])], 0.6, 8);
        assert_eq!(h.entries_using(&g(&[0, 1])).count(), 2);
        assert_eq!(h.entries_using(&g(&[1, 2])).count(), 1);
        assert_eq!(h.entries_using(&g(&[9])).count(), 0);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn accuracy_is_symmetric() {
        let e = HistEntry {
            statlist: vec![],
            count: 1,
            error_factor: 0.4,
        };
        assert!((e.accuracy() - 0.4).abs() < 1e-12);
        let e = HistEntry {
            statlist: vec![],
            count: 1,
            error_factor: 2.5,
        };
        assert!((e.accuracy() - 0.4).abs() < 1e-12);
        let e = HistEntry {
            statlist: vec![],
            count: 1,
            error_factor: 1.0,
        };
        assert_eq!(e.accuracy(), 1.0);
    }

    #[test]
    fn per_key_cap_evicts_least_used() {
        let mut h = StatHistory::new();
        for i in 0..4u32 {
            h.record(TableId(1), g(&[0, 1]), vec![g(&[i])], 0.9, 3);
        }
        // bump one entry so it is protected
        h.record(TableId(1), g(&[0, 1]), vec![g(&[3])], 0.9, 3);
        assert_eq!(h.entries_for(TableId(1), &g(&[0, 1])).len(), 3);
    }

    #[test]
    fn extreme_error_factors_clamped() {
        let mut h = StatHistory::new();
        h.record(TableId(1), g(&[0]), vec![g(&[0])], f64::INFINITY, 8);
        let e = &h.entries_for(TableId(1), &g(&[0]))[0];
        assert!(e.error_factor.is_finite());
        h.record(TableId(1), g(&[1]), vec![g(&[1])], 0.0, 8);
        let e = &h.entries_for(TableId(1), &g(&[1]))[0];
        assert!(e.error_factor > 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = StatHistory::new();
        h.record(TableId(1), g(&[0]), vec![g(&[0])], 1.0, 8);
        assert!(!h.is_empty());
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
    }
}
