//! The JITS statistics provider: fresh sample → QSS archive → catalog.

use crate::archive::QssArchive;
use crate::collect::{group_region, CollectedStats};
use crate::predcache::{fingerprint, PredicateCache};
use jits_catalog::Catalog;
use jits_common::{ColGroup, ColumnId, DataType, TableId};
use jits_optimizer::{CatalogStatisticsProvider, SelEstimate, StatSource, StatisticsProvider};
use jits_query::QueryBlock;
use jits_storage::Table;
use std::cell::RefCell;

/// Layers query-specific statistics over the general catalog:
///
/// 1. **fresh** — selectivities measured on this query's compile-time
///    sample (exact for the query's own predicate groups);
/// 2. **archive** — QSS histograms materialized by earlier queries;
/// 3. **catalog** — general 1-D statistics (via
///    [`CatalogStatisticsProvider`]).
///
/// Archive histograms consulted during costing are recorded so the engine
/// can LRU-touch them after optimization (`take_used_archive_groups`).
pub struct JitsStatisticsProvider<'a> {
    fresh: &'a CollectedStats,
    archive: &'a QssArchive,
    catalog: &'a Catalog,
    /// Storage tables (indexed by `TableId`) for index metadata: a B-tree
    /// index knows its distinct key count for free, and a real DBMS exposes
    /// it without any RUNSTATS pass.
    tables: &'a [Table],
    predcache: &'a PredicateCache,
    fallback: CatalogStatisticsProvider<'a>,
    used_archive: RefCell<Vec<ColGroup>>,
    used_cache: RefCell<Vec<(TableId, String)>>,
    accuracy_gate: f64,
    infer_from_supersets: bool,
}

impl<'a> JitsStatisticsProvider<'a> {
    /// Builds the layered provider.
    pub fn new(
        fresh: &'a CollectedStats,
        archive: &'a QssArchive,
        catalog: &'a Catalog,
        tables: &'a [Table],
    ) -> Self {
        static EMPTY_CACHE: std::sync::OnceLock<PredicateCache> = std::sync::OnceLock::new();
        JitsStatisticsProvider {
            fresh,
            archive,
            catalog,
            tables,
            predcache: EMPTY_CACHE.get_or_init(|| PredicateCache::new(1)),
            fallback: CatalogStatisticsProvider::new(catalog),
            used_archive: RefCell::new(Vec::new()),
            used_cache: RefCell::new(Vec::new()),
            accuracy_gate: 0.3,
            infer_from_supersets: true,
        }
    }

    /// Attaches the auxiliary predicate cache (paper §3.4 footnote 1).
    pub fn with_predicate_cache(mut self, cache: &'a PredicateCache) -> Self {
        self.predcache = cache;
        self
    }

    /// Enables/disables answering groups from superset histograms.
    pub fn with_superset_inference(mut self, on: bool) -> Self {
        self.infer_from_supersets = on;
        self
    }

    /// Sets the minimum archive accuracy (see
    /// [`crate::JitsConfig::archive_accuracy_gate`]).
    pub fn with_accuracy_gate(mut self, gate: f64) -> Self {
        self.accuracy_gate = gate;
        self
    }

    /// Archive groups whose histograms served estimates (drained).
    pub fn take_used_archive_groups(&self) -> Vec<ColGroup> {
        std::mem::take(&mut self.used_archive.borrow_mut())
    }

    /// Predicate-cache entries that served estimates (drained).
    pub fn take_used_cache_entries(&self) -> Vec<(TableId, String)> {
        std::mem::take(&mut self.used_cache.borrow_mut())
    }

    fn column_type(&self, table: TableId, col: ColumnId) -> DataType {
        self.catalog
            .table(table)
            .and_then(|t| t.schema.column(col))
            .map(|c| c.dtype)
            .unwrap_or(DataType::Float)
    }

    /// Finds the tightest archive histogram over a strict superset of the
    /// group's columns that passes the usability gate, and answers by
    /// marginalizing the extra dimensions.
    fn infer_from_superset(
        &self,
        block: &QueryBlock,
        qun: usize,
        pred_indices: &[usize],
        colgroup: &ColGroup,
    ) -> Option<SelEstimate> {
        // quantifier indices come from the caller; an out-of-range index
        // (e.g. a stale candidate after degradation) means "no estimate",
        // never a panic
        let table = block.quns.get(qun)?.table;
        let types = |c: ColumnId| self.column_type(table, c);
        let mut best: Option<&ColGroup> = None;
        for (candidate, _) in self.archive.iter() {
            if candidate.table() != table || candidate == colgroup || !candidate.contains(colgroup)
            {
                continue;
            }
            if best.is_some_and(|b| b.arity() <= candidate.arity()) {
                continue;
            }
            let acc = crate::gate::archive_accuracy_for(
                self.archive,
                block,
                qun,
                pred_indices,
                candidate,
                &types,
            );
            if acc.is_some_and(|a| a >= self.accuracy_gate) {
                best = Some(candidate);
            }
        }
        let superset = best?;
        let region = crate::gate::project_onto(block, qun, pred_indices, superset, &types)?;
        let sel = self.archive.selectivity(superset, &region)?;
        self.used_archive.borrow_mut().push(superset.clone());
        Some(SelEstimate::from_stat(
            sel,
            superset.clone(),
            StatSource::Qss,
        ))
    }
}

impl StatisticsProvider for JitsStatisticsProvider<'_> {
    fn table_cardinality(&self, table: TableId) -> Option<f64> {
        self.fresh
            .table_rows
            .get(&table)
            .copied()
            .or_else(|| self.fallback.table_cardinality(table))
            // physical storage metadata: live row counts are maintained by
            // the storage layer and need no statistics collection
            .or_else(|| self.tables.get(table.index()).map(|t| t.row_count() as f64))
    }

    fn group_selectivity(
        &self,
        block: &QueryBlock,
        qun: usize,
        pred_indices: &[usize],
    ) -> Option<SelEstimate> {
        if pred_indices.is_empty() {
            return None;
        }
        // 1. fresh sample statistics: exact for this query's groups
        if let Some(stat) = self.fresh.group(qun, pred_indices) {
            return Some(SelEstimate::from_stat(
                stat.selectivity,
                stat.colgroup.clone(),
                StatSource::Qss,
            ));
        }
        let colgroup = block.colgroup_of(pred_indices);
        // tolerate out-of-range quantifiers (see infer_from_superset): a
        // missing lookup degrades to "no estimate", the optimizer's default
        let table = block.quns.get(qun)?.table;
        let types = |c: ColumnId| self.column_type(table, c);

        // 2. the auxiliary predicate cache: exact matches for groups with
        // no region form (paper §3.4 footnote 1)
        if !block.group_is_region(pred_indices) {
            let fp = fingerprint(block, pred_indices);
            if let Some(entry) = self.predcache.get(table, &fp) {
                self.used_cache.borrow_mut().push((table, fp));
                return Some(SelEstimate::from_stat(
                    entry.selectivity,
                    colgroup,
                    StatSource::Qss,
                ));
            }
        }

        // 3. the QSS archive — only where the shared usability gate says the
        // histogram can actually answer the region (see [`crate::gate`])
        let usable = crate::gate::archive_accuracy_for(
            self.archive,
            block,
            qun,
            pred_indices,
            &colgroup,
            &types,
        )
        .is_some_and(|a| a >= self.accuracy_gate);
        if usable {
            if let Some(region) = group_region(block, qun, pred_indices, &types) {
                if let Some(sel) = self.archive.selectivity(&colgroup, &region) {
                    self.used_archive.borrow_mut().push(colgroup.clone());
                    return Some(SelEstimate::from_stat(sel, colgroup, StatSource::Qss));
                }
            }
        }

        // 4. superset inference (future-work extension): a histogram over a
        // superset of the group's columns answers the group by
        // marginalizing the unconstrained dimensions
        if self.infer_from_supersets && block.group_is_region(pred_indices) {
            if let Some(est) = self.infer_from_superset(block, qun, pred_indices, &colgroup) {
                return Some(est);
            }
        }

        // 5. general catalog statistics
        self.fallback.group_selectivity(block, qun, pred_indices)
    }

    fn distinct(&self, table: TableId, column: ColumnId) -> Option<f64> {
        self.fallback
            .distinct(table, column)
            .or_else(|| {
                // index metadata: exact distinct key count, maintained live
                let idx = self.tables.get(table.index())?.index(column)?;
                Some(idx.distinct_keys() as f64)
            })
            .or_else(|| {
                // a declared primary key has one row per value, so its
                // distinct count is the table cardinality
                let is_pk = self.catalog.table(table)?.primary_key == Some(column);
                if is_pk {
                    self.table_cardinality(table)
                } else {
                    None
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::query_analysis;
    use crate::collect::collect_for_tables;
    use jits_common::{Schema, SplitMix64, Value};
    use jits_histogram::Region;
    use jits_query::{bind_statement, parse, BoundStatement};
    use jits_storage::{SampleSpec, Table};

    fn setup() -> (Catalog, Vec<Table>, QueryBlock) {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("model", DataType::Str),
        ]);
        catalog.register_table("car", schema.clone()).unwrap();
        let mut t = Table::new("car", schema);
        for i in 0..1000i64 {
            let (make, model) = if i % 10 < 3 {
                ("Toyota", "Camry")
            } else if i % 10 < 6 {
                ("Toyota", "Corolla")
            } else {
                ("Honda", "Civic")
            };
            t.insert(vec![Value::Int(i), Value::str(make), Value::str(model)])
                .unwrap();
        }
        let BoundStatement::Select(block) = bind_statement(
            &parse("SELECT * FROM car WHERE make = 'Toyota' AND model = 'Camry'").unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        (catalog, vec![t], block)
    }

    #[test]
    fn fresh_stats_take_priority() {
        let (catalog, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(1);
        let fresh = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(5000),
            &mut rng,
        );
        let archive = QssArchive::default();
        let p = JitsStatisticsProvider::new(&fresh, &archive, &catalog, &tables);
        let est = p.group_selectivity(&block, 0, &[0, 1]).unwrap();
        assert!((est.selectivity - 0.3).abs() < 1e-9);
        assert_eq!(est.source, StatSource::Qss);
        assert_eq!(p.table_cardinality(block.quns[0].table), Some(1000.0));
        assert!(p.take_used_archive_groups().is_empty());
    }

    #[test]
    fn archive_answers_when_no_fresh_stats() {
        let (catalog, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        // build the archive from a previous "collection"
        let mut rng = SplitMix64::new(1);
        let collected = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(5000),
            &mut rng,
        );
        let mut archive = QssArchive::default();
        let joint = collected.group(0, &[0, 1]).unwrap();
        let frame = collected.frames.get(&joint.colgroup).unwrap();
        archive.apply_observation(
            joint.colgroup.clone(),
            frame,
            joint.region.as_ref().unwrap(),
            joint.selectivity * 1000.0,
            1000.0,
            1,
        );
        // now a new query with NO fresh stats
        let empty = CollectedStats::default();
        let p = JitsStatisticsProvider::new(&empty, &archive, &catalog, &tables);
        let est = p.group_selectivity(&block, 0, &[0, 1]).unwrap();
        assert!(
            (est.selectivity - 0.3).abs() < 0.02,
            "sel {}",
            est.selectivity
        );
        assert_eq!(est.source, StatSource::Qss);
        let used = p.take_used_archive_groups();
        assert_eq!(used, vec![joint.colgroup.clone()]);
        let _ = Region::unbounded(1);
    }

    #[test]
    fn falls_back_to_catalog() {
        let (mut catalog, tables, block) = setup();
        let (ts, cs) =
            jits_catalog::runstats(&tables[0], jits_catalog::RunstatsOptions::default(), 1);
        catalog.set_stats(block.quns[0].table, ts, cs).unwrap();
        let empty = CollectedStats::default();
        let archive = QssArchive::default();
        let p = JitsStatisticsProvider::new(&empty, &archive, &catalog, &tables);
        // single-column group answered by the catalog
        let est = p.group_selectivity(&block, 0, &[0]).unwrap();
        assert_eq!(est.source, StatSource::Catalog);
        assert!((est.selectivity - 0.6).abs() < 0.02);
        // multi-column unanswered anywhere
        assert!(p.group_selectivity(&block, 0, &[0, 1]).is_none());
        assert!(p.distinct(block.quns[0].table, ColumnId(1)).is_some());
    }
}
