//! Statistics collection: sample once per marked table, evaluate every
//! candidate group on the sample.
//!
//! This is the paper's simplification heuristic in action (§3.3): "most of
//! the cost of computing the statistics is in the sampling process. Once a
//! table is sampled, it is relatively cheap to collect the selectivities of
//! all predicate groups that belong to this table." Single predicates are
//! evaluated once per sampled row into bitsets; every group's joint count is
//! then a bitwise AND.
//!
//! Collection is independent per marked table, so
//! [`collect_for_tables_parallel`] fans the per-table work out across scoped
//! worker threads. Each table draws from its own [`SplitMix64`] stream
//! derived from the caller's RNG state and the (table id, quantifier) pair —
//! never from a shared sequential stream — so the collected statistics are
//! bit-identical whatever the thread count or scheduling order.

use crate::analysis::CandidateGroup;
use jits_common::{ColGroup, ColumnId, DataType, SplitMix64, TableId};
use jits_histogram::Region;
use jits_query::QueryBlock;
use jits_storage::{sample::sample_rows_counted, SampleSpec, Table};
use std::collections::{BTreeMap, HashMap};

/// Per-table collection telemetry — trace decoration only, deliberately
/// kept *out* of [`CollectedStats`] so wall-clock readings can never reach
/// statistics-bearing state. `rows_sampled` and `slot_probes` are
/// deterministic; `worker` and `wall_nanos` depend on scheduling and the
/// caller's clock (both 0 when no clock is supplied).
#[derive(Debug, Clone, PartialEq)]
pub struct CollectTiming {
    /// Quantifier index the table was sampled for.
    pub qun: usize,
    /// Rows drawn into the sample.
    pub rows_sampled: usize,
    /// Storage slot probes the draw cost.
    pub slot_probes: usize,
    /// Worker thread index that handled the table.
    pub worker: usize,
    /// Wall nanoseconds the table's collection took (0 without a clock).
    pub wall_nanos: u64,
}

/// Joint statistics of one candidate group, measured on a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStat {
    /// Canonical column group.
    pub colgroup: ColGroup,
    /// Measured selectivity (matches / sample size).
    pub selectivity: f64,
    /// Matching sample rows.
    pub matches: usize,
    /// Sample size the selectivity was measured on.
    pub sample_size: usize,
    /// The group's axis region (present iff every predicate has an interval
    /// form), in colgroup column order.
    pub region: Option<Region>,
}

/// Everything one compile-time collection pass produced.
///
/// The maps are `BTreeMap`s, not `HashMap`s, so that any iteration over
/// collected statistics (materialization, migration, diagnostics) visits
/// entries in a deterministic order — hash-iteration order must never leak
/// into what the optimizer sees.
#[derive(Debug, Clone, Default)]
pub struct CollectedStats {
    /// Group statistics keyed by (quantifier, sorted predicate indices).
    pub groups: BTreeMap<(usize, Vec<usize>), GroupStat>,
    /// Exact live row counts of the sampled tables.
    pub table_rows: BTreeMap<TableId, f64>,
    /// Per-column-group finite frames observed from the sample (min/max per
    /// column, slightly widened) — used to seed new archive histograms.
    pub frames: BTreeMap<ColGroup, Region>,
    /// Work charged for the collection, in cost-model units.
    pub work: f64,
    /// Marked tables actually sampled by this pass.
    pub tables_sampled: usize,
    /// Worker threads the pass fanned sampling out across (1 = sequential).
    pub collect_threads: usize,
}

impl CollectedStats {
    /// Looks up a group's stats by quantifier and predicate indices.
    pub fn group(&self, qun: usize, pred_indices: &[usize]) -> Option<&GroupStat> {
        let mut key = pred_indices.to_vec();
        key.sort_unstable();
        self.groups.get(&(qun, key))
    }
}

/// The axis region of a predicate group, in canonical colgroup column order.
/// `None` if any predicate lacks an interval form.
pub fn group_region(
    block: &QueryBlock,
    qun: usize,
    pred_indices: &[usize],
    schema_types: &dyn Fn(ColumnId) -> DataType,
) -> Option<Region> {
    if !block.group_is_region(pred_indices) {
        return None;
    }
    let colgroup = block.colgroup_of(pred_indices);
    let (intervals, _residuals) = block.constraints_of(pred_indices);
    let mut ranges = Vec::with_capacity(colgroup.arity());
    for &col in colgroup.columns() {
        let iv = intervals
            .iter()
            .find(|(c, _)| *c == col)
            .map(|(_, iv)| iv)?;
        ranges.push(iv.to_axis_range_typed(schema_types(col)));
    }
    let _ = qun;
    Some(Region::new(ranges))
}

/// Everything collecting one marked quantifier produced. Accumulated into
/// [`CollectedStats`] in quantifier order, so the merged result is
/// independent of which worker thread produced which partial.
struct TablePartial {
    qun: usize,
    groups: Vec<((usize, Vec<usize>), GroupStat)>,
    frames: Vec<(ColGroup, Region)>,
    work: f64,
    timing: CollectTiming,
}

/// Derives the independent RNG stream of one (table, quantifier) pair.
///
/// The stream depends only on the caller's RNG state and the pair identity —
/// not on how many draws other tables made — which is what makes parallel
/// collection bit-identical to sequential collection.
fn table_stream(base: u64, tid: TableId, qun: usize) -> SplitMix64 {
    let mix = (tid.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((qun as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    SplitMix64::new(base ^ mix)
}

/// Samples one marked quantifier's table and evaluates every candidate
/// group on that quantifier against the sample.
#[allow(clippy::too_many_arguments)]
fn collect_one_table(
    block: &QueryBlock,
    qun: usize,
    candidates: &[CandidateGroup],
    table: &Table,
    spec: SampleSpec,
    mut rng: SplitMix64,
    worker: usize,
    clock: Option<&(dyn Fn() -> u64 + Sync)>,
) -> TablePartial {
    let started = clock.map(|c| c()).unwrap_or(0);
    let mut out = TablePartial {
        qun,
        groups: Vec::new(),
        frames: Vec::new(),
        work: 0.0,
        timing: CollectTiming {
            qun,
            rows_sampled: 0,
            slot_probes: 0,
            worker,
            wall_nanos: 0,
        },
    };
    let (rows, probes) = sample_rows_counted(table, spec, &mut rng);
    let n = rows.len();
    out.timing.rows_sampled = n;
    out.timing.slot_probes = probes;
    // random-probe sampling costs O(sample), independent of table size
    // (paper §4, citing [1, 8, 12]); charge a random-access fetch per
    // sampled row
    out.work += n as f64 * 2.0;
    if n == 0 {
        out.timing.wall_nanos = clock.map(|c| c().saturating_sub(started)).unwrap_or(0);
        return out;
    }

    // evaluate each single local predicate into a bitset over the sample
    let local = block.local_predicates_of(qun);
    let words = n.div_ceil(64);
    let mut bitsets: HashMap<usize, Vec<u64>> = HashMap::new();
    for &pi in &local {
        let p = &block.local_predicates[pi];
        let mut bits = vec![0u64; words];
        for (i, &row) in rows.iter().enumerate() {
            if p.matches(&table.value(row, p.column)) {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        bitsets.insert(pi, bits);
    }
    out.work += (n * local.len()) as f64;

    // per-column frames from the sample, for seeding archive histograms
    let mut col_minmax: HashMap<ColumnId, (f64, f64)> = HashMap::new();
    let used_cols: Vec<ColumnId> = {
        let mut cols: Vec<ColumnId> = local
            .iter()
            .map(|&pi| block.local_predicates[pi].column)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    };
    for &col in &used_cols {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &row in &rows {
            if let Some(x) = table.axis_value(row, col) {
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        if lo.is_finite() && hi >= lo {
            let pad = ((hi - lo).abs() * 0.05).max(1.0);
            col_minmax.insert(col, (lo - pad, hi + pad));
        }
    }

    // AND bitsets per candidate group
    let types = |col: ColumnId| {
        table
            .schema()
            .column(col)
            .map(|c| c.dtype)
            .unwrap_or(DataType::Float)
    };
    for cand in candidates.iter().filter(|c| c.qun == qun) {
        let mut acc = vec![u64::MAX; words];
        for &pi in &cand.pred_indices {
            for (w, b) in acc.iter_mut().zip(&bitsets[&pi]) {
                *w &= b;
            }
        }
        // mask the tail beyond n
        if !n.is_multiple_of(64) {
            let last = words - 1;
            acc[last] &= (1u64 << (n % 64)) - 1;
        }
        let matches: usize = acc.iter().map(|w| w.count_ones() as usize).sum();
        out.work += words as f64 / 8.0;

        let region = group_region(block, qun, &cand.pred_indices, &types);
        let mut key = cand.pred_indices.clone();
        key.sort_unstable();
        out.groups.push((
            (qun, key),
            GroupStat {
                colgroup: cand.colgroup.clone(),
                selectivity: matches as f64 / n as f64,
                matches,
                sample_size: n,
                region,
            },
        ));

        // frame for this colgroup (sample min/max per column)
        let ranges: Option<Vec<(f64, f64)>> = cand
            .colgroup
            .columns()
            .iter()
            .map(|c| col_minmax.get(c).copied())
            .collect();
        if let Some(ranges) = ranges {
            out.frames
                .push((cand.colgroup.clone(), Region::new(ranges)));
        }
    }
    out.timing.wall_nanos = clock.map(|c| c().saturating_sub(started)).unwrap_or(0);
    out
}

/// Samples each marked quantifier's table once and computes the selectivity
/// of every candidate group on that quantifier (sequential collection).
pub fn collect_for_tables(
    block: &QueryBlock,
    sample_quns: &[usize],
    candidates: &[CandidateGroup],
    tables: &[Table],
    spec: SampleSpec,
    rng: &mut SplitMix64,
) -> CollectedStats {
    collect_for_tables_parallel(block, sample_quns, candidates, tables, spec, rng, 1)
}

/// [`collect_for_tables`] with the per-table sampling fanned out across up
/// to `threads` scoped worker threads.
///
/// Results are **bit-identical** to the sequential path for any `threads`
/// value: every (table, quantifier) pair draws from its own RNG stream
/// derived via `table_stream`, and partials merge in quantifier order
/// (fixing the f64 `work` summation order too).
pub fn collect_for_tables_parallel(
    block: &QueryBlock,
    sample_quns: &[usize],
    candidates: &[CandidateGroup],
    tables: &[Table],
    spec: SampleSpec,
    rng: &mut SplitMix64,
    threads: usize,
) -> CollectedStats {
    collect_for_tables_traced(
        block,
        sample_quns,
        candidates,
        tables,
        spec,
        rng,
        threads,
        None,
    )
    .0
}

/// [`collect_for_tables_parallel`] plus per-table [`CollectTiming`]
/// telemetry for tracing. `clock` supplies monotonic nanoseconds (pass
/// `None` when not tracing — timings then carry zero wall time but still
/// report deterministic row/probe counts). The statistics returned are
/// identical whether or not a clock is supplied.
#[allow(clippy::too_many_arguments)]
pub fn collect_for_tables_traced(
    block: &QueryBlock,
    sample_quns: &[usize],
    candidates: &[CandidateGroup],
    tables: &[Table],
    spec: SampleSpec,
    rng: &mut SplitMix64,
    threads: usize,
    clock: Option<&(dyn Fn() -> u64 + Sync)>,
) -> (CollectedStats, Vec<CollectTiming>) {
    let mut out = CollectedStats::default();
    // Table statistics (row counts) are "needed for every table involved in
    // the query" (paper §3.2) and are cheap metadata — collect them for all
    // quantifiers, not just the sampled ones.
    for qun in &block.quns {
        if let Some(table) = tables.get(qun.table.index()) {
            out.table_rows.insert(qun.table, table.row_count() as f64);
        }
    }

    // one deterministic stream per marked (table, qun) pair
    let stream_base = rng.next_u64();
    let jobs: Vec<(usize, &Table, SplitMix64)> = sample_quns
        .iter()
        .filter_map(|&qun| {
            let tid = block.quns[qun].table;
            tables
                .get(tid.index())
                .map(|t| (qun, t, table_stream(stream_base, tid, qun)))
        })
        .collect();

    let workers = threads.max(1).min(jobs.len().max(1));
    out.collect_threads = workers;
    out.tables_sampled = jobs.len();

    let mut partials: Vec<TablePartial> = if workers <= 1 || jobs.len() <= 1 {
        jobs.into_iter()
            .map(|(qun, table, rng)| {
                collect_one_table(block, qun, candidates, table, spec, rng, 0, clock)
            })
            .collect()
    } else {
        // round-robin the jobs across scoped workers; assignment does not
        // affect the result, only the wall clock
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let worker_jobs: Vec<(usize, &Table, SplitMix64)> = jobs
                    .iter()
                    .skip(w)
                    .step_by(workers)
                    .map(|(qun, table, rng)| (*qun, *table, rng.clone()))
                    .collect();
                handles.push(scope.spawn(move || {
                    worker_jobs
                        .into_iter()
                        .map(|(qun, table, rng)| {
                            collect_one_table(block, qun, candidates, table, spec, rng, w, clock)
                        })
                        .collect::<Vec<TablePartial>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("collection worker panicked"))
                .collect()
        })
    };

    // deterministic merge in quantifier order
    partials.sort_by_key(|p| p.qun);
    let mut timings = Vec::with_capacity(partials.len());
    for p in partials {
        out.work += p.work;
        for (key, stat) in p.groups {
            out.groups.insert(key, stat);
        }
        for (cg, frame) in p.frames {
            out.frames.entry(cg).or_insert(frame);
        }
        timings.push(p.timing);
    }
    (out, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::query_analysis;
    use jits_catalog::Catalog;
    use jits_common::{Schema, Value};
    use jits_query::{bind_statement, parse, BoundStatement};

    /// 1000 cars; make and model perfectly correlated (30% Toyota Camry).
    fn setup() -> (Catalog, Vec<Table>, QueryBlock) {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("model", DataType::Str),
            ("year", DataType::Int),
        ]);
        catalog.register_table("car", schema.clone()).unwrap();
        let mut t = Table::new("car", schema);
        for i in 0..1000i64 {
            let (make, model) = match i % 10 {
                0..=2 => ("Toyota", "Camry"),
                3..=5 => ("Toyota", "Corolla"),
                _ => ("Honda", "Civic"),
            };
            t.insert(vec![
                Value::Int(i),
                Value::str(make),
                Value::str(model),
                Value::Int(1990 + i % 17),
            ])
            .unwrap();
        }
        let BoundStatement::Select(block) = bind_statement(
            &parse("SELECT * FROM car WHERE make = 'Toyota' AND model = 'Camry'").unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        (catalog, vec![t], block)
    }

    #[test]
    fn joint_selectivities_measured_exactly_on_full_sample() {
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(1);
        // sample larger than the table: all rows examined
        let stats = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(5000),
            &mut rng,
        );
        // 3 groups: {make}, {model}, {make, model}
        assert_eq!(stats.groups.len(), 3);
        let joint = stats.group(0, &[0, 1]).unwrap();
        assert!((joint.selectivity - 0.3).abs() < 1e-9);
        let make = stats.group(0, &[0]).unwrap();
        assert!((make.selectivity - 0.6).abs() < 1e-9);
        assert_eq!(stats.table_rows[&block.quns[0].table], 1000.0);
        assert!(stats.work > 0.0);
    }

    #[test]
    fn sampled_selectivities_approximate() {
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(7);
        let stats = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(400),
            &mut rng,
        );
        let joint = stats.group(0, &[0, 1]).unwrap();
        assert_eq!(joint.sample_size, 400);
        assert!(
            (joint.selectivity - 0.3).abs() < 0.08,
            "sel {}",
            joint.selectivity
        );
    }

    #[test]
    fn regions_and_frames_produced() {
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(1);
        let stats = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(5000),
            &mut rng,
        );
        let joint = stats.group(0, &[0, 1]).unwrap();
        let region = joint.region.as_ref().expect("equality group is a region");
        assert_eq!(region.dims(), 2);
        assert!(!region.is_empty());
        let frame = stats.frames.get(&joint.colgroup).expect("frame exists");
        assert_eq!(frame.dims(), 2);
        // frame must contain the region (string codes of observed makes)
        assert!(frame.intersect(region).volume() > 0.0);
    }

    /// Two correlated tables joined, both quantifiers marked.
    fn setup_join() -> (Catalog, Vec<Table>, QueryBlock) {
        let mut catalog = Catalog::new();
        let car_schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("ownerid", DataType::Int),
            ("make", DataType::Str),
            ("year", DataType::Int),
        ]);
        let owner_schema = Schema::from_pairs(&[("id", DataType::Int), ("salary", DataType::Int)]);
        catalog.register_table("car", car_schema.clone()).unwrap();
        catalog
            .register_table("owner", owner_schema.clone())
            .unwrap();
        let mut car = Table::new("car", car_schema);
        for i in 0..1200i64 {
            car.insert(vec![
                Value::Int(i),
                Value::Int(i % 300),
                Value::str(if i % 3 == 0 { "Toyota" } else { "Honda" }),
                Value::Int(1990 + i % 17),
            ])
            .unwrap();
        }
        let mut owner = Table::new("owner", owner_schema);
        for i in 0..300i64 {
            owner
                .insert(vec![Value::Int(i), Value::Int(i * 400)])
                .unwrap();
        }
        let BoundStatement::Select(block) = bind_statement(
            &parse(
                "SELECT COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id \
                 AND make = 'Toyota' AND year > 2000 AND salary > 50000",
            )
            .unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        (catalog, vec![car, owner], block)
    }

    #[test]
    fn parallel_collection_is_bit_identical_to_sequential() {
        let (_, tables, block) = setup_join();
        let candidates = query_analysis(&block, 6);
        let seq = collect_for_tables(
            &block,
            &[0, 1],
            &candidates,
            &tables,
            SampleSpec::fixed(400),
            &mut SplitMix64::new(99),
        );
        for threads in [2, 4, 8] {
            let par = collect_for_tables_parallel(
                &block,
                &[0, 1],
                &candidates,
                &tables,
                SampleSpec::fixed(400),
                &mut SplitMix64::new(99),
                threads,
            );
            assert_eq!(par.groups, seq.groups, "groups differ at {threads} threads");
            assert_eq!(par.frames, seq.frames, "frames differ at {threads} threads");
            assert_eq!(par.table_rows, seq.table_rows);
            assert_eq!(
                par.work.to_bits(),
                seq.work.to_bits(),
                "work must sum in the same order"
            );
            assert_eq!(par.tables_sampled, 2);
        }
    }

    #[test]
    fn per_table_streams_are_independent_of_marking_order() {
        // sampling table B alone must give the same rows for B as sampling
        // A and B together — streams derive from identity, not draw order
        let (_, tables, block) = setup_join();
        let candidates = query_analysis(&block, 6);
        let both = collect_for_tables(
            &block,
            &[0, 1],
            &candidates,
            &tables,
            SampleSpec::fixed(200),
            &mut SplitMix64::new(7),
        );
        let only_owner = collect_for_tables(
            &block,
            &[1],
            &candidates,
            &tables,
            SampleSpec::fixed(200),
            &mut SplitMix64::new(7),
        );
        let key_both: Vec<_> = both
            .groups
            .iter()
            .filter(|((q, _), _)| *q == 1)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let key_only: Vec<_> = only_owner
            .groups
            .iter()
            .filter(|((q, _), _)| *q == 1)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let sorted = |mut v: Vec<((usize, Vec<usize>), GroupStat)>| {
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        assert_eq!(sorted(key_both), sorted(key_only));
    }

    #[test]
    fn unmarked_tables_not_sampled() {
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(1);
        let stats = collect_for_tables(
            &block,
            &[],
            &candidates,
            &tables,
            SampleSpec::default(),
            &mut rng,
        );
        assert!(stats.groups.is_empty());
        // table cardinalities are metadata, collected for every block table
        assert_eq!(stats.table_rows.len(), 1);
        assert_eq!(stats.work, 0.0);
    }
}
