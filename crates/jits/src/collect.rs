//! Statistics collection: sample once per marked table, evaluate every
//! candidate group on the sample.
//!
//! This is the paper's simplification heuristic in action (§3.3): "most of
//! the cost of computing the statistics is in the sampling process. Once a
//! table is sampled, it is relatively cheap to collect the selectivities of
//! all predicate groups that belong to this table." Single predicates are
//! evaluated once per sampled row into bitsets; every group's joint count is
//! then a bitwise AND.
//!
//! Collection is independent per marked table, so
//! [`collect_for_tables_parallel`] fans the per-table work out across scoped
//! worker threads. Each table draws from its own [`SplitMix64`] stream
//! derived from the caller's RNG state and the (table id, quantifier) pair —
//! never from a shared sequential stream — so the collected statistics are
//! bit-identical whatever the thread count or scheduling order.
//!
//! # The collection fast path
//!
//! Three layers keep the per-query collection tax low without changing any
//! output bit on the cold path:
//!
//! 1. **Versioned sample reuse** ([`SampleSource`]): the engine resolves,
//!    per marked quantifier, whether to draw a fresh sample or serve row
//!    ids memoized in a [`jits_storage::SampleCache`]; the decision is made
//!    sequentially before the parallel fan-out, so it cannot depend on
//!    thread count. When the cache entry is at the table's **exact**
//!    mutation epoch the memoized columnar gathers and per-predicate
//!    bitsets (keyed by predicate fingerprint) ride along too, so a
//!    repeated query skips the draw, the gather, *and* the predicate
//!    evaluation. Fresh draws and freshly derived artifacts flow back as
//!    [`DrawnSample`]s for the engine to commit.
//! 2. **Columnar sample frames** ([`jits_storage::SampleFrame`]): the
//!    sample's used columns are gathered once into dense typed buffers;
//!    predicate bitsets are built over typed slices (with a
//!    `Value`-materializing fallback for exotic kind/type combinations)
//!    and the per-column min/max frame falls out of the same gather pass.
//! 3. **Lattice-incremental group evaluation**: candidate groups arrive in
//!    (size, lexicographic) order, so a k-predicate group's bitset is its
//!    (k−1)-prefix parent's bitset AND one more predicate bitset — O(words)
//!    per group instead of O(k·words) — and descendants of zero-count
//!    groups short-circuit to zero. AND is associative and commutative and
//!    single-predicate bitsets never set bits past the sample tail, so the
//!    incremental result is bit-identical to the full re-AND.

use crate::analysis::CandidateGroup;
use crate::predcache::fingerprint;
use jits_common::fault::{FP_COLLECT_WORKER, FP_SAMPLE_DRAW};
use jits_common::interval::Bound;
use jits_common::{
    fault_key, ColGroup, ColumnId, DataType, FaultPlane, SplitMix64, TableId, Value,
};
use jits_histogram::Region;
use jits_query::{LocalPredicate, PredKind, QueryBlock};
use jits_storage::{
    sample::sample_rows_budgeted, FrameColumn, FrameValues, RowId, SampleSpec, Table,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Fallback label: the table's statistics come from the QSS archive /
/// catalog chain instead of a fresh sample.
pub const FB_ARCHIVE_STATS: &str = "archive_or_catalog_stats";
/// Fallback label: a budget-truncated (still uniform) partial sample was
/// kept and statistics were measured on it.
pub const FB_PARTIAL_SAMPLE: &str = "partial_sample";
/// Pseudo fault point recorded when the deterministic work-unit budget —
/// not an injected fault — degraded a table.
pub const FP_COLLECT_BUDGET: &str = "collect.budget";

/// How a quantifier's sample rows were obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleOrigin {
    /// Drawn fresh (cold cache or no cache in play).
    Fresh,
    /// Drawn fresh because the cached sample had drifted past the
    /// staleness limit.
    Redrawn {
        /// The staleness that invalidated the cached sample.
        staleness: f64,
    },
    /// Served from the sample cache.
    Cached {
        /// The (below-limit) staleness the sample was served at.
        staleness: f64,
    },
}

/// Per-table collection telemetry — trace decoration only, deliberately
/// kept *out* of [`CollectedStats`] so wall-clock readings can never reach
/// statistics-bearing state. `rows_sampled`, `slot_probes` and `origin` are
/// deterministic; `worker` and the nanosecond fields depend on scheduling
/// and the caller's clock (all 0 when no clock is supplied).
#[derive(Debug, Clone, PartialEq)]
pub struct CollectTiming {
    /// Quantifier index the table was sampled for.
    pub qun: usize,
    /// Rows drawn into (or served from cache for) the sample.
    pub rows_sampled: usize,
    /// Storage slot probes the draw cost (replayed from the original draw
    /// when the sample was served from cache).
    pub slot_probes: usize,
    /// Worker thread index that handled the table.
    pub worker: usize,
    /// Wall nanoseconds the table's collection took (0 without a clock).
    pub wall_nanos: u64,
    /// Where the sample rows came from.
    pub origin: SampleOrigin,
    /// Wall nanoseconds of the columnar gather + predicate bitset phase.
    pub gather_nanos: u64,
    /// Wall nanoseconds of the lattice group-evaluation phase.
    pub eval_nanos: u64,
}

/// One table whose collection degraded instead of failing the statement:
/// which quantifier, what tripped it, and which fallback the pipeline took.
/// The qun-ordered merge proceeds with the remaining tables; the provider
/// chain (fresh → predcache → archive → superset → catalog) serves this
/// table from whatever older statistics exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedTable {
    /// Quantifier whose collection degraded.
    pub qun: usize,
    /// The quantifier's table.
    pub table: TableId,
    /// The fault point (or [`FP_COLLECT_BUDGET`]) that tripped.
    pub fault_point: &'static str,
    /// The fallback the pipeline served instead.
    pub fallback: &'static str,
}

/// Joint statistics of one candidate group, measured on a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStat {
    /// Canonical column group.
    pub colgroup: ColGroup,
    /// Measured selectivity (matches / sample size).
    pub selectivity: f64,
    /// Matching sample rows.
    pub matches: usize,
    /// Sample size the selectivity was measured on.
    pub sample_size: usize,
    /// The group's axis region (present iff every predicate has an interval
    /// form), in colgroup column order.
    pub region: Option<Region>,
}

/// Everything one compile-time collection pass produced.
///
/// The maps are `BTreeMap`s, not `HashMap`s, so that any iteration over
/// collected statistics (materialization, migration, diagnostics) visits
/// entries in a deterministic order — hash-iteration order must never leak
/// into what the optimizer sees.
#[derive(Debug, Clone, Default)]
pub struct CollectedStats {
    /// Group statistics keyed by (quantifier, sorted predicate indices).
    pub groups: BTreeMap<(usize, Vec<usize>), GroupStat>,
    /// Exact live row counts of the sampled tables.
    pub table_rows: BTreeMap<TableId, f64>,
    /// Per-column-group finite frames observed from the sample (min/max per
    /// column, slightly widened) — used to seed new archive histograms.
    pub frames: BTreeMap<ColGroup, Region>,
    /// Work charged for the collection, in cost-model units.
    pub work: f64,
    /// Marked tables actually sampled by this pass.
    pub tables_sampled: usize,
    /// Worker threads the pass fanned sampling out across (1 = sequential).
    pub collect_threads: usize,
    /// Tables whose collection degraded this pass (quantifier order). A
    /// table in this list contributes no fresh group stats — unless the
    /// fallback was [`FB_PARTIAL_SAMPLE`], where stats were measured on the
    /// kept partial — and the optimizer falls through to older statistics.
    pub degraded: Vec<DegradedTable>,
}

impl CollectedStats {
    /// Looks up a group's stats by quantifier and predicate indices.
    pub fn group(&self, qun: usize, pred_indices: &[usize]) -> Option<&GroupStat> {
        let mut key = pred_indices.to_vec();
        key.sort_unstable();
        self.groups.get(&(qun, key))
    }
}

/// The axis region of a predicate group, in canonical colgroup column order.
/// `None` if any predicate lacks an interval form.
pub fn group_region(
    block: &QueryBlock,
    qun: usize,
    pred_indices: &[usize],
    schema_types: &dyn Fn(ColumnId) -> DataType,
) -> Option<Region> {
    if !block.group_is_region(pred_indices) {
        return None;
    }
    let colgroup = block.colgroup_of(pred_indices);
    let (intervals, _residuals) = block.constraints_of(pred_indices);
    let mut ranges = Vec::with_capacity(colgroup.arity());
    for &col in colgroup.columns() {
        let iv = intervals
            .iter()
            .find(|(c, _)| *c == col)
            .map(|(_, iv)| iv)?;
        ranges.push(iv.to_axis_range_typed(schema_types(col)));
    }
    let _ = qun;
    Some(Region::new(ranges))
}

/// Pre-resolved sample provenance for one marked quantifier — the engine
/// makes cache decisions sequentially (under the `samplecache` lock) before
/// collection fans out, then hands the outcome here.
#[derive(Debug, Clone)]
pub enum SampleSource {
    /// Draw a fresh sample from the quantifier's RNG stream.
    Draw {
        /// `Some(s)` when the draw replaces a cache entry that drifted past
        /// the staleness limit (`None` = cold miss).
        staleness: Option<f64>,
    },
    /// Serve these previously-drawn rows instead of drawing.
    Served {
        /// The cached row ids.
        rows: Arc<Vec<RowId>>,
        /// Slot probes the original draw cost (replayed for telemetry).
        probes: usize,
        /// The (below-limit) staleness at serve time.
        staleness: f64,
        /// Columnar gathers memoized with the sample. Only valid — and only
        /// provided by the engine — when the cache entry sits at the
        /// table's exact mutation epoch, where a cached gather is
        /// bit-identical to re-gathering from the table. Columns a query
        /// uses that are absent here are gathered fresh.
        frames: BTreeMap<ColumnId, Arc<FrameColumn>>,
        /// Predicate bitsets memoized with the sample, keyed by the
        /// single-predicate [`fingerprint`]. Same exact-epoch validity as
        /// `frames` (a bitset is a pure function of the gather it came
        /// from); predicates absent here are evaluated fresh.
        bitsets: BTreeMap<String, Arc<Vec<u64>>>,
    },
}

/// One cache deposit produced during collection, handed back so the engine
/// can commit it. A `fresh` deposit is a complete draw (rows + gathers —
/// first quantifier wins per table); a non-fresh deposit carries only the
/// columns gathered on top of a served sample, for the engine to merge into
/// the existing entry when the epochs still match.
#[derive(Debug, Clone)]
pub struct DrawnSample {
    /// Quantifier the collection pass ran for.
    pub qun: usize,
    /// Table the rows belong to.
    pub table: TableId,
    /// The sample's row ids, in draw order.
    pub rows: Arc<Vec<RowId>>,
    /// Slot probes the draw cost.
    pub probes: usize,
    /// True when the rows were drawn fresh this pass; false when they were
    /// served and only `frames` is new.
    pub fresh: bool,
    /// Columns gathered from the table this pass (cached frames that were
    /// served are not repeated here).
    pub frames: Vec<(ColumnId, Arc<FrameColumn>)>,
    /// Predicate bitsets evaluated this pass, keyed by single-predicate
    /// [`fingerprint`] (served bitsets are not repeated here).
    pub bitsets: Vec<(String, Arc<Vec<u64>>)>,
}

/// Everything collecting one marked quantifier produced. Accumulated into
/// [`CollectedStats`] in quantifier order, so the merged result is
/// independent of which worker thread produced which partial.
struct TablePartial {
    qun: usize,
    groups: Vec<((usize, Vec<usize>), GroupStat)>,
    frames: Vec<(ColGroup, Region)>,
    work: f64,
    timing: CollectTiming,
    drawn: Option<DrawnSample>,
    degraded: Option<DegradedTable>,
}

impl TablePartial {
    /// A partial that collected nothing because the table degraded: no
    /// groups, no frames, no cache deposit — just the degradation record
    /// (plus any deterministic backoff work already charged).
    fn degraded(
        qun: usize,
        table: TableId,
        fault_point: &'static str,
        fallback: &'static str,
        work: f64,
    ) -> TablePartial {
        TablePartial {
            qun,
            groups: Vec::new(),
            frames: Vec::new(),
            work,
            timing: CollectTiming {
                qun,
                rows_sampled: 0,
                slot_probes: 0,
                worker: 0,
                wall_nanos: 0,
                origin: SampleOrigin::Fresh,
                gather_nanos: 0,
                eval_nanos: 0,
            },
            drawn: None,
            degraded: Some(DegradedTable {
                qun,
                table,
                fault_point,
                fallback,
            }),
        }
    }
}

/// Derives the independent RNG stream of one (table, quantifier) pair.
///
/// The stream depends only on the caller's RNG state and the pair identity —
/// not on how many draws other tables made — which is what makes parallel
/// collection bit-identical to sequential collection.
fn table_stream(base: u64, tid: TableId, qun: usize) -> SplitMix64 {
    let mix = (tid.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((qun as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    SplitMix64::new(base ^ mix)
}

/// One bound of an interval compiled against a typed column: `Free` always
/// passes, `Never` always fails (incomparable bound type — `try_cmp`
/// returns `None`, which `Interval::contains` treats as unsatisfied).
enum NumBound {
    Free,
    InclI(i64),
    ExclI(i64),
    InclF(f64),
    ExclF(f64),
    Never,
}

impl NumBound {
    /// Compiles one bound for an Int column. Int bounds compare exactly as
    /// i64 (matching `try_cmp`'s Int/Int arm); Float bounds compare through
    /// f64 (matching the mixed-numeric arm); Str bounds are incomparable;
    /// a NULL bound sorts below every non-NULL value.
    fn for_int(b: &Bound, is_low: bool) -> NumBound {
        match b {
            Bound::Unbounded => NumBound::Free,
            Bound::Inclusive(Value::Int(x)) => NumBound::InclI(*x),
            Bound::Exclusive(Value::Int(x)) => NumBound::ExclI(*x),
            Bound::Inclusive(Value::Float(x)) => NumBound::InclF(*x),
            Bound::Exclusive(Value::Float(x)) => NumBound::ExclF(*x),
            // try_cmp(non-null, Null) = Greater: a NULL low bound passes
            // everything, a NULL high bound passes nothing
            Bound::Inclusive(Value::Null) | Bound::Exclusive(Value::Null) => {
                if is_low {
                    NumBound::Free
                } else {
                    NumBound::Never
                }
            }
            Bound::Inclusive(Value::Str(_)) | Bound::Exclusive(Value::Str(_)) => NumBound::Never,
        }
    }

    /// Compiles one bound for a Float column — all numeric comparisons go
    /// through f64, exactly like `try_cmp`'s mixed arm.
    fn for_float(b: &Bound, is_low: bool) -> NumBound {
        match NumBound::for_int(b, is_low) {
            NumBound::InclI(x) => NumBound::InclF(x as f64),
            NumBound::ExclI(x) => NumBound::ExclF(x as f64),
            other => other,
        }
    }

    #[inline]
    fn low_ok_int(&self, v: i64) -> bool {
        match self {
            NumBound::Free => true,
            NumBound::InclI(b) => v >= *b,
            NumBound::ExclI(b) => v > *b,
            NumBound::InclF(b) => (v as f64) >= *b,
            NumBound::ExclF(b) => (v as f64) > *b,
            NumBound::Never => false,
        }
    }

    #[inline]
    fn high_ok_int(&self, v: i64) -> bool {
        match self {
            NumBound::Free => true,
            NumBound::InclI(b) => v <= *b,
            NumBound::ExclI(b) => v < *b,
            NumBound::InclF(b) => (v as f64) <= *b,
            NumBound::ExclF(b) => (v as f64) < *b,
            NumBound::Never => false,
        }
    }

    /// f64 comparison operators agree with `partial_cmp`: any NaN operand
    /// fails every ordered comparison, which is exactly `try_cmp = None`.
    #[inline]
    fn low_ok_f64(&self, v: f64) -> bool {
        match self {
            NumBound::Free => true,
            NumBound::InclF(b) => v >= *b,
            NumBound::ExclF(b) => v > *b,
            NumBound::InclI(b) => v >= *b as f64,
            NumBound::ExclI(b) => v > *b as f64,
            NumBound::Never => false,
        }
    }

    #[inline]
    fn high_ok_f64(&self, v: f64) -> bool {
        match self {
            NumBound::Free => true,
            NumBound::InclF(b) => v <= *b,
            NumBound::ExclF(b) => v < *b,
            NumBound::InclI(b) => v <= *b as f64,
            NumBound::ExclI(b) => v < *b as f64,
            NumBound::Never => false,
        }
    }
}

/// One bound compiled against a Str column: only Str bounds are comparable
/// (`try_cmp` compares strings bytewise and yields `None` against numbers);
/// a NULL low bound passes every non-NULL string.
enum StrBound {
    Free,
    Incl(Arc<str>),
    Excl(Arc<str>),
    Never,
}

impl StrBound {
    fn compile(b: &Bound, is_low: bool) -> StrBound {
        match b {
            Bound::Unbounded => StrBound::Free,
            Bound::Inclusive(Value::Str(s)) => StrBound::Incl(Arc::clone(s)),
            Bound::Exclusive(Value::Str(s)) => StrBound::Excl(Arc::clone(s)),
            Bound::Inclusive(Value::Null) | Bound::Exclusive(Value::Null) => {
                if is_low {
                    StrBound::Free
                } else {
                    StrBound::Never
                }
            }
            _ => StrBound::Never,
        }
    }

    #[inline]
    fn low_ok(&self, v: &str) -> bool {
        match self {
            StrBound::Free => true,
            StrBound::Incl(b) => v >= b.as_ref(),
            StrBound::Excl(b) => v > b.as_ref(),
            StrBound::Never => false,
        }
    }

    #[inline]
    fn high_ok(&self, v: &str) -> bool {
        match self {
            StrBound::Free => true,
            StrBound::Incl(b) => v <= b.as_ref(),
            StrBound::Excl(b) => v < b.as_ref(),
            StrBound::Never => false,
        }
    }
}

#[inline]
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

/// Builds the bitset of sample slots satisfying `p` over a gathered frame
/// column. Typed fast paths cover `IS [NOT] NULL` and interval predicates
/// on every column type; other kinds fall back to per-slot `Value`
/// materialization, which is semantically identical to the row-oriented
/// `table.value()` path (the frame is a pure projection of the table).
fn pred_bitset(p: &LocalPredicate, fc: &FrameColumn, words: usize) -> Vec<u64> {
    let n = fc.len();
    let mut bits = vec![0u64; words];
    match (&p.kind, &fc.values) {
        (PredKind::IsNull(want_null), _) => {
            for (i, valid) in fc.validity.iter().enumerate() {
                // matches() is `v.is_null() == want_null`
                if valid != want_null {
                    set_bit(&mut bits, i);
                }
            }
        }
        (PredKind::Interval(iv), FrameValues::Int(vals)) => {
            let low = NumBound::for_int(&iv.low, true);
            let high = NumBound::for_int(&iv.high, false);
            for (i, &v) in vals.iter().enumerate() {
                if fc.validity[i] && low.low_ok_int(v) && high.high_ok_int(v) {
                    set_bit(&mut bits, i);
                }
            }
        }
        (PredKind::Interval(iv), FrameValues::Float(vals)) => {
            let low = NumBound::for_float(&iv.low, true);
            let high = NumBound::for_float(&iv.high, false);
            for (i, &v) in vals.iter().enumerate() {
                if fc.validity[i] && low.low_ok_f64(v) && high.high_ok_f64(v) {
                    set_bit(&mut bits, i);
                }
            }
        }
        (PredKind::Interval(iv), FrameValues::Str(vals)) => {
            let low = StrBound::compile(&iv.low, true);
            let high = StrBound::compile(&iv.high, false);
            for (i, v) in vals.iter().enumerate() {
                if fc.validity[i] && low.low_ok(v) && high.high_ok(v) {
                    set_bit(&mut bits, i);
                }
            }
        }
        // NotEq / InList carry SQL three-valued equality against arbitrary
        // literal lists; the fallback materializes each slot as the same
        // Value `table.value()` would return and asks the predicate itself.
        _ => {
            for i in 0..n {
                if p.matches(&fc.value(i)) {
                    set_bit(&mut bits, i);
                }
            }
        }
    }
    bits
}

fn popcount(bits: &[u64]) -> usize {
    bits.iter().map(|w| w.count_ones() as usize).sum()
}

/// Samples one marked quantifier's table (or serves a cached sample) and
/// evaluates every candidate group on that quantifier against it.
#[allow(clippy::too_many_arguments)]
fn collect_one_table(
    block: &QueryBlock,
    qun: usize,
    candidates: &[CandidateGroup],
    tid: TableId,
    table: &Table,
    spec: SampleSpec,
    source: SampleSource,
    mut rng: SplitMix64,
    worker: usize,
    clock: Option<&(dyn Fn() -> u64 + Sync)>,
    budget: u64,
    fault: &FaultPlane,
    stmt_clock: u64,
) -> TablePartial {
    let started = clock.map(|c| c()).unwrap_or(0);
    // Fault decisions key off (statement clock, quantifier) — both fixed
    // before the parallel fan-out — so which tables degrade is independent
    // of worker count and scheduling order.
    let key = fault_key(stmt_clock, qun as u64);
    if fault.fires(FP_COLLECT_WORKER, key, 0) {
        return TablePartial::degraded(qun, tid, FP_COLLECT_WORKER, FB_ARCHIVE_STATS, 0.0);
    }
    let mut backoff_work = 0.0;
    let mut budget_abort = false;
    let (rows, probes, origin, fresh_draw, cached_frames, cached_bitsets) = match source {
        SampleSource::Draw { staleness } => {
            // Transient draw failures get bounded retry with deterministic
            // backoff: each failed attempt charges 1 << attempt work units
            // to the pass (an attempt counter, never a sleep).
            let (cleared, attempts) = fault.retry(FP_SAMPLE_DRAW, key);
            if attempts > 0 {
                backoff_work = ((1u64 << attempts) - 1) as f64;
            }
            if !cleared {
                return TablePartial::degraded(
                    qun,
                    tid,
                    FP_SAMPLE_DRAW,
                    FB_ARCHIVE_STATS,
                    backoff_work,
                );
            }
            let draw = sample_rows_budgeted(table, spec, &mut rng, budget);
            if draw.aborted && draw.rows.is_empty() {
                // a truncated reservoir scan would be biased, so nothing was
                // kept — fall back to archive/catalog statistics
                return TablePartial::degraded(
                    qun,
                    tid,
                    FP_COLLECT_BUDGET,
                    FB_ARCHIVE_STATS,
                    backoff_work,
                );
            }
            budget_abort = draw.aborted;
            let origin = match staleness {
                Some(s) => SampleOrigin::Redrawn { staleness: s },
                None => SampleOrigin::Fresh,
            };
            (
                Arc::new(draw.rows),
                draw.probes,
                origin,
                true,
                BTreeMap::new(),
                BTreeMap::new(),
            )
        }
        SampleSource::Served {
            rows,
            probes,
            staleness,
            frames,
            bitsets,
        } => (
            rows,
            probes,
            SampleOrigin::Cached { staleness },
            false,
            frames,
            bitsets,
        ),
    };
    let n = rows.len();
    let drawn = if fresh_draw {
        // frames and bitsets are attached after the gather below
        Some(DrawnSample {
            qun,
            table: tid,
            rows: Arc::clone(&rows),
            probes,
            fresh: true,
            frames: Vec::new(),
            bitsets: Vec::new(),
        })
    } else {
        None
    };
    let mut out = TablePartial {
        qun,
        groups: Vec::new(),
        frames: Vec::new(),
        work: 0.0,
        timing: CollectTiming {
            qun,
            rows_sampled: n,
            slot_probes: probes,
            worker,
            wall_nanos: 0,
            origin,
            gather_nanos: 0,
            eval_nanos: 0,
        },
        drawn,
        degraded: if budget_abort {
            // the budget stopped the draw but the partial stayed uniform:
            // keep it, measure on it, and record the degradation
            Some(DegradedTable {
                qun,
                table: tid,
                fault_point: FP_COLLECT_BUDGET,
                fallback: FB_PARTIAL_SAMPLE,
            })
        } else {
            None
        },
    };
    // random-probe sampling costs O(sample), independent of table size
    // (paper §4, citing [1, 8, 12]); charge a random-access fetch per
    // sampled row. Cache hits charge the same units: `work` feeds the
    // machine-independent cost model the paper's experiments replay, so it
    // stays invariant to the (wall-clock-only) fast path. Retry backoff is
    // charged first (zero when no fault fired, leaving the sum untouched).
    if backoff_work > 0.0 {
        out.work += backoff_work;
    }
    out.work += n as f64 * 2.0;
    if n == 0 {
        out.timing.wall_nanos = clock.map(|c| c().saturating_sub(started)).unwrap_or(0);
        return out;
    }

    // gather the used columns once into dense typed buffers, folding the
    // per-column axis min/max into the same pass, then evaluate each single
    // local predicate into a bitset over the sample. Columns already
    // memoized with a served sample (exact-epoch cache hit) are reused
    // as-is — a cached gather is a pure projection of an unchanged table,
    // so its buffers are bit-identical to what this gather would produce.
    let gather_started = clock.map(|c| c()).unwrap_or(0);
    let local = block.local_predicates_of(qun);
    // Post-draw evaluation budget: a full draw can still blow the budget in
    // the row×predicate evaluation phase (probes already spent plus one
    // unit per row×predicate). Degrade to older statistics rather than
    // exceed the bound. A budget-aborted partial is exempt — its draw
    // consumed the budget by construction, and evaluating the (small)
    // partial is the whole point of keeping it.
    if budget != 0
        && !budget_abort
        && (probes as u64).saturating_add((n * local.len()) as u64) > budget
    {
        let mut d = TablePartial::degraded(qun, tid, FP_COLLECT_BUDGET, FB_ARCHIVE_STATS, out.work);
        d.timing = out.timing;
        d.timing.wall_nanos = clock.map(|c| c().saturating_sub(started)).unwrap_or(0);
        return d;
    }
    let used_cols: Vec<ColumnId> = {
        let mut cols: Vec<ColumnId> = local
            .iter()
            .map(|&pi| block.local_predicates[pi].column)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    };
    let mut frame: BTreeMap<ColumnId, Arc<FrameColumn>> = BTreeMap::new();
    let mut gathered: Vec<(ColumnId, Arc<FrameColumn>)> = Vec::new();
    for &col in &used_cols {
        let fc = match cached_frames.get(&col) {
            Some(fc) => Arc::clone(fc),
            None => {
                let fc = Arc::new(table.gather_column(col, &rows));
                gathered.push((col, Arc::clone(&fc)));
                fc
            }
        };
        frame.insert(col, fc);
    }
    let words = n.div_ceil(64);
    let mut bitsets: BTreeMap<usize, Arc<Vec<u64>>> = BTreeMap::new();
    let mut evaluated: Vec<(String, Arc<Vec<u64>>)> = Vec::new();
    for &pi in &local {
        let p = &block.local_predicates[pi];
        let key = fingerprint(block, &[pi]);
        let bits = match cached_bitsets.get(&key) {
            Some(b) => Arc::clone(b),
            None => match frame.get(&p.column) {
                Some(fc) => {
                    let b = Arc::new(pred_bitset(p, fc, words));
                    evaluated.push((key, Arc::clone(&b)));
                    b
                }
                None => continue,
            },
        };
        bitsets.insert(pi, bits);
    }
    out.work += (n * local.len()) as f64;

    // per-column frames from the gather, for seeding archive histograms
    let mut col_minmax: BTreeMap<ColumnId, (f64, f64)> = BTreeMap::new();
    for &col in &used_cols {
        if let Some(fc) = frame.get(&col) {
            let (lo, hi) = (fc.axis_min, fc.axis_max);
            if lo.is_finite() && hi >= lo {
                let pad = ((hi - lo).abs() * 0.05).max(1.0);
                col_minmax.insert(col, (lo - pad, hi + pad));
            }
        }
    }
    // hand freshly derived artifacts back for cache commit: attached to the
    // fresh draw, or as an artifact-only deposit on top of a served sample
    if !gathered.is_empty() || !evaluated.is_empty() {
        match out.drawn.as_mut() {
            Some(d) => {
                d.frames = gathered;
                d.bitsets = evaluated;
            }
            None => {
                out.drawn = Some(DrawnSample {
                    qun,
                    table: tid,
                    rows: Arc::clone(&rows),
                    probes,
                    fresh: false,
                    frames: gathered,
                    bitsets: evaluated,
                })
            }
        }
    }
    out.timing.gather_nanos = clock
        .map(|c| c().saturating_sub(gather_started))
        .unwrap_or(0);

    // Lattice-incremental AND per candidate group. Candidates arrive in
    // (size, lexicographic) order, so the (k−1)-prefix of a group was
    // evaluated before the group itself whenever it was enumerated; single
    // predicate bitsets never set bits past the sample tail, so no
    // re-masking is needed along the lattice.
    let eval_started = clock.map(|c| c()).unwrap_or(0);
    let types = |col: ColumnId| {
        table
            .schema()
            .column(col)
            .map(|c| c.dtype)
            .unwrap_or(DataType::Float)
    };
    let mut computed: BTreeMap<&[usize], (Vec<u64>, usize)> = BTreeMap::new();
    for cand in candidates.iter().filter(|c| c.qun == qun) {
        let preds = &cand.pred_indices;
        let k = preds.len();
        let (acc, matches) = if k == 1 {
            match bitsets.get(&preds[0]) {
                Some(b) => {
                    let bits = (**b).clone();
                    let m = popcount(&bits);
                    (bits, m)
                }
                None => (vec![0u64; words], 0),
            }
        } else {
            match computed.get(&preds[..k - 1]) {
                // a zero-count parent zeroes every descendant: AND with the
                // all-zero bitset is the all-zero bitset, no work needed
                Some((_, 0)) => (vec![0u64; words], 0),
                Some((pbits, _)) => {
                    let mut acc = pbits.clone();
                    if let Some(last) = bitsets.get(&preds[k - 1]) {
                        for (w, b) in acc.iter_mut().zip(last.iter()) {
                            *w &= b;
                        }
                    }
                    let m = popcount(&acc);
                    (acc, m)
                }
                // capped enumeration skipped the (k−1)-parent (singletons +
                // pairs + full group): fall back to the full AND
                None => {
                    let mut acc = vec![u64::MAX; words];
                    for &pi in preds {
                        if let Some(b) = bitsets.get(&pi) {
                            for (w, bb) in acc.iter_mut().zip(b.iter()) {
                                *w &= bb;
                            }
                        }
                    }
                    // mask the tail beyond n (the all-ones seed set it)
                    if !n.is_multiple_of(64) {
                        let last = words - 1;
                        acc[last] &= (1u64 << (n % 64)) - 1;
                    }
                    let m = popcount(&acc);
                    (acc, m)
                }
            }
        };
        out.work += words as f64 / 8.0;

        let region = group_region(block, qun, &cand.pred_indices, &types);
        let mut key = cand.pred_indices.clone();
        key.sort_unstable();
        out.groups.push((
            (qun, key),
            GroupStat {
                colgroup: cand.colgroup.clone(),
                selectivity: matches as f64 / n as f64,
                matches,
                sample_size: n,
                region,
            },
        ));

        // frame for this colgroup (sample min/max per column)
        let ranges: Option<Vec<(f64, f64)>> = cand
            .colgroup
            .columns()
            .iter()
            .map(|c| col_minmax.get(c).copied())
            .collect();
        if let Some(ranges) = ranges {
            out.frames
                .push((cand.colgroup.clone(), Region::new(ranges)));
        }
        computed.insert(preds.as_slice(), (acc, matches));
    }
    out.timing.eval_nanos = clock.map(|c| c().saturating_sub(eval_started)).unwrap_or(0);
    out.timing.wall_nanos = clock.map(|c| c().saturating_sub(started)).unwrap_or(0);
    out
}

/// Samples each marked quantifier's table once and computes the selectivity
/// of every candidate group on that quantifier (sequential collection).
pub fn collect_for_tables(
    block: &QueryBlock,
    sample_quns: &[usize],
    candidates: &[CandidateGroup],
    tables: &[Table],
    spec: SampleSpec,
    rng: &mut SplitMix64,
) -> CollectedStats {
    collect_for_tables_parallel(block, sample_quns, candidates, tables, spec, rng, 1)
}

/// [`collect_for_tables`] with the per-table sampling fanned out across up
/// to `threads` scoped worker threads.
///
/// Results are **bit-identical** to the sequential path for any `threads`
/// value: every (table, quantifier) pair draws from its own RNG stream
/// derived via `table_stream`, and partials merge in quantifier order
/// (fixing the f64 `work` summation order too).
pub fn collect_for_tables_parallel(
    block: &QueryBlock,
    sample_quns: &[usize],
    candidates: &[CandidateGroup],
    tables: &[Table],
    spec: SampleSpec,
    rng: &mut SplitMix64,
    threads: usize,
) -> CollectedStats {
    collect_for_tables_traced(
        block,
        sample_quns,
        candidates,
        tables,
        spec,
        rng,
        threads,
        None,
    )
    .0
}

/// [`collect_for_tables_parallel`] plus per-table [`CollectTiming`]
/// telemetry for tracing. `clock` supplies monotonic nanoseconds (pass
/// `None` when not tracing — timings then carry zero wall time but still
/// report deterministic row/probe counts). The statistics returned are
/// identical whether or not a clock is supplied.
#[allow(clippy::too_many_arguments)]
pub fn collect_for_tables_traced(
    block: &QueryBlock,
    sample_quns: &[usize],
    candidates: &[CandidateGroup],
    tables: &[Table],
    spec: SampleSpec,
    rng: &mut SplitMix64,
    threads: usize,
    clock: Option<&(dyn Fn() -> u64 + Sync)>,
) -> (CollectedStats, Vec<CollectTiming>) {
    let (stats, timings, _drawn) = collect_for_tables_sourced(
        block,
        sample_quns,
        candidates,
        tables,
        spec,
        rng,
        threads,
        clock,
        &BTreeMap::new(),
        0,
        &FaultPlane::disabled(),
        0,
    );
    (stats, timings)
}

/// [`collect_for_tables_traced`] with per-quantifier [`SampleSource`]s from
/// the engine's sample-cache resolution. Quantifiers absent from `sources`
/// draw fresh (so an empty map is exactly the cold path). Returns every
/// cache deposit — fresh draws plus columns gathered on top of served
/// samples — as [`DrawnSample`]s (in quantifier order) for the caller to
/// commit back to its cache.
///
/// `budget` is the per-table work-unit budget (`0` = unlimited), `fault`
/// the injection plane (pass [`FaultPlane::disabled`] outside chaos runs),
/// and `stmt_clock` the statement clock fault decisions key off. Per-table
/// failures — injected or budget-driven — are isolated: the failing table
/// lands in [`CollectedStats::degraded`] and the qun-ordered merge proceeds
/// with the remaining tables.
#[allow(clippy::too_many_arguments)]
pub fn collect_for_tables_sourced(
    block: &QueryBlock,
    sample_quns: &[usize],
    candidates: &[CandidateGroup],
    tables: &[Table],
    spec: SampleSpec,
    rng: &mut SplitMix64,
    threads: usize,
    clock: Option<&(dyn Fn() -> u64 + Sync)>,
    sources: &BTreeMap<usize, SampleSource>,
    budget: u64,
    fault: &FaultPlane,
    stmt_clock: u64,
) -> (CollectedStats, Vec<CollectTiming>, Vec<DrawnSample>) {
    let mut out = CollectedStats::default();
    // Table statistics (row counts) are "needed for every table involved in
    // the query" (paper §3.2) and are cheap metadata — collect them for all
    // quantifiers, not just the sampled ones.
    for qun in &block.quns {
        if let Some(table) = tables.get(qun.table.index()) {
            out.table_rows.insert(qun.table, table.row_count() as f64);
        }
    }

    // one deterministic stream per marked (table, qun) pair; the base is
    // drawn unconditionally so the caller's RNG state evolves identically
    // whether samples are drawn or served from cache
    let stream_base = rng.next_u64();
    type Job<'t> = (usize, TableId, &'t Table, SplitMix64, SampleSource);
    let jobs: Vec<Job<'_>> = sample_quns
        .iter()
        .filter_map(|&qun| {
            let tid = block.quns[qun].table;
            tables.get(tid.index()).map(|t| {
                let source = sources
                    .get(&qun)
                    .cloned()
                    .unwrap_or(SampleSource::Draw { staleness: None });
                (qun, tid, t, table_stream(stream_base, tid, qun), source)
            })
        })
        .collect();

    let workers = threads.max(1).min(jobs.len().max(1));
    out.collect_threads = workers;
    out.tables_sampled = jobs.len();

    let mut partials: Vec<TablePartial> = if workers <= 1 || jobs.len() <= 1 {
        jobs.into_iter()
            .map(|(qun, tid, table, rng, source)| {
                collect_one_table(
                    block, qun, candidates, tid, table, spec, source, rng, 0, clock, budget, fault,
                    stmt_clock,
                )
            })
            .collect()
    } else {
        // round-robin the jobs across scoped workers; assignment does not
        // affect the result, only the wall clock
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let worker_jobs: Vec<Job<'_>> = jobs
                    .iter()
                    .skip(w)
                    .step_by(workers)
                    .map(|(qun, tid, table, rng, source)| {
                        (*qun, *tid, *table, rng.clone(), source.clone())
                    })
                    .collect();
                // remember the worker's job identities so a poisoned worker
                // degrades exactly its tables instead of the whole pass
                let idents: Vec<(usize, TableId)> =
                    worker_jobs.iter().map(|(q, t, ..)| (*q, *t)).collect();
                let handle = scope.spawn(move || {
                    worker_jobs
                        .into_iter()
                        .map(|(qun, tid, table, rng, source)| {
                            collect_one_table(
                                block, qun, candidates, tid, table, spec, source, rng, w, clock,
                                budget, fault, stmt_clock,
                            )
                        })
                        .collect::<Vec<TablePartial>>()
                });
                handles.push((idents, handle));
            }
            let mut all = Vec::new();
            for (idents, h) in handles {
                match h.join() {
                    Ok(worker_partials) => all.extend(worker_partials),
                    // worker isolation: a panicked worker marks its tables
                    // degraded and the merge proceeds with the rest
                    Err(_) => all.extend(idents.into_iter().map(|(qun, tid)| {
                        TablePartial::degraded(qun, tid, FP_COLLECT_WORKER, FB_ARCHIVE_STATS, 0.0)
                    })),
                }
            }
            all
        })
    };

    // deterministic merge in quantifier order
    partials.sort_by_key(|p| p.qun);
    let mut timings = Vec::with_capacity(partials.len());
    let mut drawn = Vec::new();
    for p in partials {
        out.work += p.work;
        for (key, stat) in p.groups {
            out.groups.insert(key, stat);
        }
        for (cg, frame) in p.frames {
            // merging worker partials of one collection call: every partial
            // gathered under this statement's guards at a single epoch, so
            // no boundary can be crossed here
            // jits-lint: allow(epoch-safety)
            out.frames.entry(cg).or_insert(frame);
        }
        timings.push(p.timing);
        if let Some(d) = p.drawn {
            drawn.push(d);
        }
        if let Some(d) = p.degraded {
            out.degraded.push(d);
        }
    }
    (out, timings, drawn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::query_analysis;
    use jits_catalog::Catalog;
    use jits_common::{Schema, Value};
    use jits_query::{bind_statement, parse, BoundStatement};

    /// 1000 cars; make and model perfectly correlated (30% Toyota Camry).
    fn setup() -> (Catalog, Vec<Table>, QueryBlock) {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("model", DataType::Str),
            ("year", DataType::Int),
        ]);
        catalog.register_table("car", schema.clone()).unwrap();
        let mut t = Table::new("car", schema);
        for i in 0..1000i64 {
            let (make, model) = match i % 10 {
                0..=2 => ("Toyota", "Camry"),
                3..=5 => ("Toyota", "Corolla"),
                _ => ("Honda", "Civic"),
            };
            t.insert(vec![
                Value::Int(i),
                Value::str(make),
                Value::str(model),
                Value::Int(1990 + i % 17),
            ])
            .unwrap();
        }
        let BoundStatement::Select(block) = bind_statement(
            &parse("SELECT * FROM car WHERE make = 'Toyota' AND model = 'Camry'").unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        (catalog, vec![t], block)
    }

    #[test]
    fn joint_selectivities_measured_exactly_on_full_sample() {
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(1);
        // sample larger than the table: all rows examined
        let stats = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(5000),
            &mut rng,
        );
        // 3 groups: {make}, {model}, {make, model}
        assert_eq!(stats.groups.len(), 3);
        let joint = stats.group(0, &[0, 1]).unwrap();
        assert!((joint.selectivity - 0.3).abs() < 1e-9);
        let make = stats.group(0, &[0]).unwrap();
        assert!((make.selectivity - 0.6).abs() < 1e-9);
        assert_eq!(stats.table_rows[&block.quns[0].table], 1000.0);
        assert!(stats.work > 0.0);
    }

    #[test]
    fn sampled_selectivities_approximate() {
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(7);
        let stats = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(400),
            &mut rng,
        );
        let joint = stats.group(0, &[0, 1]).unwrap();
        assert_eq!(joint.sample_size, 400);
        assert!(
            (joint.selectivity - 0.3).abs() < 0.08,
            "sel {}",
            joint.selectivity
        );
    }

    #[test]
    fn regions_and_frames_produced() {
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(1);
        let stats = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(5000),
            &mut rng,
        );
        let joint = stats.group(0, &[0, 1]).unwrap();
        let region = joint.region.as_ref().expect("equality group is a region");
        assert_eq!(region.dims(), 2);
        assert!(!region.is_empty());
        let frame = stats.frames.get(&joint.colgroup).expect("frame exists");
        assert_eq!(frame.dims(), 2);
        // frame must contain the region (string codes of observed makes)
        assert!(frame.intersect(region).volume() > 0.0);
    }

    /// Two correlated tables joined, both quantifiers marked.
    fn setup_join() -> (Catalog, Vec<Table>, QueryBlock) {
        let mut catalog = Catalog::new();
        let car_schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("ownerid", DataType::Int),
            ("make", DataType::Str),
            ("year", DataType::Int),
        ]);
        let owner_schema = Schema::from_pairs(&[("id", DataType::Int), ("salary", DataType::Int)]);
        catalog.register_table("car", car_schema.clone()).unwrap();
        catalog
            .register_table("owner", owner_schema.clone())
            .unwrap();
        let mut car = Table::new("car", car_schema);
        for i in 0..1200i64 {
            car.insert(vec![
                Value::Int(i),
                Value::Int(i % 300),
                Value::str(if i % 3 == 0 { "Toyota" } else { "Honda" }),
                Value::Int(1990 + i % 17),
            ])
            .unwrap();
        }
        let mut owner = Table::new("owner", owner_schema);
        for i in 0..300i64 {
            owner
                .insert(vec![Value::Int(i), Value::Int(i * 400)])
                .unwrap();
        }
        let BoundStatement::Select(block) = bind_statement(
            &parse(
                "SELECT COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id \
                 AND make = 'Toyota' AND year > 2000 AND salary > 50000",
            )
            .unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        (catalog, vec![car, owner], block)
    }

    #[test]
    fn parallel_collection_is_bit_identical_to_sequential() {
        let (_, tables, block) = setup_join();
        let candidates = query_analysis(&block, 6);
        let seq = collect_for_tables(
            &block,
            &[0, 1],
            &candidates,
            &tables,
            SampleSpec::fixed(400),
            &mut SplitMix64::new(99),
        );
        for threads in [2, 4, 8] {
            let par = collect_for_tables_parallel(
                &block,
                &[0, 1],
                &candidates,
                &tables,
                SampleSpec::fixed(400),
                &mut SplitMix64::new(99),
                threads,
            );
            assert_eq!(par.groups, seq.groups, "groups differ at {threads} threads");
            assert_eq!(par.frames, seq.frames, "frames differ at {threads} threads");
            assert_eq!(par.table_rows, seq.table_rows);
            assert_eq!(
                par.work.to_bits(),
                seq.work.to_bits(),
                "work must sum in the same order"
            );
            assert_eq!(par.tables_sampled, 2);
        }
    }

    #[test]
    fn per_table_streams_are_independent_of_marking_order() {
        // sampling table B alone must give the same rows for B as sampling
        // A and B together — streams derive from identity, not draw order
        let (_, tables, block) = setup_join();
        let candidates = query_analysis(&block, 6);
        let both = collect_for_tables(
            &block,
            &[0, 1],
            &candidates,
            &tables,
            SampleSpec::fixed(200),
            &mut SplitMix64::new(7),
        );
        let only_owner = collect_for_tables(
            &block,
            &[1],
            &candidates,
            &tables,
            SampleSpec::fixed(200),
            &mut SplitMix64::new(7),
        );
        let key_both: Vec<_> = both
            .groups
            .iter()
            .filter(|((q, _), _)| *q == 1)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let key_only: Vec<_> = only_owner
            .groups
            .iter()
            .filter(|((q, _), _)| *q == 1)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let sorted = |mut v: Vec<((usize, Vec<usize>), GroupStat)>| {
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        assert_eq!(sorted(key_both), sorted(key_only));
    }

    #[test]
    fn unmarked_tables_not_sampled() {
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let mut rng = SplitMix64::new(1);
        let stats = collect_for_tables(
            &block,
            &[],
            &candidates,
            &tables,
            SampleSpec::default(),
            &mut rng,
        );
        assert!(stats.groups.is_empty());
        // table cardinalities are metadata, collected for every block table
        assert_eq!(stats.table_rows.len(), 1);
        assert_eq!(stats.work, 0.0);
    }

    /// Table mixing every column type, NULLs included, for semantics tests.
    fn setup_mixed() -> (Catalog, Vec<Table>, QueryBlock) {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("price", DataType::Float),
            ("year", DataType::Int),
        ]);
        catalog.register_table("car", schema.clone()).unwrap();
        let mut t = Table::new("car", schema);
        for i in 0..600i64 {
            let make = match i % 7 {
                0 | 1 => Value::str("Toyota"),
                2 => Value::str("Honda"),
                3 => Value::Null,
                _ => Value::str("Audi"),
            };
            let price = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Float(5.0 + (i % 50) as f64 * 0.75)
            };
            t.insert(vec![Value::Int(i), make, price, Value::Int(1990 + i % 25)])
                .unwrap();
        }
        let BoundStatement::Select(block) = bind_statement(
            &parse(
                "SELECT * FROM car WHERE make = 'Toyota' AND year > 2000 \
                 AND year <= 2012 AND price <= 30.5 AND id <> 7",
            )
            .unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        (catalog, vec![t], block)
    }

    #[test]
    fn columnar_lattice_eval_matches_row_oriented_reference() {
        // full-table sample: every group's matches must equal a row-by-row
        // reference evaluation through LocalPredicate::matches + Table::value
        let (_, tables, block) = setup_mixed();
        let candidates = query_analysis(&block, 6);
        let stats = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &tables,
            SampleSpec::fixed(5000),
            &mut SplitMix64::new(5),
        );
        let t = &tables[0];
        for cand in &candidates {
            let expected = t
                .scan()
                .filter(|&r| {
                    cand.pred_indices.iter().all(|&pi| {
                        let p = &block.local_predicates[pi];
                        p.matches(&t.value(r, p.column))
                    })
                })
                .count();
            let got = stats.group(0, &cand.pred_indices).unwrap();
            assert_eq!(
                got.matches, expected,
                "group {:?} disagrees with the reference",
                cand.pred_indices
            );
        }
    }

    #[test]
    fn capped_enumeration_falls_back_to_full_and() {
        // 8 predicates with max_group_enumeration 6: candidates are capped
        // to singletons + pairs + the full 8-group, whose 7-parent is never
        // enumerated — the full-AND fallback must agree with the reference
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("model", DataType::Str),
            ("year", DataType::Int),
        ]);
        catalog.register_table("car", schema.clone()).unwrap();
        let mut t = Table::new("car", schema);
        for i in 0..400i64 {
            t.insert(vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "a" } else { "b" }),
                Value::str(if i % 3 == 0 { "x" } else { "y" }),
                Value::Int(i % 10),
            ])
            .unwrap();
        }
        let BoundStatement::Select(block) = bind_statement(
            &parse(
                "SELECT * FROM car WHERE id > 0 AND id < 300 AND make = 'a' AND model = 'y' \
                 AND year > 1 AND year < 9 AND id <> 5 AND make <> 'c'",
            )
            .unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        let candidates = query_analysis(&block, 6);
        assert!(candidates.iter().any(|c| c.pred_indices.len() == 8));
        let stats = collect_for_tables(
            &block,
            &[0],
            &candidates,
            &[t],
            SampleSpec::fixed(5000),
            &mut SplitMix64::new(3),
        );
        // rebuild the reference on the same (full) sample
        let tables_ref = {
            let schema = Schema::from_pairs(&[
                ("id", DataType::Int),
                ("make", DataType::Str),
                ("model", DataType::Str),
                ("year", DataType::Int),
            ]);
            let mut t = Table::new("car", schema);
            for i in 0..400i64 {
                t.insert(vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "a" } else { "b" }),
                    Value::str(if i % 3 == 0 { "x" } else { "y" }),
                    Value::Int(i % 10),
                ])
                .unwrap();
            }
            t
        };
        for cand in &candidates {
            let expected = tables_ref
                .scan()
                .filter(|&r| {
                    cand.pred_indices.iter().all(|&pi| {
                        let p = &block.local_predicates[pi];
                        p.matches(&tables_ref.value(r, p.column))
                    })
                })
                .count();
            let got = stats.group(0, &cand.pred_indices).unwrap();
            assert_eq!(got.matches, expected, "group {:?}", cand.pred_indices);
        }
    }

    #[test]
    fn served_sample_reproduces_draw_exactly() {
        // collecting with a Served source over the rows a fresh draw
        // produced must yield bit-identical group statistics, and mark the
        // timing as cache-served
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let spec = SampleSpec::fixed(400);
        let (cold, cold_timings, drawn) = collect_for_tables_sourced(
            &block,
            &[0],
            &candidates,
            &tables,
            spec,
            &mut SplitMix64::new(42),
            1,
            None,
            &BTreeMap::new(),
            0,
            &FaultPlane::disabled(),
            0,
        );
        assert_eq!(drawn.len(), 1);
        assert!(drawn[0].fresh);
        assert!(
            !drawn[0].frames.is_empty(),
            "a fresh draw deposits its gathered columns"
        );
        assert_eq!(cold_timings[0].origin, SampleOrigin::Fresh);
        let mut sources = BTreeMap::new();
        sources.insert(
            0usize,
            SampleSource::Served {
                rows: Arc::clone(&drawn[0].rows),
                probes: drawn[0].probes,
                staleness: 0.0,
                frames: BTreeMap::new(),
                bitsets: BTreeMap::new(),
            },
        );
        let (warm, warm_timings, warm_drawn) = collect_for_tables_sourced(
            &block,
            &[0],
            &candidates,
            &tables,
            spec,
            &mut SplitMix64::new(42),
            1,
            None,
            &sources,
            0,
            &FaultPlane::disabled(),
            0,
        );
        assert!(
            warm_drawn.iter().all(|d| !d.fresh),
            "served samples draw nothing"
        );
        assert_eq!(
            warm_drawn.len(),
            1,
            "columns gathered over a served sample come back as a deposit"
        );
        assert_eq!(warm.groups, cold.groups);
        assert_eq!(warm.frames, cold.frames);
        assert_eq!(warm.work.to_bits(), cold.work.to_bits());
        assert_eq!(
            warm_timings[0].origin,
            SampleOrigin::Cached { staleness: 0.0 }
        );
        assert_eq!(warm_timings[0].rows_sampled, cold_timings[0].rows_sampled);
        assert_eq!(warm_timings[0].slot_probes, cold_timings[0].slot_probes);

        // serving the memoized gathers as well must change nothing but the
        // work done: same groups, same frames, same charged work, and no
        // deposit at all (every used column was already cached)
        let mut hot_sources = BTreeMap::new();
        hot_sources.insert(
            0usize,
            SampleSource::Served {
                rows: Arc::clone(&drawn[0].rows),
                probes: drawn[0].probes,
                staleness: 0.0,
                frames: drawn[0].frames.iter().cloned().collect(),
                bitsets: drawn[0].bitsets.iter().cloned().collect(),
            },
        );
        let (hot, hot_timings, hot_drawn) = collect_for_tables_sourced(
            &block,
            &[0],
            &candidates,
            &tables,
            spec,
            &mut SplitMix64::new(42),
            1,
            None,
            &hot_sources,
            0,
            &FaultPlane::disabled(),
            0,
        );
        assert!(hot_drawn.is_empty(), "nothing left to deposit");
        assert_eq!(hot.groups, cold.groups);
        assert_eq!(hot.frames, cold.frames);
        assert_eq!(hot.work.to_bits(), cold.work.to_bits());
        assert_eq!(hot_timings[0].rows_sampled, cold_timings[0].rows_sampled);
    }

    #[test]
    fn sourced_draw_consumes_rng_identically_to_cold_path() {
        // the stream base must be drawn from the session RNG whether or not
        // samples are served, so RNG evolution is cache-independent
        let (_, tables, block) = setup();
        let candidates = query_analysis(&block, 6);
        let spec = SampleSpec::fixed(100);
        let mut rng_cold = SplitMix64::new(9);
        let _ = collect_for_tables(&block, &[0], &candidates, &tables, spec, &mut rng_cold);
        let mut rng_warm = SplitMix64::new(9);
        let mut sources = BTreeMap::new();
        sources.insert(
            0usize,
            SampleSource::Served {
                rows: Arc::new(vec![0, 1, 2]),
                probes: 3,
                staleness: 0.0,
                frames: BTreeMap::new(),
                bitsets: BTreeMap::new(),
            },
        );
        let _ = collect_for_tables_sourced(
            &block,
            &[0],
            &candidates,
            &tables,
            spec,
            &mut rng_warm,
            1,
            None,
            &sources,
            0,
            &FaultPlane::disabled(),
            0,
        );
        assert_eq!(rng_cold.next_u64(), rng_warm.next_u64());
    }

    fn collect_faulted(
        block: &QueryBlock,
        tables: &[Table],
        candidates: &[CandidateGroup],
        threads: usize,
        budget: u64,
        fault: &FaultPlane,
        stmt_clock: u64,
    ) -> CollectedStats {
        collect_for_tables_sourced(
            block,
            &[0, 1],
            candidates,
            tables,
            SampleSpec::fixed(200),
            &mut SplitMix64::new(21),
            threads,
            None,
            &BTreeMap::new(),
            budget,
            fault,
            stmt_clock,
        )
        .0
    }

    #[test]
    fn persistent_draw_fault_degrades_only_its_table() {
        let (_, tables, block) = setup_join();
        let candidates = query_analysis(&block, 6);
        // key = clock*1024 + qun: arm qun 0 of statement 1 persistently
        let fault = FaultPlane::from_spec(5, "sample.draw=once:1024:inf").unwrap();
        let stats = collect_faulted(&block, &tables, &candidates, 1, 0, &fault, 1);
        assert_eq!(stats.degraded.len(), 1);
        let d = &stats.degraded[0];
        assert_eq!(d.qun, 0);
        assert_eq!(d.fault_point, FP_SAMPLE_DRAW);
        assert_eq!(d.fallback, FB_ARCHIVE_STATS);
        // qun 0 contributed no groups; qun 1's stats survived the merge
        assert!(stats.groups.keys().all(|(q, _)| *q == 1));
        assert!(stats.groups.keys().any(|(q, _)| *q == 1));
        // both tables still report row counts (cheap metadata)
        assert_eq!(stats.table_rows.len(), 2);
    }

    #[test]
    fn transient_draw_fault_retries_and_charges_backoff() {
        let (_, tables, block) = setup_join();
        let candidates = query_analysis(&block, 6);
        let clean = collect_faulted(
            &block,
            &tables,
            &candidates,
            1,
            0,
            &FaultPlane::disabled(),
            1,
        );
        // default 1 attempt: fires at attempt 0, clears at attempt 1
        let fault = FaultPlane::from_spec(5, "sample.draw=once:1024").unwrap();
        let stats = collect_faulted(&block, &tables, &candidates, 1, 0, &fault, 1);
        assert!(stats.degraded.is_empty(), "transient fault must clear");
        assert_eq!(stats.groups, clean.groups, "retry must not perturb stats");
        // one failed attempt charges 1 << 0 = 1 backoff work unit
        assert_eq!(stats.work, clean.work + 1.0);
    }

    #[test]
    fn worker_fault_and_degradation_replay_identically_across_threads() {
        let (_, tables, block) = setup_join();
        let candidates = query_analysis(&block, 6);
        let fault = FaultPlane::from_spec(77, "collect.worker=once:2049:inf").unwrap();
        let one = collect_faulted(&block, &tables, &candidates, 1, 0, &fault, 2);
        assert_eq!(one.degraded.len(), 1);
        assert_eq!(one.degraded[0].qun, 1);
        assert_eq!(one.degraded[0].fault_point, FP_COLLECT_WORKER);
        for threads in [2, 8] {
            let par = collect_faulted(&block, &tables, &candidates, threads, 0, &fault, 2);
            assert_eq!(par.degraded, one.degraded, "at {threads} threads");
            assert_eq!(par.groups, one.groups, "at {threads} threads");
            assert_eq!(
                par.work.to_bits(),
                one.work.to_bits(),
                "at {threads} threads"
            );
        }
    }

    #[test]
    fn budget_degrades_deterministically_at_any_thread_count() {
        let (_, tables, block) = setup_join();
        let candidates = query_analysis(&block, 6);
        // a tight budget binds on both tables' draws
        let one = collect_faulted(
            &block,
            &tables,
            &candidates,
            1,
            150,
            &FaultPlane::disabled(),
            3,
        );
        assert!(!one.degraded.is_empty(), "tight budget must degrade");
        for d in &one.degraded {
            assert_eq!(d.fault_point, FP_COLLECT_BUDGET);
        }
        for threads in [2, 8] {
            let par = collect_faulted(
                &block,
                &tables,
                &candidates,
                threads,
                150,
                &FaultPlane::disabled(),
                3,
            );
            assert_eq!(par.degraded, one.degraded);
            assert_eq!(par.groups, one.groups);
            assert_eq!(par.work.to_bits(), one.work.to_bits());
        }
        // unlimited budget: no degradation at all
        let clean = collect_faulted(
            &block,
            &tables,
            &candidates,
            1,
            0,
            &FaultPlane::disabled(),
            3,
        );
        assert!(clean.degraded.is_empty());
    }
}
