//! LEO-style feedback ingestion (paper §3.3.1 and \[14\]).
//!
//! After execution, the executor's per-scan cardinality observations become
//! StatHistory entries: `(T, colgrp, statlist, count, errorFactor)` with
//! `errorFactor = estimated / actual selectivity`. These entries are what
//! Algorithm 3 reads to judge whether existing statistics estimate a group
//! accurately, and what Algorithm 4 reads to judge whether a statistic has
//! been useful.

use crate::archive::QssArchive;
use crate::collect::group_region;
use crate::config::JitsConfig;
use crate::history::StatHistory;
use jits_catalog::Catalog;
use jits_common::{ColumnId, DataType};
use jits_executor::ScanObservation;
use jits_query::QueryBlock;

/// Ingests one query's scan observations into the StatHistory (and,
/// optionally, the QSS archive — an extension the paper leaves to LEO).
pub fn ingest(
    block: &QueryBlock,
    observations: &[ScanObservation],
    history: &mut StatHistory,
    archive: &mut QssArchive,
    catalog: &Catalog,
    config: &JitsConfig,
    clock: u64,
) {
    for obs in observations {
        if obs.pred_indices.is_empty() {
            continue;
        }
        // Estimates produced purely from textbook defaults used no stored
        // statistic, so there is nothing for Algorithm 3 to judge: recording
        // them would let a lucky default suppress collection forever. The
        // StatHistory only describes statistics-derived estimates.
        if obs.statlist.is_empty() {
            continue;
        }
        let colgrp = block.colgroup_of(&obs.pred_indices);
        history.record(
            obs.table,
            colgrp.clone(),
            obs.statlist.clone(),
            obs.error_factor(),
            config.history_entries_per_key,
        );
        if config.feedback_to_archive && archive.histogram(&colgrp).is_some() {
            let types = |c: ColumnId| {
                catalog
                    .table(obs.table)
                    .and_then(|t| t.schema.column(c))
                    .map(|cd| cd.dtype)
                    .unwrap_or(DataType::Float)
            };
            if let Some(region) = group_region(block, obs.qun, &obs.pred_indices, &types) {
                let frame = archive
                    .histogram(&colgrp)
                    .map(|h| h.frame())
                    .expect("histogram checked above");
                archive.apply_observation(
                    colgrp,
                    &frame,
                    &region,
                    obs.actual_rows,
                    obs.table_rows,
                    clock,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{Schema, TableId};
    use jits_histogram::Region;
    use jits_optimizer::StatSource;
    use jits_query::{bind_statement, parse, BoundStatement};

    fn setup() -> (Catalog, QueryBlock) {
        let mut catalog = Catalog::new();
        catalog
            .register_table(
                "car",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("make", DataType::Str),
                    ("year", DataType::Int),
                ]),
            )
            .unwrap();
        let BoundStatement::Select(block) = bind_statement(
            &parse("SELECT * FROM car WHERE make = 'Toyota' AND year > 2000").unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        (catalog, block)
    }

    fn obs(block: &QueryBlock, est: f64, actual: f64) -> ScanObservation {
        ScanObservation {
            qun: 0,
            table: TableId(0),
            pred_indices: vec![0, 1],
            est_selectivity: est,
            statlist: vec![block.colgroup_of(&[0]), block.colgroup_of(&[1])],
            source: StatSource::Catalog,
            actual_rows: actual * 1000.0,
            table_rows: 1000.0,
        }
    }

    #[test]
    fn observations_become_history_entries() {
        let (catalog, block) = setup();
        let mut history = StatHistory::new();
        let mut archive = QssArchive::default();
        let o = obs(&block, 0.2, 0.5);
        ingest(
            &block,
            &[o],
            &mut history,
            &mut archive,
            &catalog,
            &JitsConfig::default(),
            1,
        );
        let colgrp = block.colgroup_of(&[0, 1]);
        let entries = history.entries_for(TableId(0), &colgrp);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].statlist.len(), 2);
        assert!((entries[0].error_factor - 0.4).abs() < 1e-9);
        // archive untouched by default
        assert!(archive.is_empty());
    }

    #[test]
    fn feedback_to_archive_updates_existing_histograms() {
        let (catalog, block) = setup();
        let mut history = StatHistory::new();
        let mut archive = QssArchive::default();
        let colgrp = block.colgroup_of(&[0, 1]);
        // seed a histogram over (make, year)
        archive.apply_observation(
            colgrp.clone(),
            &Region::new(vec![(0.0, 1e19), (1990.0, 2010.0)]),
            &Region::new(vec![(0.0, 1e18), (1990.0, 2000.0)]),
            100.0,
            1000.0,
            1,
        );
        let cfg = JitsConfig {
            feedback_to_archive: true,
            ..JitsConfig::default()
        };
        ingest(
            &block,
            &[obs(&block, 0.2, 0.5)],
            &mut history,
            &mut archive,
            &catalog,
            &cfg,
            2,
        );
        // the actual count (500 of 1000) is now a constraint on the region
        let types = |_c: ColumnId| DataType::Int;
        let _ = types;
        let hist = archive.histogram(&colgrp).unwrap();
        assert!(hist.constraint_count() >= 2);
    }

    #[test]
    fn empty_pred_groups_skipped() {
        let (catalog, block) = setup();
        let mut history = StatHistory::new();
        let mut archive = QssArchive::default();
        let mut o = obs(&block, 0.2, 0.5);
        o.pred_indices.clear();
        ingest(
            &block,
            &[o],
            &mut history,
            &mut archive,
            &catalog,
            &JitsConfig::default(),
            1,
        );
        assert!(history.is_empty());
    }

    #[test]
    fn default_estimates_not_recorded() {
        // an estimate from pure defaults used no statistic -> no entry,
        // so the sensitivity analysis keeps s1 = 1 and samples the table
        let (catalog, block) = setup();
        let mut history = StatHistory::new();
        let mut archive = QssArchive::default();
        let mut o = obs(&block, 0.0333, 0.0333);
        o.statlist.clear();
        o.source = StatSource::Default;
        ingest(
            &block,
            &[o],
            &mut history,
            &mut archive,
            &catalog,
            &JitsConfig::default(),
            1,
        );
        assert!(history.is_empty());
    }
}
