//! The QSS archive — "a repository of adaptive single- and
//! multi-dimensional histograms" (paper §3.1).
//!
//! Histograms are keyed by [`ColGroup`]. Observations from compile-time
//! sampling update them through the max-entropy machinery in
//! `jits-histogram`. A bucket budget bounds total space; when exceeded, the
//! paper's eviction policy applies (§3.4): "we remove the histograms that
//! are almost uniformly distributed (as they are close to the optimizer's
//! assumptions). In case more than one histogram satisfies this property, we
//! use LRU".

use jits_common::ColGroup;
use jits_histogram::{region_accuracy, FitResult, GridHistogram, GridSnapshot, Region};
use std::collections::{BTreeMap, BTreeSet};

/// Raw archive state for checkpointing, produced by
/// [`QssArchive::snapshot`]. Histograms travel as [`GridSnapshot`]s
/// (stamps, constraint FIFO and LRU bookkeeping included — all of it
/// eviction-decision-bearing); write-time checksums deliberately do
/// **not** travel: [`QssArchive::from_snapshot`] recomputes them from the
/// restored contents, so a checkpoint torn inside a histogram fails
/// restore-side CRC checks rather than resurrecting as "valid".
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveSnapshot {
    /// Stored histograms in group order.
    pub histograms: Vec<(ColGroup, GridSnapshot)>,
    /// Groups quarantined and awaiting rebuild.
    pub rebuild: Vec<ColGroup>,
    /// Total-bucket budget.
    pub bucket_budget: usize,
    /// Uniformity threshold for eviction.
    pub eviction_uniformity: f64,
}

/// What one [`QssArchive::apply_observation`] call did — the refine trail
/// observability reports (created vs refreshed, bucket growth, IPF fit
/// quality, evictions the budget forced).
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// Whether the histogram was created by this observation.
    pub created: bool,
    /// Buckets before the observation (0 when `created`).
    pub buckets_before: usize,
    /// Buckets after splitting on the observation's region boundaries.
    pub buckets_after: usize,
    /// The max-entropy refit result (IPF iterations, residual, convergence).
    pub fit: FitResult,
    /// Groups the budget enforcement evicted, in eviction order.
    pub evicted: Vec<ColGroup>,
}

/// The archive.
///
/// ```
/// use jits::QssArchive;
/// use jits_common::{ColGroup, ColumnId, TableId};
/// use jits_histogram::Region;
///
/// let mut archive = QssArchive::default();
/// let group = ColGroup::single(TableId(0), ColumnId(2));
/// archive.apply_observation(
///     group.clone(),
///     &Region::new(vec![(0.0, 100.0)]),   // frame
///     &Region::new(vec![(0.0, 30.0)]),    // observed region
///     600.0,                               // rows inside
///     1000.0,                              // table rows
///     1,                                   // logical time
/// );
/// let sel = archive.selectivity(&group, &Region::new(vec![(0.0, 30.0)])).unwrap();
/// assert!((sel - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct QssArchive {
    /// Keyed by `BTreeMap` so [`QssArchive::iter`] (which feeds statistics
    /// migration and superset inference) walks groups in a deterministic
    /// order regardless of insertion history.
    histograms: BTreeMap<ColGroup, GridHistogram>,
    /// Write-time checksums, one per stored histogram. Recomputed on every
    /// [`QssArchive::apply_observation`]; [`QssArchive::validate`] compares
    /// against the live contents to detect torn writes before an estimate
    /// is served.
    checksums: BTreeMap<ColGroup, u64>,
    /// Groups whose stored histogram failed validation: the bucket set was
    /// dropped (served as "no stats" → optimizer default selectivities) and
    /// the next collection covering the group must rebuild it.
    rebuild: BTreeSet<ColGroup>,
    /// Total-bucket budget across all histograms.
    bucket_budget: usize,
    /// Uniformity above which a histogram is "almost uniform" and evictable
    /// ahead of LRU.
    eviction_uniformity: f64,
}

/// Order-dependent FNV-1a over the histogram's full logical content
/// (boundary and count f64 bits, total, bucket count). Dependency-free and
/// platform-stable, which is all a torn-write detector needs.
fn histogram_checksum(h: &GridHistogram) -> u64 {
    let mut sum: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            sum ^= b as u64;
            sum = sum.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(h.n_buckets() as u64);
    eat(h.total().to_bits());
    for dim in h.boundaries() {
        eat(dim.len() as u64);
        for x in dim {
            eat(x.to_bits());
        }
    }
    for c in h.counts() {
        eat(c.to_bits());
    }
    sum
}

impl QssArchive {
    /// An empty archive with the given space budget.
    pub fn new(bucket_budget: usize, eviction_uniformity: f64) -> Self {
        QssArchive {
            histograms: BTreeMap::new(),
            checksums: BTreeMap::new(),
            rebuild: BTreeSet::new(),
            bucket_budget: bucket_budget.max(1),
            eviction_uniformity,
        }
    }

    /// Adjusts the space budget and eviction threshold in place (keeps the
    /// stored histograms, evicting only if the new budget is tighter).
    /// Returns the groups evicted to honour the tighter budget.
    pub fn set_limits(&mut self, bucket_budget: usize, eviction_uniformity: f64) -> Vec<ColGroup> {
        self.bucket_budget = bucket_budget.max(1);
        self.eviction_uniformity = eviction_uniformity;
        self.enforce_budget()
    }

    /// Number of stored histograms.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// True if the archive holds nothing.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Total buckets across all histograms.
    pub fn total_buckets(&self) -> usize {
        self.histograms.values().map(GridHistogram::n_buckets).sum()
    }

    /// The histogram stored for a column group, if any.
    pub fn histogram(&self, group: &ColGroup) -> Option<&GridHistogram> {
        self.histograms.get(group)
    }

    /// Iterates over all (group, histogram) pairs (for migration).
    pub fn iter(&self) -> impl Iterator<Item = (&ColGroup, &GridHistogram)> {
        self.histograms.iter()
    }

    /// Estimated selectivity of `region` under the group's histogram.
    pub fn selectivity(&self, group: &ColGroup, region: &Region) -> Option<f64> {
        self.histograms.get(group).map(|h| h.selectivity(region))
    }

    /// Marks a histogram as used at `stamp` (LRU bookkeeping — call after
    /// the optimizer consumed an estimate from it).
    pub fn touch(&mut self, group: &ColGroup, stamp: u64) {
        if let Some(h) = self.histograms.get_mut(group) {
            h.touch(stamp);
        }
    }

    /// The paper's accuracy of the group's histogram w.r.t. a region, or
    /// `None` when no histogram exists.
    pub fn accuracy(&self, group: &ColGroup, region: &Region) -> Option<f64> {
        self.histograms
            .get(group)
            .map(|h| region_accuracy(h.boundaries(), region))
    }

    /// Applies an observation (`count` of `total` rows in `region`) to the
    /// group's histogram, creating it over `frame` first if absent, then
    /// enforces the space budget. Returns the refine trail for
    /// observability; callers that only maintain the archive may ignore it.
    pub fn apply_observation(
        &mut self,
        group: ColGroup,
        frame: &Region,
        region: &Region,
        count: f64,
        total: f64,
        stamp: u64,
    ) -> RefineOutcome {
        // A quarantined group rebuilds from scratch: the poisoned bucket set
        // is already gone, so this observation creates a fresh histogram and
        // clears the rebuild flag.
        self.rebuild.remove(&group);
        let created = !self.histograms.contains_key(&group);
        let hist = self
            .histograms
            .entry(group.clone())
            .or_insert_with(|| GridHistogram::new(frame, total, stamp));
        let buckets_before = if created { 0 } else { hist.n_buckets() };
        let fit = hist.apply_observation(region, count, total, stamp);
        hist.touch(stamp);
        let buckets_after = hist.n_buckets();
        let sum = histogram_checksum(hist);
        self.checksums.insert(group, sum);
        let evicted = self.enforce_budget();
        RefineOutcome {
            created,
            buckets_before,
            buckets_after,
            fit,
            evicted,
        }
    }

    /// Recomputes the group's checksum against the write-time record.
    /// `true` means the entry is intact (or absent — nothing to serve,
    /// nothing to validate). `false` means a torn write: the caller should
    /// [`QssArchive::quarantine`] the group.
    pub fn validate(&self, group: &ColGroup) -> bool {
        match self.histograms.get(group) {
            None => true,
            Some(h) => self.checksums.get(group) == Some(&histogram_checksum(h)),
        }
    }

    /// The write-time checksum recorded for a stored group, if any — what
    /// [`QssArchive::validate`] compares against. Surfaced so quarantine
    /// diagnostics can report the failing pair.
    pub fn stored_checksum(&self, group: &ColGroup) -> Option<u64> {
        self.checksums.get(group).copied()
    }

    /// The checksum of the group's current bucket set, recomputed from its
    /// logical content, if a histogram is stored.
    pub fn computed_checksum(&self, group: &ColGroup) -> Option<u64> {
        self.histograms.get(group).map(histogram_checksum)
    }

    /// Drops the group's bucket set and schedules a rebuild on the next
    /// collection covering it. Until then the group is served as "no
    /// stats", so the optimizer falls back to default selectivities (the
    /// paper's no-statistics path). Returns whether a histogram was
    /// actually dropped.
    pub fn quarantine(&mut self, group: &ColGroup) -> bool {
        let had = self.histograms.remove(group).is_some();
        self.checksums.remove(group);
        self.rebuild.insert(group.clone());
        had
    }

    /// True when the group was quarantined and awaits its rebuild: the next
    /// collection that produces stats for it must materialize regardless of
    /// the sensitivity verdict.
    pub fn pending_rebuild(&self, group: &ColGroup) -> bool {
        self.rebuild.contains(group)
    }

    /// The groups currently awaiting a rebuild, in deterministic order.
    pub fn pending_rebuilds(&self) -> impl Iterator<Item = &ColGroup> {
        self.rebuild.iter()
    }

    /// Corrupts the stored checksum of a group (fault injection: simulates
    /// a torn archive write — the next [`QssArchive::validate`] fails).
    /// Returns whether the group had a stored entry to corrupt.
    pub fn corrupt_checksum(&mut self, group: &ColGroup) -> bool {
        match self.checksums.get_mut(group) {
            Some(s) => {
                *s ^= 0xDEAD_BEEF;
                true
            }
            None => false,
        }
    }

    /// Rescales a group's histogram to a new table cardinality (e.g. after
    /// heavy churn was detected).
    pub fn set_total(&mut self, group: &ColGroup, total: f64) {
        if let Some(h) = self.histograms.get_mut(group) {
            h.set_total(total);
        }
    }

    /// Evicts histograms until the bucket budget holds: almost-uniform
    /// histograms first (LRU among them), then pure LRU. Returns the
    /// evicted groups in eviction order.
    fn enforce_budget(&mut self) -> Vec<ColGroup> {
        let mut evicted = Vec::new();
        while self.total_buckets() > self.bucket_budget && self.histograms.len() > 1 {
            let victim = self.pick_victim();
            if let Some(v) = victim {
                self.histograms.remove(&v);
                self.checksums.remove(&v);
                evicted.push(v);
            } else {
                break;
            }
        }
        evicted
    }

    fn pick_victim(&self) -> Option<ColGroup> {
        // almost-uniform candidates, least recently used first
        let uniform = self
            .histograms
            .iter()
            .filter(|(_, h)| h.uniformity() >= self.eviction_uniformity)
            .min_by(|(ga, a), (gb, b)| a.last_used().cmp(&b.last_used()).then_with(|| ga.cmp(gb)))
            .map(|(g, _)| g.clone());
        if uniform.is_some() {
            return uniform;
        }
        self.histograms
            .iter()
            .min_by(|(ga, a), (gb, b)| a.last_used().cmp(&b.last_used()).then_with(|| ga.cmp(gb)))
            .map(|(g, _)| g.clone())
    }

    /// Drops everything (used between experiment settings).
    pub fn clear(&mut self) {
        self.histograms.clear();
        self.checksums.clear();
        self.rebuild.clear();
    }

    /// Raw state dump for checkpointing.
    pub fn snapshot(&self) -> ArchiveSnapshot {
        ArchiveSnapshot {
            histograms: self
                .histograms
                .iter()
                .map(|(g, h)| (g.clone(), h.snapshot()))
                .collect(),
            rebuild: self.rebuild.iter().cloned().collect(),
            bucket_budget: self.bucket_budget,
            eviction_uniformity: self.eviction_uniformity,
        }
    }

    /// Rebuilds an archive from a [`QssArchive::snapshot`], recomputing
    /// each histogram's write-time checksum from the restored contents
    /// (deterministic, so it matches the pre-crash value bit for bit).
    pub fn from_snapshot(s: ArchiveSnapshot) -> QssArchive {
        let mut histograms = BTreeMap::new();
        let mut checksums = BTreeMap::new();
        for (g, hs) in s.histograms {
            let h = GridHistogram::from_snapshot(hs);
            checksums.insert(g.clone(), histogram_checksum(&h));
            histograms.insert(g, h);
        }
        QssArchive {
            histograms,
            checksums,
            rebuild: s.rebuild.into_iter().collect(),
            bucket_budget: s.bucket_budget.max(1),
            eviction_uniformity: s.eviction_uniformity,
        }
    }
}

impl Default for QssArchive {
    fn default() -> Self {
        QssArchive::new(4096, 0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{ColumnId, TableId};

    fn group(t: u32, cols: &[u32]) -> ColGroup {
        ColGroup::new(TableId(t), cols.iter().map(|c| ColumnId(*c)).collect())
    }

    fn frame1d() -> Region {
        Region::new(vec![(0.0, 100.0)])
    }

    #[test]
    fn store_and_estimate() {
        let mut a = QssArchive::default();
        let g = group(0, &[1]);
        a.apply_observation(
            g.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 30.0)]),
            90.0,
            100.0,
            1,
        );
        assert_eq!(a.len(), 1);
        let sel = a.selectivity(&g, &Region::new(vec![(0.0, 30.0)])).unwrap();
        assert!((sel - 0.9).abs() < 1e-6);
        assert!(a.selectivity(&group(0, &[2]), &frame1d()).is_none());
    }

    #[test]
    fn accuracy_reflects_boundaries() {
        let mut a = QssArchive::default();
        let g = group(0, &[1]);
        a.apply_observation(
            g.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 30.0)]),
            50.0,
            100.0,
            1,
        );
        // exactly at the observed boundary: perfect accuracy
        let acc = a
            .accuracy(&g, &Region::new(vec![(30.0, f64::INFINITY)]))
            .unwrap();
        assert_eq!(acc, 1.0);
        // mid-bucket: worse
        let acc = a
            .accuracy(&g, &Region::new(vec![(55.0, f64::INFINITY)]))
            .unwrap();
        assert!(acc < 1.0);
        assert!(a.accuracy(&group(9, &[9]), &frame1d()).is_none());
    }

    #[test]
    fn budget_evicts_uniform_first() {
        // 7 histograms of 2 buckets each will exceed this budget by one
        // histogram, forcing exactly one eviction
        let mut a = QssArchive::new(12, 0.9);
        let skewed = group(0, &[1]);
        let uniform = group(0, &[2]);
        // skewed histogram: heavily non-uniform, recently used
        a.apply_observation(
            skewed.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 10.0)]),
            95.0,
            100.0,
            10,
        );
        // uniform histogram, also recently used
        a.apply_observation(
            uniform.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            11,
        );
        assert_eq!(a.len(), 2);
        // now push several more groups to blow the budget
        for c in 3..8u32 {
            a.apply_observation(
                group(0, &[c]),
                &frame1d(),
                &Region::new(vec![(0.0, 10.0)]),
                90.0,
                100.0,
                12 + c as u64,
            );
        }
        // the uniform histogram must be gone; the skewed one must survive
        assert!(a.histogram(&uniform).is_none(), "uniform should be evicted");
        assert!(a.histogram(&skewed).is_some(), "skewed should survive");
        assert!(a.total_buckets() <= 12);
    }

    #[test]
    fn lru_breaks_ties() {
        let mut a = QssArchive::new(4, 0.0); // everything is "uniform enough"
        a.apply_observation(
            group(0, &[1]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            1,
        );
        a.apply_observation(
            group(0, &[2]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            2,
        );
        a.touch(&group(0, &[1]), 10); // make g1 the most recent
        a.apply_observation(
            group(0, &[3]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            3,
        );
        // g2 (last_used 2) is the LRU victim
        assert!(a.histogram(&group(0, &[2])).is_none());
        assert!(a.histogram(&group(0, &[1])).is_some());
    }

    #[test]
    fn validate_detects_corruption_and_quarantine_hides_stats() {
        let mut a = QssArchive::default();
        let g = group(0, &[1]);
        a.apply_observation(
            g.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 30.0)]),
            90.0,
            100.0,
            1,
        );
        assert!(a.validate(&g), "fresh write must validate");
        assert!(a.validate(&group(9, &[9])), "absent group trivially valid");
        assert!(a.corrupt_checksum(&g));
        assert!(!a.validate(&g), "torn write must fail validation");
        assert!(a.quarantine(&g));
        // served as "no stats" across every read surface
        assert!(a.histogram(&g).is_none());
        assert!(a.selectivity(&g, &frame1d()).is_none());
        assert!(a.accuracy(&g, &frame1d()).is_none());
        assert_eq!(a.iter().count(), 0);
        assert!(a.pending_rebuild(&g));
        assert_eq!(a.pending_rebuilds().count(), 1);
    }

    #[test]
    fn rebuild_after_quarantine_restores_byte_identical_stats() {
        // two archives receive the same observation; one is corrupted,
        // quarantined, and rebuilt from the same observation — the rebuilt
        // histogram must be bit-identical to the untouched control
        let g = group(0, &[1]);
        let region = Region::new(vec![(0.0, 30.0)]);
        let mut control = QssArchive::default();
        control.apply_observation(g.clone(), &frame1d(), &region, 90.0, 100.0, 1);
        let mut faulty = QssArchive::default();
        faulty.apply_observation(g.clone(), &frame1d(), &region, 90.0, 100.0, 1);
        faulty.corrupt_checksum(&g);
        assert!(!faulty.validate(&g));
        faulty.quarantine(&g);
        let out = faulty.apply_observation(g.clone(), &frame1d(), &region, 90.0, 100.0, 1);
        assert!(out.created, "rebuild creates a fresh histogram");
        assert!(!faulty.pending_rebuild(&g), "rebuild clears the flag");
        assert!(faulty.validate(&g), "rebuild recomputes the checksum");
        let (c, f) = (
            control.histogram(&g).unwrap(),
            faulty.histogram(&g).unwrap(),
        );
        assert_eq!(c.boundaries(), f.boundaries());
        let cb: Vec<u64> = c.counts().iter().map(|x| x.to_bits()).collect();
        let fb: Vec<u64> = f.counts().iter().map(|x| x.to_bits()).collect();
        assert_eq!(cb, fb, "rebuilt counts must match bit-for-bit");
        assert_eq!(c.total().to_bits(), f.total().to_bits());
    }

    #[test]
    fn eviction_keeps_checksums_in_sync() {
        let mut a = QssArchive::new(4, 0.0);
        a.apply_observation(
            group(0, &[1]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            1,
        );
        a.apply_observation(
            group(0, &[2]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            2,
        );
        a.apply_observation(
            group(0, &[3]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            3,
        );
        // every surviving histogram still validates after forced evictions
        let survivors: Vec<ColGroup> = a.iter().map(|(g, _)| g.clone()).collect();
        assert!(!survivors.is_empty());
        for g in &survivors {
            assert!(a.validate(g));
        }
        // evicted groups validate trivially (absent) and are not quarantined
        assert!(a.validate(&group(0, &[1])));
        assert!(!a.pending_rebuild(&group(0, &[1])));
    }

    #[test]
    fn clear_empties() {
        let mut a = QssArchive::default();
        a.apply_observation(
            group(0, &[1]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            1,
        );
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.total_buckets(), 0);
    }
}
