//! The QSS archive — "a repository of adaptive single- and
//! multi-dimensional histograms" (paper §3.1).
//!
//! Histograms are keyed by [`ColGroup`]. Observations from compile-time
//! sampling update them through the max-entropy machinery in
//! `jits-histogram`. A bucket budget bounds total space; when exceeded, the
//! paper's eviction policy applies (§3.4): "we remove the histograms that
//! are almost uniformly distributed (as they are close to the optimizer's
//! assumptions). In case more than one histogram satisfies this property, we
//! use LRU".

use jits_common::ColGroup;
use jits_histogram::{region_accuracy, FitResult, GridHistogram, Region};
use std::collections::BTreeMap;

/// What one [`QssArchive::apply_observation`] call did — the refine trail
/// observability reports (created vs refreshed, bucket growth, IPF fit
/// quality, evictions the budget forced).
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// Whether the histogram was created by this observation.
    pub created: bool,
    /// Buckets before the observation (0 when `created`).
    pub buckets_before: usize,
    /// Buckets after splitting on the observation's region boundaries.
    pub buckets_after: usize,
    /// The max-entropy refit result (IPF iterations, residual, convergence).
    pub fit: FitResult,
    /// Groups the budget enforcement evicted, in eviction order.
    pub evicted: Vec<ColGroup>,
}

/// The archive.
///
/// ```
/// use jits::QssArchive;
/// use jits_common::{ColGroup, ColumnId, TableId};
/// use jits_histogram::Region;
///
/// let mut archive = QssArchive::default();
/// let group = ColGroup::single(TableId(0), ColumnId(2));
/// archive.apply_observation(
///     group.clone(),
///     &Region::new(vec![(0.0, 100.0)]),   // frame
///     &Region::new(vec![(0.0, 30.0)]),    // observed region
///     600.0,                               // rows inside
///     1000.0,                              // table rows
///     1,                                   // logical time
/// );
/// let sel = archive.selectivity(&group, &Region::new(vec![(0.0, 30.0)])).unwrap();
/// assert!((sel - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct QssArchive {
    /// Keyed by `BTreeMap` so [`QssArchive::iter`] (which feeds statistics
    /// migration and superset inference) walks groups in a deterministic
    /// order regardless of insertion history.
    histograms: BTreeMap<ColGroup, GridHistogram>,
    /// Total-bucket budget across all histograms.
    bucket_budget: usize,
    /// Uniformity above which a histogram is "almost uniform" and evictable
    /// ahead of LRU.
    eviction_uniformity: f64,
}

impl QssArchive {
    /// An empty archive with the given space budget.
    pub fn new(bucket_budget: usize, eviction_uniformity: f64) -> Self {
        QssArchive {
            histograms: BTreeMap::new(),
            bucket_budget: bucket_budget.max(1),
            eviction_uniformity,
        }
    }

    /// Adjusts the space budget and eviction threshold in place (keeps the
    /// stored histograms, evicting only if the new budget is tighter).
    /// Returns the groups evicted to honour the tighter budget.
    pub fn set_limits(&mut self, bucket_budget: usize, eviction_uniformity: f64) -> Vec<ColGroup> {
        self.bucket_budget = bucket_budget.max(1);
        self.eviction_uniformity = eviction_uniformity;
        self.enforce_budget()
    }

    /// Number of stored histograms.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// True if the archive holds nothing.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Total buckets across all histograms.
    pub fn total_buckets(&self) -> usize {
        self.histograms.values().map(GridHistogram::n_buckets).sum()
    }

    /// The histogram stored for a column group, if any.
    pub fn histogram(&self, group: &ColGroup) -> Option<&GridHistogram> {
        self.histograms.get(group)
    }

    /// Iterates over all (group, histogram) pairs (for migration).
    pub fn iter(&self) -> impl Iterator<Item = (&ColGroup, &GridHistogram)> {
        self.histograms.iter()
    }

    /// Estimated selectivity of `region` under the group's histogram.
    pub fn selectivity(&self, group: &ColGroup, region: &Region) -> Option<f64> {
        self.histograms.get(group).map(|h| h.selectivity(region))
    }

    /// Marks a histogram as used at `stamp` (LRU bookkeeping — call after
    /// the optimizer consumed an estimate from it).
    pub fn touch(&mut self, group: &ColGroup, stamp: u64) {
        if let Some(h) = self.histograms.get_mut(group) {
            h.touch(stamp);
        }
    }

    /// The paper's accuracy of the group's histogram w.r.t. a region, or
    /// `None` when no histogram exists.
    pub fn accuracy(&self, group: &ColGroup, region: &Region) -> Option<f64> {
        self.histograms
            .get(group)
            .map(|h| region_accuracy(h.boundaries(), region))
    }

    /// Applies an observation (`count` of `total` rows in `region`) to the
    /// group's histogram, creating it over `frame` first if absent, then
    /// enforces the space budget. Returns the refine trail for
    /// observability; callers that only maintain the archive may ignore it.
    pub fn apply_observation(
        &mut self,
        group: ColGroup,
        frame: &Region,
        region: &Region,
        count: f64,
        total: f64,
        stamp: u64,
    ) -> RefineOutcome {
        let created = !self.histograms.contains_key(&group);
        let hist = self
            .histograms
            .entry(group)
            .or_insert_with(|| GridHistogram::new(frame, total, stamp));
        let buckets_before = if created { 0 } else { hist.n_buckets() };
        let fit = hist.apply_observation(region, count, total, stamp);
        hist.touch(stamp);
        let buckets_after = hist.n_buckets();
        let evicted = self.enforce_budget();
        RefineOutcome {
            created,
            buckets_before,
            buckets_after,
            fit,
            evicted,
        }
    }

    /// Rescales a group's histogram to a new table cardinality (e.g. after
    /// heavy churn was detected).
    pub fn set_total(&mut self, group: &ColGroup, total: f64) {
        if let Some(h) = self.histograms.get_mut(group) {
            h.set_total(total);
        }
    }

    /// Evicts histograms until the bucket budget holds: almost-uniform
    /// histograms first (LRU among them), then pure LRU. Returns the
    /// evicted groups in eviction order.
    fn enforce_budget(&mut self) -> Vec<ColGroup> {
        let mut evicted = Vec::new();
        while self.total_buckets() > self.bucket_budget && self.histograms.len() > 1 {
            let victim = self.pick_victim();
            if let Some(v) = victim {
                self.histograms.remove(&v);
                evicted.push(v);
            } else {
                break;
            }
        }
        evicted
    }

    fn pick_victim(&self) -> Option<ColGroup> {
        // almost-uniform candidates, least recently used first
        let uniform = self
            .histograms
            .iter()
            .filter(|(_, h)| h.uniformity() >= self.eviction_uniformity)
            .min_by(|(ga, a), (gb, b)| a.last_used().cmp(&b.last_used()).then_with(|| ga.cmp(gb)))
            .map(|(g, _)| g.clone());
        if uniform.is_some() {
            return uniform;
        }
        self.histograms
            .iter()
            .min_by(|(ga, a), (gb, b)| a.last_used().cmp(&b.last_used()).then_with(|| ga.cmp(gb)))
            .map(|(g, _)| g.clone())
    }

    /// Drops everything (used between experiment settings).
    pub fn clear(&mut self) {
        self.histograms.clear();
    }
}

impl Default for QssArchive {
    fn default() -> Self {
        QssArchive::new(4096, 0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{ColumnId, TableId};

    fn group(t: u32, cols: &[u32]) -> ColGroup {
        ColGroup::new(TableId(t), cols.iter().map(|c| ColumnId(*c)).collect())
    }

    fn frame1d() -> Region {
        Region::new(vec![(0.0, 100.0)])
    }

    #[test]
    fn store_and_estimate() {
        let mut a = QssArchive::default();
        let g = group(0, &[1]);
        a.apply_observation(
            g.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 30.0)]),
            90.0,
            100.0,
            1,
        );
        assert_eq!(a.len(), 1);
        let sel = a.selectivity(&g, &Region::new(vec![(0.0, 30.0)])).unwrap();
        assert!((sel - 0.9).abs() < 1e-6);
        assert!(a.selectivity(&group(0, &[2]), &frame1d()).is_none());
    }

    #[test]
    fn accuracy_reflects_boundaries() {
        let mut a = QssArchive::default();
        let g = group(0, &[1]);
        a.apply_observation(
            g.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 30.0)]),
            50.0,
            100.0,
            1,
        );
        // exactly at the observed boundary: perfect accuracy
        let acc = a
            .accuracy(&g, &Region::new(vec![(30.0, f64::INFINITY)]))
            .unwrap();
        assert_eq!(acc, 1.0);
        // mid-bucket: worse
        let acc = a
            .accuracy(&g, &Region::new(vec![(55.0, f64::INFINITY)]))
            .unwrap();
        assert!(acc < 1.0);
        assert!(a.accuracy(&group(9, &[9]), &frame1d()).is_none());
    }

    #[test]
    fn budget_evicts_uniform_first() {
        // 7 histograms of 2 buckets each will exceed this budget by one
        // histogram, forcing exactly one eviction
        let mut a = QssArchive::new(12, 0.9);
        let skewed = group(0, &[1]);
        let uniform = group(0, &[2]);
        // skewed histogram: heavily non-uniform, recently used
        a.apply_observation(
            skewed.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 10.0)]),
            95.0,
            100.0,
            10,
        );
        // uniform histogram, also recently used
        a.apply_observation(
            uniform.clone(),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            11,
        );
        assert_eq!(a.len(), 2);
        // now push several more groups to blow the budget
        for c in 3..8u32 {
            a.apply_observation(
                group(0, &[c]),
                &frame1d(),
                &Region::new(vec![(0.0, 10.0)]),
                90.0,
                100.0,
                12 + c as u64,
            );
        }
        // the uniform histogram must be gone; the skewed one must survive
        assert!(a.histogram(&uniform).is_none(), "uniform should be evicted");
        assert!(a.histogram(&skewed).is_some(), "skewed should survive");
        assert!(a.total_buckets() <= 12);
    }

    #[test]
    fn lru_breaks_ties() {
        let mut a = QssArchive::new(4, 0.0); // everything is "uniform enough"
        a.apply_observation(
            group(0, &[1]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            1,
        );
        a.apply_observation(
            group(0, &[2]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            2,
        );
        a.touch(&group(0, &[1]), 10); // make g1 the most recent
        a.apply_observation(
            group(0, &[3]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            3,
        );
        // g2 (last_used 2) is the LRU victim
        assert!(a.histogram(&group(0, &[2])).is_none());
        assert!(a.histogram(&group(0, &[1])).is_some());
    }

    #[test]
    fn clear_empties() {
        let mut a = QssArchive::default();
        a.apply_observation(
            group(0, &[1]),
            &frame1d(),
            &Region::new(vec![(0.0, 50.0)]),
            50.0,
            100.0,
            1,
        );
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.total_buckets(), 0);
    }
}
