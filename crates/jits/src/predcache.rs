//! The auxiliary predicate cache — the paper's §3.4 footnote 1.
//!
//! Some predicate groups have no histogram-region representation (in this
//! engine: groups containing `<>` predicates; in the paper's example,
//! predicates over column expressions). The paper's footnote: "We can store
//! such predicates and the number of tuples that satisfy them separately,
//! and possibly reuse them for later queries. LRU can be used to prune
//! unused predicates." This module is exactly that store: measured
//! selectivities keyed by a canonical predicate fingerprint, pruned by LRU.

use jits_common::TableId;
use jits_query::{PredKind, QueryBlock};
use std::collections::BTreeMap;

/// A cached selectivity for one exact predicate group.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSelectivity {
    /// Measured selectivity.
    pub selectivity: f64,
    /// Logical time of the measurement.
    pub stamp: u64,
    /// Logical time of the last use (LRU).
    pub last_used: u64,
}

/// LRU cache of measured selectivities for non-region predicate groups.
///
/// Keyed by `BTreeMap` so eviction scans visit entries in a deterministic
/// order (the LRU tie-break on the key then needs no hash-order rescue).
#[derive(Debug)]
pub struct PredicateCache {
    entries: BTreeMap<(TableId, String), CachedSelectivity>,
    capacity: usize,
}

impl PredicateCache {
    /// A cache holding at most `capacity` predicates.
    pub fn new(capacity: usize) -> Self {
        PredicateCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// Adjusts the capacity in place, pruning LRU entries if the new
    /// capacity is tighter.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.evict_to_capacity();
    }

    /// Evicts the least-recently-used entries (ties broken by key, so
    /// eviction is deterministic) until the cache fits its capacity. All
    /// victims are selected in one ranking pass — O(n log n) for any number
    /// of evictions, where the old scan-per-victim loop was O(n) *per*
    /// victim (quadratic when the capacity shrinks across a large cache).
    fn evict_to_capacity(&mut self) {
        let overflow = self.entries.len().saturating_sub(self.capacity);
        if overflow == 0 {
            return;
        }
        let mut ranked: Vec<(u64, (TableId, String))> = self
            .entries
            .iter()
            .map(|(k, e)| (e.last_used, k.clone()))
            .collect();
        ranked.sort_unstable_by(|(a, ka), (b, kb)| a.cmp(b).then_with(|| ka.cmp(kb)));
        for (_, key) in ranked.into_iter().take(overflow) {
            self.entries.remove(&key);
        }
    }

    /// Number of cached predicates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores (or refreshes) a measured selectivity.
    pub fn insert(&mut self, table: TableId, fingerprint: String, selectivity: f64, stamp: u64) {
        self.entries.insert(
            (table, fingerprint),
            CachedSelectivity {
                selectivity: selectivity.clamp(0.0, 1.0),
                stamp,
                last_used: stamp,
            },
        );
        // LRU pruning, exactly as the footnote suggests
        self.evict_to_capacity();
    }

    /// Looks up a cached selectivity (read-only; call [`Self::touch`] after
    /// the estimate is actually used).
    pub fn get(&self, table: TableId, fingerprint: &str) -> Option<&CachedSelectivity> {
        self.entries.get(&(table, fingerprint.to_string()))
    }

    /// Marks an entry as used at `stamp`.
    pub fn touch(&mut self, table: TableId, fingerprint: &str, stamp: u64) {
        if let Some(e) = self.entries.get_mut(&(table, fingerprint.to_string())) {
            e.last_used = e.last_used.max(stamp);
        }
    }

    /// Drops all entries for one table (after its data churned enough that
    /// the measurements can no longer be trusted).
    pub fn invalidate_table(&mut self, table: TableId) {
        self.entries.retain(|(t, _), _| *t != table);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Raw state dump for checkpointing: capacity plus every entry in key
    /// order, LRU stamps included (eviction decisions after recovery must
    /// match the never-crashed run).
    pub fn snapshot(&self) -> (usize, Vec<((TableId, String), CachedSelectivity)>) {
        (
            self.capacity,
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        )
    }

    /// Rebuilds a cache from a [`PredicateCache::snapshot`], field for
    /// field.
    pub fn from_snapshot(
        (capacity, entries): (usize, Vec<((TableId, String), CachedSelectivity)>),
    ) -> PredicateCache {
        PredicateCache {
            entries: entries.into_iter().collect(),
            capacity: capacity.max(1),
        }
    }
}

impl Default for PredicateCache {
    fn default() -> Self {
        PredicateCache::new(256)
    }
}

/// Canonical fingerprint of a predicate group: stable across predicate
/// order, sensitive to every column, operator, and constant.
pub fn fingerprint(block: &QueryBlock, pred_indices: &[usize]) -> String {
    let mut parts: Vec<String> = pred_indices
        .iter()
        .map(|&i| {
            let p = &block.local_predicates[i];
            match &p.kind {
                PredKind::Interval(iv) => format!("{} in {}", p.column, iv),
                PredKind::NotEq(v) => format!("{} <> {}", p.column, v),
                PredKind::InList(vals) => {
                    let items: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
                    format!("{} IN ({})", p.column, items.join(","))
                }
                PredKind::IsNull(true) => format!("{} IS NULL", p.column),
                PredKind::IsNull(false) => format!("{} IS NOT NULL", p.column),
            }
        })
        .collect();
    parts.sort();
    parts.join(" & ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_catalog::Catalog;
    use jits_common::{DataType, Schema};
    use jits_query::{bind_statement, parse, BoundStatement};

    fn block(sql: &str) -> QueryBlock {
        let mut catalog = Catalog::new();
        catalog
            .register_table(
                "car",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("make", DataType::Str),
                    ("year", DataType::Int),
                ]),
            )
            .unwrap();
        let BoundStatement::Select(b) = bind_statement(&parse(sql).unwrap(), &catalog).unwrap()
        else {
            panic!()
        };
        b
    }

    #[test]
    fn fingerprint_is_order_insensitive() {
        let b1 = block("SELECT * FROM car WHERE make <> 'Toyota' AND year > 2000");
        let b2 = block("SELECT * FROM car WHERE year > 2000 AND make <> 'Toyota'");
        assert_eq!(fingerprint(&b1, &[0, 1]), fingerprint(&b2, &[0, 1]));
        assert_eq!(fingerprint(&b1, &[0, 1]), fingerprint(&b1, &[1, 0]));
    }

    #[test]
    fn fingerprint_distinguishes_constants_and_ops() {
        let b1 = block("SELECT * FROM car WHERE make <> 'Toyota'");
        let b2 = block("SELECT * FROM car WHERE make <> 'Honda'");
        let b3 = block("SELECT * FROM car WHERE make = 'Toyota'");
        assert_ne!(fingerprint(&b1, &[0]), fingerprint(&b2, &[0]));
        assert_ne!(fingerprint(&b1, &[0]), fingerprint(&b3, &[0]));
    }

    #[test]
    fn insert_get_touch() {
        let mut c = PredicateCache::new(4);
        c.insert(TableId(0), "f1".into(), 0.4, 1);
        let e = c.get(TableId(0), "f1").unwrap();
        assert_eq!(e.selectivity, 0.4);
        assert!(c.get(TableId(1), "f1").is_none());
        c.touch(TableId(0), "f1", 9);
        assert_eq!(c.get(TableId(0), "f1").unwrap().last_used, 9);
        // refresh overwrites
        c.insert(TableId(0), "f1".into(), 0.6, 10);
        assert_eq!(c.get(TableId(0), "f1").unwrap().selectivity, 0.6);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_pruning() {
        let mut c = PredicateCache::new(2);
        c.insert(TableId(0), "a".into(), 0.1, 1);
        c.insert(TableId(0), "b".into(), 0.2, 2);
        c.touch(TableId(0), "a", 5); // b is now the LRU entry
        c.insert(TableId(0), "c".into(), 0.3, 6);
        assert!(c.get(TableId(0), "b").is_none());
        assert!(c.get(TableId(0), "a").is_some());
        assert!(c.get(TableId(0), "c").is_some());
    }

    #[test]
    fn set_capacity_prunes_in_lru_order() {
        let mut c = PredicateCache::new(64);
        for i in 0..64u64 {
            c.insert(TableId(0), format!("f{i:02}"), 0.5, i);
        }
        c.set_capacity(3);
        assert_eq!(c.len(), 3);
        // the three most recently used survive the mass eviction
        for f in ["f61", "f62", "f63"] {
            assert!(c.get(TableId(0), f).is_some(), "{f} should survive");
        }
        assert!(c.get(TableId(0), "f60").is_none());
    }

    #[test]
    fn invalidate_table() {
        let mut c = PredicateCache::new(8);
        c.insert(TableId(0), "a".into(), 0.1, 1);
        c.insert(TableId(1), "a".into(), 0.2, 1);
        c.invalidate_table(TableId(0));
        assert!(c.get(TableId(0), "a").is_none());
        assert!(c.get(TableId(1), "a").is_some());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn selectivity_clamped() {
        let mut c = PredicateCache::new(2);
        c.insert(TableId(0), "a".into(), 7.0, 1);
        assert_eq!(c.get(TableId(0), "a").unwrap().selectivity, 1.0);
    }
}
