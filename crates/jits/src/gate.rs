//! The archive usability gate, shared by estimation and sensitivity.
//!
//! The paper's boundary-distance accuracy (§3.3.2) rates a constant near
//! *any* bucket boundary as accurately estimable. That is right for numeric
//! interpolation but wrong for equality on categorical axes: a string code
//! that merely lands near another string's boundary cannot be interpolated
//! out of a bucket. This module computes the accuracy an archive histogram
//! *actually* offers for a predicate group:
//!
//! * `None` — no histogram on the group;
//! * `Some(0.0)` — a string-equality constant in the group was never
//!   observed (no boundary at its code): the histogram cannot answer;
//! * `Some(acc)` — the paper's region accuracy otherwise.
//!
//! Both the JITS statistics provider (deciding whether to *use* the
//! histogram) and Algorithm 3 (deciding whether existing statistics are
//! good enough to *skip sampling*) consult this single function, so the
//! system never believes a statistic it would refuse to use.

use crate::archive::QssArchive;
use crate::collect::group_region;
use jits_common::{ColGroup, ColumnId, DataType};
use jits_query::QueryBlock;

/// Accuracy the archive offers for `pred_indices` (all on `qun`), projected
/// onto the statistic `stat` (pass the group's own colgroup to rate the full
/// group). `types` maps columns to their data types.
pub fn archive_accuracy_for(
    archive: &QssArchive,
    block: &QueryBlock,
    qun: usize,
    pred_indices: &[usize],
    stat: &ColGroup,
    types: &dyn Fn(ColumnId) -> DataType,
) -> Option<f64> {
    let hist = archive.histogram(stat)?;
    // restrict the predicates to the statistic's columns
    let restricted: Vec<usize> = pred_indices
        .iter()
        .copied()
        .filter(|&i| stat.columns().contains(&block.local_predicates[i].column))
        .collect();
    if restricted.is_empty() {
        // the statistic exists but the group does not constrain its columns:
        // the total count answers trivially
        return Some(1.0);
    }
    // string-equality constants must sit on observed boundaries
    let (intervals, _) = block.constraints_of(&restricted);
    for (d, col) in stat.columns().iter().enumerate() {
        if types(*col) != DataType::Str {
            continue;
        }
        let Some((_, iv)) = intervals.iter().find(|(c, _)| c == col) else {
            continue;
        };
        if !iv.is_point() {
            continue;
        }
        match iv.low.value().and_then(|v| v.to_axis()) {
            Some(axis) if hist.has_boundary(d, axis) => {}
            _ => return Some(0.0),
        }
    }
    // otherwise: the paper's region accuracy, over the statistic's dims
    let region = project_onto(block, qun, &restricted, stat, types)?;
    Some(jits_histogram::region_accuracy(hist.boundaries(), &region))
}

/// The group's region projected onto `stat`'s columns; unconstrained columns
/// become unbounded dimensions.
pub fn project_onto(
    block: &QueryBlock,
    qun: usize,
    restricted: &[usize],
    stat: &ColGroup,
    types: &dyn Fn(ColumnId) -> DataType,
) -> Option<jits_histogram::Region> {
    let sub = group_region(block, qun, restricted, types)?;
    let sub_group = block.colgroup_of(restricted);
    let mut ranges = Vec::with_capacity(stat.arity());
    for col in stat.columns() {
        match sub_group.columns().iter().position(|c| c == col) {
            Some(i) => ranges.push(sub.range(i)),
            None => ranges.push((f64::NEG_INFINITY, f64::INFINITY)),
        }
    }
    Some(jits_histogram::Region::new(ranges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_catalog::Catalog;
    use jits_common::{Schema, TableId};
    use jits_histogram::Region;
    use jits_query::{bind_statement, parse, BoundStatement};

    fn setup(sql: &str) -> (Catalog, QueryBlock) {
        let mut catalog = Catalog::new();
        catalog
            .register_table(
                "car",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("make", DataType::Str),
                    ("year", DataType::Int),
                ]),
            )
            .unwrap();
        let BoundStatement::Select(block) = bind_statement(&parse(sql).unwrap(), &catalog).unwrap()
        else {
            panic!()
        };
        (catalog, block)
    }

    fn types(_c: ColumnId) -> DataType {
        DataType::Str
    }

    #[test]
    fn no_histogram_is_none() {
        let (_, block) = setup("SELECT * FROM car WHERE make = 'Toyota'");
        let archive = QssArchive::default();
        let g = block.colgroup_of(&[0]);
        assert_eq!(
            archive_accuracy_for(&archive, &block, 0, &[0], &g, &types),
            None
        );
    }

    #[test]
    fn unobserved_string_point_scores_zero() {
        let (_, block) = setup("SELECT * FROM car WHERE make = 'Toyota'");
        let g = block.colgroup_of(&[0]);
        let mut archive = QssArchive::default();
        // histogram observed a DIFFERENT make's sliver
        let honda = jits_common::Value::str("Honda").to_axis().unwrap();
        archive.apply_observation(
            g.clone(),
            &Region::new(vec![(4e18, 7e18)]),
            &Region::new(vec![(honda, honda + 4096.0)]),
            40.0,
            100.0,
            1,
        );
        let acc = archive_accuracy_for(&archive, &block, 0, &[0], &g, &types).unwrap();
        assert_eq!(acc, 0.0, "Toyota was never observed");
    }

    #[test]
    fn observed_string_point_scores_high() {
        let (_, block) = setup("SELECT * FROM car WHERE make = 'Toyota'");
        let g = block.colgroup_of(&[0]);
        let mut archive = QssArchive::default();
        let toyota = jits_common::Value::str("Toyota").to_axis().unwrap();
        let eps = jits_common::interval::axis_eps(DataType::Str, toyota);
        archive.apply_observation(
            g.clone(),
            &Region::new(vec![(4e18, 7e18)]),
            &Region::new(vec![(toyota, toyota + eps)]),
            40.0,
            100.0,
            1,
        );
        let acc = archive_accuracy_for(&archive, &block, 0, &[0], &g, &types).unwrap();
        assert_eq!(acc, 1.0, "exact boundary hit");
        let _ = TableId(0);
    }

    #[test]
    fn numeric_ranges_interpolate() {
        let (_, block) = setup("SELECT * FROM car WHERE year > 2000");
        let g = block.colgroup_of(&[0]);
        let mut archive = QssArchive::default();
        archive.apply_observation(
            g.clone(),
            &Region::new(vec![(1990.0, 2007.0)]),
            &Region::new(vec![(1998.0, f64::INFINITY)]),
            60.0,
            100.0,
            1,
        );
        let int_types = |_c: ColumnId| DataType::Int;
        let acc = archive_accuracy_for(&archive, &block, 0, &[0], &g, &int_types).unwrap();
        assert!(acc > 0.3, "numeric interpolation stays usable: {acc}");
    }
}
