//! JITS tuning knobs.

use crate::epsilon::EpsilonConfig;
use jits_storage::SampleSpec;

/// How the two sensitivity scores are combined (paper §3.3.2: "The total
/// score of the table is computed as an aggregate function of the two
/// metric values ... In our implemented prototype, the aggregate function is
/// the average of the two scores").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFn {
    /// `(s1 + s2) / 2` — the paper's prototype choice.
    Average,
    /// `max(s1, s2)` — collect if *either* signal fires.
    Max,
    /// `min(s1, s2)` — collect only if *both* signals fire.
    Min,
}

impl AggregateFn {
    /// Combines the accuracy score `s1` and activity score `s2`.
    pub fn combine(self, s1: f64, s2: f64) -> f64 {
        match self {
            AggregateFn::Average => (s1 + s2) / 2.0,
            AggregateFn::Max => s1.max(s2),
            AggregateFn::Min => s1.min(s2),
        }
    }
}

/// Which sensitivity analysis decides what to collect.
#[derive(Debug, Clone, PartialEq)]
pub enum SensitivityStrategy {
    /// The paper's lightweight heuristic (Algorithms 2–4): StatHistory
    /// accuracy + UDI activity, no optimizer calls.
    PaperHeuristic,
    /// The \[6\]-style ε-planning analysis (double-optimize with unknowns
    /// at ε and 1−ε) — the related-work baseline, far more expensive per
    /// query.
    EpsilonPlanning(EpsilonConfig),
}

/// Configuration of the JITS pipeline.
#[derive(Debug, Clone)]
pub struct JitsConfig {
    /// Which sensitivity analysis runs (the paper's heuristic by default).
    pub strategy: SensitivityStrategy,
    /// The sensitivity threshold `s_max` (paper §3.3.2 and Figure 6):
    /// statistics are collected/materialized when a score **≥ s_max**.
    /// `0.0` collects everything ("no actual sensitivity analysis");
    /// `>= 1.0` never collects.
    pub s_max: f64,
    /// How `s1` and `s2` combine.
    pub aggregate: AggregateFn,
    /// Fixed sample size per table (independent of table size, per the
    /// paper's citations [1, 8, 12]).
    pub sample: SampleSpec,
    /// Reuse memoized per-table samples across queries when the table has
    /// barely mutated since the draw (the versioned sample cache). Purely a
    /// wall-clock optimization on unmutated tables; on mutated tables it
    /// trades the bounded staleness below for skipping the re-draw.
    pub sample_cache: bool,
    /// Staleness limit for serving a cached sample: mutations since the
    /// draw over cardinality at the draw (the Algorithm 3 `s2` shape) must
    /// be **strictly below** this to serve. `0.0` disables serving (every
    /// lookup re-draws); `1.0` serves until the table has churned through
    /// its own cardinality.
    pub sample_cache_staleness: f64,
    /// Per-table work-unit budget for one collection pass (slot probes for
    /// the draw plus row×group evaluations), `0` = unlimited. When the
    /// budget binds mid-draw the partial probe-phase sample is kept if it
    /// is still uniform; otherwise (or when evaluation would blow the
    /// remaining budget) the table degrades to archive/catalog statistics.
    /// The budget is counted in deterministic work units — never wall
    /// clock — so budgeted runs replay bit-identically at any thread count.
    pub collect_budget: u64,
    /// Worker threads for per-table statistics collection (1 = sequential).
    /// Any value yields bit-identical statistics — per-table RNG streams
    /// derive from (seed, table, quantifier), not from a shared sequence —
    /// so this is purely a wall-clock knob.
    pub collect_threads: usize,
    /// Cap on local predicates per table fed to the power-set enumeration of
    /// Algorithm 1; beyond it only singletons, pairs, and the full group are
    /// enumerated to bound the candidate count.
    pub max_group_enumeration: usize,
    /// QSS archive space budget: total buckets across all histograms.
    pub archive_bucket_budget: usize,
    /// Uniformity above which a histogram is an eviction candidate before
    /// LRU kicks in (paper §3.4: evict "histograms that are almost uniformly
    /// distributed ... as they are close to the optimizer's assumptions").
    pub eviction_uniformity: f64,
    /// Maximum StatHistory entries per (table, column-group) key.
    pub history_entries_per_key: usize,
    /// EWMA weight of the newest errorFactor observation when merging into
    /// an existing history entry.
    pub history_ewma: f64,
    /// Minimum boundary accuracy (the paper's §3.3.2 metric) an archive
    /// histogram must score on a query region before its estimate is used.
    /// Guards against volume-interpolating equality predicates on
    /// categorical axes far from any observed boundary, where interpolation
    /// is meaningless.
    pub archive_accuracy_gate: f64,
    /// Answer a predicate group from a *superset* group's histogram when no
    /// exact histogram exists (marginalizing the extra dimensions) — the
    /// paper's future-work idea of "inferring some of the absent
    /// statistics".
    pub infer_from_supersets: bool,
    /// Capacity of the auxiliary predicate cache (paper §3.4 footnote 1) for
    /// groups with no histogram-region form.
    pub predicate_cache_capacity: usize,
    /// Run the statistics-migration module every this many statements,
    /// folding one-dimensional QSS histograms into the catalog's general
    /// statistics (paper §3.1: "the information in the QSS archive can be
    /// used to periodically update the system catalog"). 0 disables.
    pub migrate_every: u64,
    /// Route execution-time actual counts into the archive as max-entropy
    /// constraints (an extension beyond the paper, off by default — the
    /// paper updates the archive from compile-time samples only).
    pub feedback_to_archive: bool,
    /// Scan-level q-error above which a table counts as *mispredicted*.
    /// Feeds two places: the `jits.qerror.*` misprediction metrics, and the
    /// sensitivity boost in [`crate::sensitivity_analysis_with_feedback`],
    /// where a table whose last observed q-error `q` exceeds this threshold
    /// has `s1` floored at `1 − 1/q` so re-collection targets tables the
    /// optimizer actually mispredicted.
    pub qerror_threshold: f64,
}

impl Default for JitsConfig {
    fn default() -> Self {
        JitsConfig {
            strategy: SensitivityStrategy::PaperHeuristic,
            s_max: 0.5,
            aggregate: AggregateFn::Average,
            sample: SampleSpec::default(),
            sample_cache: true,
            sample_cache_staleness: 0.1,
            collect_budget: 0,
            collect_threads: 1,
            max_group_enumeration: 6,
            archive_bucket_budget: 4096,
            eviction_uniformity: 0.9,
            history_entries_per_key: 8,
            history_ewma: 0.5,
            archive_accuracy_gate: 0.3,
            infer_from_supersets: true,
            predicate_cache_capacity: 256,
            migrate_every: 25,
            feedback_to_archive: false,
            qerror_threshold: 2.0,
        }
    }
}

impl JitsConfig {
    /// True if the threshold disables collection entirely.
    pub fn never_collects(&self) -> bool {
        self.s_max >= 1.0
    }

    /// True if the threshold forces collection on every query.
    pub fn always_collects(&self) -> bool {
        self.s_max <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_functions() {
        assert_eq!(AggregateFn::Average.combine(1.0, 0.0), 0.5);
        assert_eq!(AggregateFn::Max.combine(1.0, 0.0), 1.0);
        assert_eq!(AggregateFn::Min.combine(1.0, 0.0), 0.0);
    }

    #[test]
    fn threshold_extremes() {
        let mut c = JitsConfig::default();
        assert!(!c.never_collects());
        assert!(!c.always_collects());
        c.s_max = 1.0;
        assert!(c.never_collects());
        c.s_max = 0.0;
        assert!(c.always_collects());
    }
}
