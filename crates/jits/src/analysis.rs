//! Query analysis — the paper's Algorithm 1.
//!
//! For every query block, for every table `t` involved, with `P_t` the local
//! predicates on `t`: enumerate all i-predicate groups for
//! `i = 1, 2, ..., |P_t|` — i.e. the non-empty power set of `P_t`. Each
//! group is a *candidate statistic*: the joint selectivity the optimizer
//! would ideally know.
//!
//! The enumeration is exponential in `|P_t|`; real queries rarely have more
//! than a handful of local predicates per table, and beyond the configured
//! cap the enumeration degrades gracefully to singletons, pairs, and the
//! full group (the groups the estimator and the sensitivity analysis
//! actually consume).

use jits_common::ColGroup;
use jits_query::QueryBlock;

/// One candidate predicate group produced by query analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateGroup {
    /// Quantifier the group is local to.
    pub qun: usize,
    /// Sorted indices into `block.local_predicates`.
    pub pred_indices: Vec<usize>,
    /// Canonical column-group identity.
    pub colgroup: ColGroup,
    /// Whether every predicate has an interval form (the group can be
    /// materialized as a histogram region).
    pub is_region: bool,
}

/// Algorithm 1: enumerate candidate predicate groups for a block.
///
/// Groups are returned in (quantifier, size, lexicographic) order, so output
/// is deterministic.
pub fn query_analysis(block: &QueryBlock, max_enumeration: usize) -> Vec<CandidateGroup> {
    let mut out = Vec::new();
    for qun in 0..block.quns.len() {
        let preds = block.local_predicates_of(qun);
        if preds.is_empty() {
            continue;
        }
        let subsets = if preds.len() <= max_enumeration {
            power_set(&preds)
        } else {
            capped_subsets(&preds)
        };
        for pred_indices in subsets {
            let colgroup = block.colgroup_of(&pred_indices);
            let is_region = block.group_is_region(&pred_indices);
            out.push(CandidateGroup {
                qun,
                pred_indices,
                colgroup,
                is_region,
            });
        }
    }
    out
}

/// All non-empty subsets, ordered by size then lexicographically.
fn power_set(preds: &[usize]) -> Vec<Vec<usize>> {
    let n = preds.len();
    let mut subsets: Vec<Vec<usize>> = (1u32..(1 << n))
        .map(|mask| {
            (0..n)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| preds[b])
                .collect()
        })
        .collect();
    subsets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    subsets
}

/// Bounded enumeration for very wide predicate sets: singletons, pairs, and
/// the full group.
fn capped_subsets(preds: &[usize]) -> Vec<Vec<usize>> {
    let mut subsets: Vec<Vec<usize>> = preds.iter().map(|&p| vec![p]).collect();
    for i in 0..preds.len() {
        for j in i + 1..preds.len() {
            subsets.push(vec![preds[i], preds[j]]);
        }
    }
    subsets.push(preds.to_vec());
    subsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_catalog::Catalog;
    use jits_common::{DataType, Schema};
    use jits_query::{bind_statement, parse, BoundStatement};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_table(
            "car",
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("make", DataType::Str),
                ("model", DataType::Str),
                ("year", DataType::Int),
            ]),
        )
        .unwrap();
        c.register_table(
            "owner",
            Schema::from_pairs(&[("id", DataType::Int), ("salary", DataType::Int)]),
        )
        .unwrap();
        c
    }

    fn block(sql: &str) -> QueryBlock {
        let BoundStatement::Select(b) = bind_statement(&parse(sql).unwrap(), &catalog()).unwrap()
        else {
            panic!()
        };
        b
    }

    #[test]
    fn paper_example_enumeration() {
        // §3.2: make/model/year on car -> 3 singletons + 3 pairs + 1 triple
        let b =
            block("SELECT * FROM car WHERE make = 'Toyota' AND model = 'Corolla' AND year > 2000");
        let groups = query_analysis(&b, 6);
        assert_eq!(groups.len(), 7);
        assert_eq!(
            groups.iter().filter(|g| g.pred_indices.len() == 1).count(),
            3
        );
        assert_eq!(
            groups.iter().filter(|g| g.pred_indices.len() == 2).count(),
            3
        );
        assert_eq!(
            groups.iter().filter(|g| g.pred_indices.len() == 3).count(),
            1
        );
        assert!(groups.iter().all(|g| g.qun == 0 && g.is_region));
    }

    #[test]
    fn groups_enumerated_per_table() {
        let b = block(
            "SELECT * FROM car c, owner o WHERE c.id = o.id \
             AND make = 'Toyota' AND year > 2000 AND salary > 5000",
        );
        let groups = query_analysis(&b, 6);
        // car: 2 preds -> 3 groups; owner: 1 pred -> 1 group
        assert_eq!(groups.len(), 4);
        assert_eq!(groups.iter().filter(|g| g.qun == 0).count(), 3);
        assert_eq!(groups.iter().filter(|g| g.qun == 1).count(), 1);
        // join predicates contribute no candidate groups
    }

    #[test]
    fn tables_without_local_predicates_skipped() {
        let b = block("SELECT * FROM car c, owner o WHERE c.id = o.id");
        assert!(query_analysis(&b, 6).is_empty());
    }

    #[test]
    fn noteq_groups_flagged_as_non_region() {
        let b = block("SELECT * FROM car WHERE make <> 'Toyota' AND year > 2000");
        let groups = query_analysis(&b, 6);
        let full = groups.iter().find(|g| g.pred_indices.len() == 2).unwrap();
        assert!(!full.is_region);
        let year_only = groups.iter().find(|g| g.pred_indices == vec![1]).unwrap();
        assert!(year_only.is_region);
    }

    #[test]
    fn wide_predicate_sets_are_capped() {
        let b = block(
            "SELECT * FROM car WHERE id > 0 AND id < 100 AND make = 'a' AND model = 'b' \
             AND year > 1 AND year < 9 AND id <> 5 AND make <> 'c'",
        );
        // 8 predicates: full power set would be 255 groups
        let groups = query_analysis(&b, 6);
        // capped: 8 singles + 28 pairs + 1 full = 37
        assert_eq!(groups.len(), 37);
        // uncapped for comparison
        let groups = query_analysis(&b, 8);
        assert_eq!(groups.len(), 255);
    }

    #[test]
    fn deterministic_ordering() {
        let b =
            block("SELECT * FROM car WHERE make = 'Toyota' AND model = 'Corolla' AND year > 2000");
        let a = query_analysis(&b, 6);
        let c = query_analysis(&b, 6);
        assert_eq!(a, c);
        // sizes non-decreasing within a quantifier
        for w in a.windows(2) {
            if w[0].qun == w[1].qun {
                assert!(w[0].pred_indices.len() <= w[1].pred_indices.len());
            }
        }
    }
}
