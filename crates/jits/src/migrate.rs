//! Statistics migration — folding QSS back into the system catalog.
//!
//! Paper §3.1: "The information in the QSS archive can be used to
//! periodically update the system catalog using the Statistics Migration
//! module." One-dimensional archive histograms translate directly into
//! catalog distribution histograms; multi-dimensional ones have no catalog
//! representation (the catalog stores general statistics only) and are left
//! in the archive.

use crate::archive::QssArchive;
use jits_catalog::{Catalog, ColumnStats, TableStats};
use jits_common::DataType;
use jits_histogram::EquiDepth;

/// Migrates all one-dimensional archive histograms into the catalog's
/// column statistics. Returns the number of columns updated.
pub fn migrate(archive: &QssArchive, catalog: &mut Catalog, clock: u64) -> usize {
    let mut updates = Vec::new();
    for (group, hist) in archive.iter() {
        if group.arity() != 1 {
            continue;
        }
        let boundaries = hist.boundaries()[0].clone();
        let counts = hist.counts().to_vec();
        updates.push((
            group.table(),
            group.columns()[0],
            boundaries,
            counts,
            hist.total(),
        ));
    }
    let mut n = 0;
    for (table, column, boundaries, counts, total) in updates {
        let Some(entry) = catalog.table_mut(table) else {
            continue;
        };
        let Some(dtype) = entry.schema.column(column).map(|c| c.dtype) else {
            continue;
        };
        let histogram = EquiDepth::from_buckets(boundaries, counts);
        let slot = &mut entry.column_stats[column.index()];
        match slot {
            Some(cs) => {
                cs.histogram = histogram;
                cs.row_count = total;
                cs.collected_at = clock;
            }
            None => {
                *slot = Some(ColumnStats {
                    dtype,
                    min: None,
                    max: None,
                    distinct: distinct_guess(&histogram, dtype),
                    null_count: 0.0,
                    row_count: total,
                    mcv: Vec::new(),
                    histogram,
                    collected_at: clock,
                });
            }
        }
        // a migrated histogram also refreshes the table cardinality
        match &mut entry.table_stats {
            Some(ts) if ts.collected_at < clock => {
                ts.row_count = total;
                ts.collected_at = clock;
            }
            None => {
                entry.table_stats = Some(TableStats {
                    row_count: total,
                    collected_at: clock,
                });
            }
            _ => {}
        }
        n += 1;
    }
    n
}

fn distinct_guess(h: &EquiDepth, dtype: DataType) -> f64 {
    match dtype {
        DataType::Int => h.distinct_total(),
        _ => h.distinct_total().max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{ColGroup, ColumnId, Schema, TableId, Value};
    use jits_histogram::Region;

    fn setup() -> (Catalog, QssArchive) {
        let mut catalog = Catalog::new();
        catalog
            .register_table(
                "car",
                Schema::from_pairs(&[("id", DataType::Int), ("year", DataType::Int)]),
            )
            .unwrap();
        let mut archive = QssArchive::default();
        // 1-D histogram on year: 80% of 1000 rows have year < 2000
        archive.apply_observation(
            ColGroup::single(TableId(0), ColumnId(1)),
            &Region::new(vec![(1990.0, 2010.0)]),
            &Region::new(vec![(1990.0, 2000.0)]),
            800.0,
            1000.0,
            5,
        );
        // 2-D histogram: must NOT migrate
        archive.apply_observation(
            ColGroup::new(TableId(0), vec![ColumnId(0), ColumnId(1)]),
            &Region::new(vec![(0.0, 100.0), (1990.0, 2010.0)]),
            &Region::new(vec![(0.0, 50.0), (1990.0, 2000.0)]),
            100.0,
            1000.0,
            5,
        );
        (catalog, archive)
    }

    #[test]
    fn one_dimensional_histograms_migrate() {
        let (mut catalog, archive) = setup();
        let n = migrate(&archive, &mut catalog, 9);
        assert_eq!(n, 1);
        let cs = catalog.column_stats(TableId(0), ColumnId(1)).unwrap();
        assert_eq!(cs.collected_at, 9);
        assert_eq!(cs.row_count, 1000.0);
        // the migrated histogram answers range queries with QSS knowledge
        let sel = cs
            .selectivity(&jits_common::Interval::at_most(Value::Int(1999), true))
            .unwrap();
        assert!((sel - 0.8).abs() < 0.05, "sel {sel}");
        // table stats refreshed too
        assert_eq!(catalog.row_count(TableId(0)), Some(1000.0));
    }

    #[test]
    fn multi_dimensional_histograms_stay_in_archive() {
        let (mut catalog, archive) = setup();
        migrate(&archive, &mut catalog, 9);
        assert!(catalog.column_stats(TableId(0), ColumnId(0)).is_none());
        assert_eq!(archive.len(), 2, "archive itself is untouched");
    }

    #[test]
    fn unknown_tables_ignored() {
        let mut catalog = Catalog::new();
        let (_, archive) = setup();
        assert_eq!(migrate(&archive, &mut catalog, 1), 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use jits_common::{ColGroup, ColumnId, Schema, TableId};
    use jits_histogram::Region;

    #[test]
    fn newer_catalog_stats_not_overwritten() {
        let mut catalog = Catalog::new();
        catalog
            .register_table("t", Schema::from_pairs(&[("v", DataType::Int)]))
            .unwrap();
        // catalog already holds stats stamped at clock 100
        catalog
            .set_stats(
                TableId(0),
                TableStats {
                    row_count: 555.0,
                    collected_at: 100,
                },
                vec![ColumnStats {
                    dtype: DataType::Int,
                    min: None,
                    max: None,
                    distinct: 1.0,
                    null_count: 0.0,
                    row_count: 555.0,
                    mcv: vec![],
                    histogram: EquiDepth::build(vec![1.0, 2.0, 3.0], 2),
                    collected_at: 100,
                }],
            )
            .unwrap();
        let mut archive = QssArchive::default();
        archive.apply_observation(
            ColGroup::single(TableId(0), ColumnId(0)),
            &Region::new(vec![(0.0, 10.0)]),
            &Region::new(vec![(0.0, 5.0)]),
            10.0,
            20.0,
            5,
        );
        // migrating at clock 50 (older than the catalog's 100): the column
        // histogram updates, but the newer table stats stay
        migrate(&archive, &mut catalog, 50);
        let ts = catalog
            .table(TableId(0))
            .unwrap()
            .table_stats
            .clone()
            .unwrap();
        assert_eq!(ts.row_count, 555.0, "newer table stats preserved");
        let cs = catalog.column_stats(TableId(0), ColumnId(0)).unwrap();
        assert_eq!(cs.collected_at, 50, "column histogram migrated");
        assert_eq!(cs.row_count, 20.0);
    }
}
