//! The ε-planning sensitivity analysis of Chaudhuri & Narasayya \[6\] —
//! the paper's closest related work (§5.2), implemented as an alternative
//! strategy so the two can be compared head-to-head.
//!
//! > "In the first invocation, all unknown selectivities are set to a very
//! > small value ε > 0. In the second invocation, all unknown selectivities
//! > are set to a large value 1 − ε. If the estimated costs of the two
//! > generated plans are within t% of each other (for a predefined value of
//! > t), the current set of statistics is sufficient. If not, the system
//! > identifies the most important statistic by calling the optimizer again
//! > ... assuming that expensive operators are associated with important
//! > statistics."
//!
//! The paper's criticism — "it requires multiple calls to the optimizer for
//! every statistic, which can be very time-consuming" — is directly
//! measurable here: [`EpsilonOutcome::optimizer_calls`] counts them, and the
//! `ablations` harness compares the two strategies' compile overheads.

use crate::collect::CollectedStats;
use jits_catalog::Catalog;
use jits_common::{ColumnId, Result, TableId};
use jits_optimizer::{
    optimize, CardinalityEstimator, CostModel, DefaultSelectivities, SelEstimate, StatSource,
    StatisticsProvider,
};
use jits_query::QueryBlock;

/// Knobs of the ε-planning strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonConfig {
    /// The small selectivity substituted for unknowns (ε).
    pub epsilon: f64,
    /// Sufficiency threshold: statistics suffice when the two plan costs
    /// are within this fraction of each other.
    pub threshold: f64,
    /// Safety cap on refinement iterations.
    pub max_iterations: usize,
}

impl Default for EpsilonConfig {
    fn default() -> Self {
        EpsilonConfig {
            epsilon: 0.001,
            threshold: 0.2,
            max_iterations: 8,
        }
    }
}

/// What the ε-planning analysis decided.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonOutcome {
    /// Quantifiers whose tables should be sampled.
    pub sample_quns: Vec<usize>,
    /// Optimizer invocations spent deciding (the overhead the paper
    /// criticizes — the lightweight heuristic spends zero).
    pub optimizer_calls: usize,
    /// Final relative plan-cost gap when the loop stopped.
    pub final_gap: f64,
}

/// A provider that answers *known* groups from a base provider and fills
/// every unknown selectivity with a constant (the ε / 1−ε trick). Groups on
/// quantifiers already marked for collection count as known (they will be
/// measured), pinned to a neutral constant so they stop contributing to the
/// cost gap.
struct FillProvider<'a> {
    base: &'a dyn StatisticsProvider,
    fill: f64,
    marked_fill: f64,
    marked_quns: &'a [usize],
}

impl StatisticsProvider for FillProvider<'_> {
    fn table_cardinality(&self, table: TableId) -> Option<f64> {
        self.base.table_cardinality(table)
    }

    fn group_selectivity(
        &self,
        block: &QueryBlock,
        qun: usize,
        pred_indices: &[usize],
    ) -> Option<SelEstimate> {
        if let Some(est) = self.base.group_selectivity(block, qun, pred_indices) {
            return Some(est);
        }
        let fill = if self.marked_quns.contains(&qun) {
            self.marked_fill
        } else {
            self.fill
        };
        Some(SelEstimate {
            selectivity: fill,
            statlist: Vec::new(),
            source: StatSource::Default,
        })
    }

    fn distinct(&self, table: TableId, column: ColumnId) -> Option<f64> {
        self.base.distinct(table, column)
    }
}

/// Runs the \[6\]-style analysis: decide which quantifiers to sample by
/// repeatedly double-optimizing with unknowns at ε and 1−ε.
pub fn epsilon_sensitivity(
    block: &QueryBlock,
    base: &dyn StatisticsProvider,
    cost: &CostModel,
    catalog: &Catalog,
    config: &EpsilonConfig,
) -> Result<EpsilonOutcome> {
    let defaults = DefaultSelectivities::default();
    let mut marked: Vec<usize> = Vec::new();
    let mut calls = 0usize;
    let mut gap = f64::INFINITY;
    let marked_fill = (config.epsilon * (1.0 - config.epsilon)).sqrt();

    for _ in 0..config.max_iterations.max(1) {
        let low = FillProvider {
            base,
            fill: config.epsilon,
            marked_fill,
            marked_quns: &marked,
        };
        let high = FillProvider {
            base,
            fill: 1.0 - config.epsilon,
            marked_fill,
            marked_quns: &marked,
        };
        let est_low = CardinalityEstimator::new(&low, defaults);
        let est_high = CardinalityEstimator::new(&high, defaults);
        let plan_low = optimize(block, &est_low, cost, catalog)?;
        let plan_high = optimize(block, &est_high, cost, catalog)?;
        calls += 2;

        let (c1, c2) = (plan_low.est().cost, plan_high.est().cost);
        gap = (c2 - c1).abs() / c1.max(c2).max(1e-9);
        if gap <= config.threshold {
            break;
        }
        // "expensive operators are associated with important statistics":
        // mark the unmarked quantifier with the costliest base access in the
        // pessimistic plan
        let victim = plan_high
            .scan_estimates()
            .iter()
            .filter(|s| !marked.contains(&s.qun) && !s.pred_indices.is_empty())
            .max_by(|a, b| {
                let ca = a.base_rows * a.selectivity;
                let cb = b.base_rows * b.selectivity;
                ca.total_cmp(&cb)
            })
            .map(|s| s.qun);
        match victim {
            Some(q) => marked.push(q),
            None => break, // everything already marked: give up
        }
    }
    marked.sort_unstable();
    Ok(EpsilonOutcome {
        sample_quns: marked,
        optimizer_calls: calls,
        final_gap: gap,
    })
}

/// Convenience: runs ε-planning against the standard JITS provider layering
/// (fresh stats are empty at decision time).
pub fn epsilon_sensitivity_default(
    block: &QueryBlock,
    archive: &crate::archive::QssArchive,
    catalog: &Catalog,
    tables: &[jits_storage::Table],
    cost: &CostModel,
    config: &EpsilonConfig,
) -> Result<EpsilonOutcome> {
    let empty = CollectedStats::default();
    let provider = crate::provider::JitsStatisticsProvider::new(&empty, archive, catalog, tables);
    epsilon_sensitivity(block, &provider, cost, catalog, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_common::{DataType, Schema, Value};
    use jits_query::{bind_statement, parse, BoundStatement};
    use jits_storage::Table;

    fn setup() -> (Catalog, Vec<Table>) {
        let mut catalog = Catalog::new();
        let car_schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("ownerid", DataType::Int),
            ("make", DataType::Str),
        ]);
        let owner_schema = Schema::from_pairs(&[("id", DataType::Int), ("salary", DataType::Int)]);
        catalog.register_table("car", car_schema.clone()).unwrap();
        catalog
            .register_table("owner", owner_schema.clone())
            .unwrap();
        let mut car = Table::new("car", car_schema);
        for i in 0..2000i64 {
            car.insert(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::str(if i % 3 == 0 { "Toyota" } else { "Honda" }),
            ])
            .unwrap();
        }
        let mut owner = Table::new("owner", owner_schema);
        for i in 0..100i64 {
            owner
                .insert(vec![Value::Int(i), Value::Int(i * 500)])
                .unwrap();
        }
        (catalog, vec![car, owner])
    }

    fn block(catalog: &Catalog, sql: &str) -> QueryBlock {
        let BoundStatement::Select(b) = bind_statement(&parse(sql).unwrap(), catalog).unwrap()
        else {
            panic!()
        };
        b
    }

    #[test]
    fn unknown_selectivities_force_collection() {
        let (catalog, tables) = setup();
        let b = block(
            &catalog,
            "SELECT COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id \
             AND make = 'Toyota' AND salary > 20000",
        );
        let archive = crate::archive::QssArchive::default();
        let out = epsilon_sensitivity_default(
            &b,
            &archive,
            &catalog,
            &tables,
            &CostModel::default(),
            &EpsilonConfig::default(),
        )
        .unwrap();
        // with no statistics anywhere, the ε / 1−ε plans differ wildly
        assert!(!out.sample_quns.is_empty(), "{out:?}");
        assert!(out.optimizer_calls >= 2);
    }

    #[test]
    fn no_predicates_means_no_collection() {
        let (catalog, tables) = setup();
        let b = block(&catalog, "SELECT COUNT(*) FROM car");
        let archive = crate::archive::QssArchive::default();
        let out = epsilon_sensitivity_default(
            &b,
            &archive,
            &catalog,
            &tables,
            &CostModel::default(),
            &EpsilonConfig::default(),
        )
        .unwrap();
        // no unknown selectivities: the two plans are identical
        assert!(out.sample_quns.is_empty(), "{out:?}");
        assert_eq!(out.optimizer_calls, 2);
        assert!(out.final_gap <= 0.2);
    }

    #[test]
    fn loose_threshold_collects_less() {
        let (catalog, tables) = setup();
        let b = block(
            &catalog,
            "SELECT COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id \
             AND make = 'Toyota' AND salary > 20000",
        );
        let archive = crate::archive::QssArchive::default();
        let strict = epsilon_sensitivity_default(
            &b,
            &archive,
            &catalog,
            &tables,
            &CostModel::default(),
            &EpsilonConfig {
                threshold: 0.05,
                ..EpsilonConfig::default()
            },
        )
        .unwrap();
        let loose = epsilon_sensitivity_default(
            &b,
            &archive,
            &catalog,
            &tables,
            &CostModel::default(),
            &EpsilonConfig {
                threshold: 1e9,
                ..EpsilonConfig::default()
            },
        )
        .unwrap();
        assert!(loose.sample_quns.len() <= strict.sample_quns.len());
        assert!(loose.sample_quns.is_empty());
    }

    #[test]
    fn marked_quantifiers_stop_contributing() {
        // once everything is marked, the loop terminates even with a strict
        // threshold (the gap collapses or no victims remain)
        let (catalog, tables) = setup();
        let b = block(
            &catalog,
            "SELECT COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id \
             AND make = 'Toyota' AND salary > 20000",
        );
        let archive = crate::archive::QssArchive::default();
        let out = epsilon_sensitivity_default(
            &b,
            &archive,
            &catalog,
            &tables,
            &CostModel::default(),
            &EpsilonConfig {
                threshold: 1e-12,
                max_iterations: 50,
                ..EpsilonConfig::default()
            },
        )
        .unwrap();
        assert!(out.sample_quns.len() <= 2);
        assert!(out.optimizer_calls <= 2 * (2 + 1));
    }
}
