//! Sensitivity analysis — the paper's Algorithms 2, 3 and 4.
//!
//! Per table, Algorithm 3 combines two scores:
//!
//! * `s1 = 1 − MaxAcc`, where `MaxAcc` is the best historical accuracy of
//!   estimating the table's *full* predicate group: over StatHistory entries
//!   for that group, `errorFactor × Π accuracy(statlist[i], g)` — the
//!   error factor of the estimate times the boundary accuracy of each
//!   statistic it used;
//! * `s2 = min(UDI / cardinality, 1)` — the data-activity signal.
//!
//! If `f(s1, s2) ≥ s_max` the table is marked for sampling; Algorithm 4 then
//! decides, per collected group, whether to materialize it into the QSS
//! archive: existing histograms always update; otherwise the group's
//! usage-weighted historical usefulness must clear `s_max`.

use crate::analysis::CandidateGroup;
use crate::archive::QssArchive;
use crate::config::JitsConfig;
use crate::history::StatHistory;
use crate::predcache::{fingerprint, PredicateCache};
use jits_catalog::Catalog;
use jits_common::{ColGroup, ColumnId, DataType, Interval, TableId};
use jits_query::QueryBlock;
use jits_storage::Table;
use std::collections::BTreeMap;
use std::fmt;

/// Diagnostic scores for one quantifier's table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableScore {
    /// Quantifier index.
    pub qun: usize,
    /// Base table.
    pub table: TableId,
    /// `1 − MaxAcc`: how badly existing statistics estimated this table's
    /// full group historically.
    pub s1: f64,
    /// UDI activity ratio.
    pub s2: f64,
    /// Aggregated score compared against `s_max`.
    pub score: f64,
    /// The verdict.
    pub collect: bool,
}

/// Why Algorithm 4 did (or did not) materialize a candidate group.
#[derive(Debug, Clone, PartialEq)]
pub enum MaterializeReason {
    /// An archive histogram on the group already exists and is refreshed.
    RefreshArchive,
    /// A predicate-cache entry for the fingerprint exists and is refreshed.
    RefreshCache,
    /// `s_max = 0`: the configuration materializes everything collected.
    AlwaysCollects,
    /// Usage-weighted historical usefulness cleared `s_max` (the score).
    Useful(f64),
    /// The group was never used by a recorded estimate, so usefulness is
    /// unknowable.
    NoUsageHistory,
    /// Usage-weighted usefulness fell below `s_max` (the score).
    BelowThreshold(f64),
}

impl fmt::Display for MaterializeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterializeReason::RefreshArchive => write!(f, "refresh existing archive histogram"),
            MaterializeReason::RefreshCache => write!(f, "refresh existing predicate-cache entry"),
            MaterializeReason::AlwaysCollects => write!(f, "s_max = 0: always materialize"),
            MaterializeReason::Useful(s) => write!(f, "usefulness {s:.3} >= s_max"),
            MaterializeReason::NoUsageHistory => write!(f, "no usage history"),
            MaterializeReason::BelowThreshold(s) => write!(f, "usefulness {s:.3} < s_max"),
        }
    }
}

/// One Algorithm 4 verdict, with its rationale (diagnostics/tracing).
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializeDecision {
    /// Quantifier index the candidate belongs to.
    pub qun: usize,
    /// The candidate's column group.
    pub colgroup: ColGroup,
    /// Whether the group will be materialized.
    pub materialize: bool,
    /// Why.
    pub reason: MaterializeReason,
}

/// The outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityDecision {
    /// Per-quantifier scores (diagnostics and experiment logging).
    pub table_scores: Vec<TableScore>,
    /// Quantifiers whose tables should be sampled.
    pub sample_quns: Vec<usize>,
    /// Collected groups to materialize into the QSS archive.
    pub materialize: Vec<CandidateGroup>,
    /// Per-candidate Algorithm 4 verdicts with rationale, for every
    /// candidate of every sampled table (diagnostics/tracing).
    pub materialize_log: Vec<MaterializeDecision>,
}

/// Algorithm 2: mark tables for collection and groups for materialization.
#[allow(clippy::too_many_arguments)]
pub fn sensitivity_analysis(
    block: &QueryBlock,
    candidates: &[CandidateGroup],
    history: &StatHistory,
    archive: &QssArchive,
    predcache: &PredicateCache,
    catalog: &Catalog,
    tables: &[Table],
    config: &JitsConfig,
) -> SensitivityDecision {
    sensitivity_analysis_with_feedback(
        block,
        candidates,
        history,
        archive,
        predcache,
        catalog,
        tables,
        config,
        &BTreeMap::new(),
    )
}

/// [`sensitivity_analysis`] with execution-time estimation-quality feedback:
/// `qerror` maps tables to the last scan-level q-error observed when
/// executing a query over them. A table whose q-error exceeds
/// `config.qerror_threshold` has its accuracy score `s1` floored at
/// `1 − 1/q` — StatHistory may believe its statistics are fine, but the
/// executor just proved otherwise, so re-collection is prioritized for
/// tables that are *actually* mispredicted. Q-errors derive purely from
/// estimated vs. actual row counts, so the boost is deterministic across
/// replay and thread counts.
#[allow(clippy::too_many_arguments)]
pub fn sensitivity_analysis_with_feedback(
    block: &QueryBlock,
    candidates: &[CandidateGroup],
    history: &StatHistory,
    archive: &QssArchive,
    predcache: &PredicateCache,
    catalog: &Catalog,
    tables: &[Table],
    config: &JitsConfig,
    qerror: &BTreeMap<TableId, f64>,
) -> SensitivityDecision {
    let mut decision = SensitivityDecision {
        table_scores: Vec::new(),
        sample_quns: Vec::new(),
        materialize: Vec::new(),
        materialize_log: Vec::new(),
    };
    if config.never_collects() {
        return decision;
    }
    for qun in 0..block.quns.len() {
        let quns_candidates: Vec<&CandidateGroup> =
            candidates.iter().filter(|c| c.qun == qun).collect();
        if quns_candidates.is_empty() {
            continue;
        }
        let score = should_collect_stats(
            block,
            qun,
            &quns_candidates,
            history,
            archive,
            predcache,
            catalog,
            tables,
            config,
            qerror,
        );
        let collect = score.collect;
        decision.table_scores.push(score);
        if !collect {
            continue;
        }
        decision.sample_quns.push(qun);
        for cand in quns_candidates {
            let (materialize, reason) =
                materialize_verdict(block, cand, history, archive, predcache, config);
            if materialize {
                decision.materialize.push(cand.clone());
            }
            decision.materialize_log.push(MaterializeDecision {
                qun,
                colgroup: cand.colgroup.clone(),
                materialize,
                reason,
            });
        }
    }
    decision
}

/// Algorithm 3: is this table's statistics situation bad enough to sample?
#[allow(clippy::too_many_arguments)]
fn should_collect_stats(
    block: &QueryBlock,
    qun: usize,
    candidates: &[&CandidateGroup],
    history: &StatHistory,
    archive: &QssArchive,
    predcache: &PredicateCache,
    catalog: &Catalog,
    tables: &[Table],
    config: &JitsConfig,
    qerror: &BTreeMap<TableId, f64>,
) -> TableScore {
    let table_id = block.quns[qun].table;
    // g <- the group with the maximum number of predicates
    let full = candidates
        .iter()
        .max_by_key(|c| c.pred_indices.len())
        .expect("candidates is non-empty");

    let mut max_acc = 0.0f64;
    for h in history.entries_for(table_id, &full.colgroup) {
        let mut acc = h.accuracy();
        for stat in &h.statlist {
            acc *= statistic_accuracy(
                block,
                qun,
                &full.pred_indices,
                stat,
                archive,
                predcache,
                catalog,
            );
        }
        max_acc = max_acc.max(acc);
    }
    let s1 = 1.0 - max_acc.clamp(0.0, 1.0);
    // Estimation-quality feedback: the executor's last observed q-error on
    // this table overrides an optimistic history — a misprediction just
    // happened, whatever the bookkeeping says. `1 − 1/q` maps q=2 to a 0.5
    // floor and grows toward 1 as mispredictions worsen.
    let s1 = match qerror.get(&table_id) {
        Some(&q) if q > config.qerror_threshold && q > 1.0 => s1.max(1.0 - 1.0 / q),
        _ => s1,
    };

    let s2 = tables
        .get(table_id.index())
        .map(|t| t.udi().activity_ratio(t.row_count() as u64))
        .unwrap_or(1.0);

    let score = config.aggregate.combine(s1, s2);
    let collect = config.always_collects() || score >= config.s_max;
    TableScore {
        qun,
        table: table_id,
        s1,
        s2,
        score,
        collect,
    }
}

/// The accuracy of one stored statistic with respect to (its projection of)
/// the full predicate group — the `accuracy(h.statlist[i], g)` term of
/// Algorithm 3.
///
/// * archive histogram on the statistic's columns → the paper's boundary
///   accuracy over the group's region projected onto those columns;
/// * single-column catalog statistics → the 1-D boundary accuracy;
/// * statistic no longer stored anywhere → 0 (it cannot help at all).
#[allow(clippy::too_many_arguments)]
fn statistic_accuracy(
    block: &QueryBlock,
    qun: usize,
    group_preds: &[usize],
    stat: &ColGroup,
    archive: &QssArchive,
    predcache: &PredicateCache,
    catalog: &Catalog,
) -> f64 {
    // a statlist may record "estimated with defaults" as an empty group
    // list; individual stats are judged here.
    let table = block.quns[qun].table;
    // the auxiliary predicate cache answers an *identical* predicate group
    // exactly (staleness is the UDI signal's job, not accuracy's)
    if stat.table() == table && stat == &block.colgroup_of(group_preds) {
        let fp = fingerprint(block, group_preds);
        if predcache.get(table, &fp).is_some() {
            return 1.0;
        }
    }
    let schema = catalog.table(table).map(|t| t.schema.clone());
    if let Some(schema) = &schema {
        let types = |col: ColumnId| {
            schema
                .column(col)
                .map(|c| c.dtype)
                .unwrap_or(DataType::Float)
        };
        if let Some(acc) =
            crate::gate::archive_accuracy_for(archive, block, qun, group_preds, stat, &types)
        {
            return acc;
        }
    }
    if stat.arity() == 1 {
        if let Some(cs) = catalog.column_stats(table, stat.columns()[0]) {
            let iv = merged_interval(block, group_preds, stat.columns()[0]);
            return match iv {
                Some(iv) => cs.accuracy(&iv),
                None => 1.0, // statistic exists but the group leaves the
                             // column unconstrained
            };
        }
    }
    0.0
}

/// Merged interval the group imposes on one column, if any.
fn merged_interval(block: &QueryBlock, group_preds: &[usize], col: ColumnId) -> Option<Interval> {
    let (intervals, _) = block.constraints_of(group_preds);
    intervals
        .into_iter()
        .find(|(c, _)| *c == col)
        .map(|(_, iv)| iv)
}

/// Algorithm 4: is this statistic worth materializing for future queries?
/// Region-representable groups go to the QSS archive; groups without a
/// region form (e.g. containing `<>`) go to the auxiliary predicate cache
/// (paper §3.4 footnote 1) under the same usefulness rule.
fn materialize_verdict(
    block: &QueryBlock,
    cand: &CandidateGroup,
    history: &StatHistory,
    archive: &QssArchive,
    predcache: &PredicateCache,
    config: &JitsConfig,
) -> (bool, MaterializeReason) {
    // line 2: an existing stored statistic is always refreshed
    if cand.is_region {
        if archive.histogram(&cand.colgroup).is_some() {
            return (true, MaterializeReason::RefreshArchive);
        }
    } else {
        let fp = fingerprint(block, &cand.pred_indices);
        if predcache.get(cand.colgroup.table(), &fp).is_some() {
            return (true, MaterializeReason::RefreshCache);
        }
    }
    if config.always_collects() {
        return (true, MaterializeReason::AlwaysCollects);
    }
    // usage-count-weighted average error factor of entries that *used* this
    // statistic
    let entries: Vec<_> = history.entries_using(&cand.colgroup).collect();
    let f: u64 = entries.iter().map(|e| e.count).sum();
    if f == 0 {
        return (false, MaterializeReason::NoUsageHistory);
    }
    let score: f64 = entries
        .iter()
        .map(|e| e.accuracy() * e.count as f64 / f as f64)
        .sum();
    if score >= config.s_max {
        (true, MaterializeReason::Useful(score))
    } else {
        (false, MaterializeReason::BelowThreshold(score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::query_analysis;
    use crate::collect::group_region;
    use jits_common::{Schema, Value};
    use jits_histogram::Region;
    use jits_query::{bind_statement, parse, BoundStatement};

    fn setup() -> (Catalog, Vec<Table>, QueryBlock, Vec<CandidateGroup>) {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("model", DataType::Str),
        ]);
        catalog.register_table("car", schema.clone()).unwrap();
        let mut t = Table::new("car", schema);
        for i in 0..100i64 {
            t.insert(vec![
                Value::Int(i),
                Value::str("Toyota"),
                Value::str("Camry"),
            ])
            .unwrap();
        }
        t.reset_udi(); // pretend stats were just collected
        let BoundStatement::Select(block) = bind_statement(
            &parse("SELECT * FROM car WHERE make = 'Toyota' AND model = 'Camry'").unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        let candidates = query_analysis(&block, 6);
        (catalog, vec![t], block, candidates)
    }

    fn cfg(s_max: f64) -> JitsConfig {
        JitsConfig {
            s_max,
            ..JitsConfig::default()
        }
    }

    #[test]
    fn no_history_means_collect() {
        let (catalog, tables, block, candidates) = setup();
        let history = StatHistory::new();
        let archive = QssArchive::default();
        let d = sensitivity_analysis(
            &block,
            &candidates,
            &history,
            &archive,
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(0.5),
        );
        // s1 = 1 (no history), s2 = 0 (no UDI) -> score 0.5 >= 0.5
        assert_eq!(d.sample_quns, vec![0]);
        assert_eq!(d.table_scores[0].s1, 1.0);
        assert_eq!(d.table_scores[0].s2, 0.0);
        // but nothing to materialize yet (no usefulness history)
        assert!(d.materialize.is_empty());
    }

    #[test]
    fn smax_one_never_collects() {
        let (catalog, tables, block, candidates) = setup();
        let d = sensitivity_analysis(
            &block,
            &candidates,
            &StatHistory::new(),
            &QssArchive::default(),
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(1.0),
        );
        assert!(d.sample_quns.is_empty());
        assert!(d.table_scores.is_empty());
    }

    #[test]
    fn smax_zero_collects_and_materializes_everything_region() {
        let (catalog, tables, block, candidates) = setup();
        let d = sensitivity_analysis(
            &block,
            &candidates,
            &StatHistory::new(),
            &QssArchive::default(),
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(0.0),
        );
        assert_eq!(d.sample_quns, vec![0]);
        assert_eq!(d.materialize.len(), 3); // all groups are regions
    }

    #[test]
    fn accurate_history_suppresses_collection() {
        let (catalog, tables, block, candidates) = setup();
        let mut history = StatHistory::new();
        let full = candidates
            .iter()
            .max_by_key(|c| c.pred_indices.len())
            .unwrap();
        // a perfectly accurate prior estimate using... itself (a QSS stat
        // whose accuracy comes from the archive)
        let mut archive = QssArchive::default();
        // seed the archive with a histogram whose boundaries sit exactly on
        // the query constants -> accuracy 1
        let types = |col: ColumnId| {
            catalog
                .table(block.quns[0].table)
                .unwrap()
                .schema
                .column(col)
                .unwrap()
                .dtype
        };
        let region = group_region(&block, 0, &full.pred_indices, &types).unwrap();
        let frame = Region::new(
            region
                .ranges()
                .iter()
                .map(|&(lo, hi)| (lo - 1e6, hi + 1e6))
                .collect(),
        );
        archive.apply_observation(full.colgroup.clone(), &frame, &region, 100.0, 100.0, 1);
        history.record(
            block.quns[0].table,
            full.colgroup.clone(),
            vec![full.colgroup.clone()],
            1.0,
            8,
        );
        let d = sensitivity_analysis(
            &block,
            &candidates,
            &history,
            &archive,
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(0.5),
        );
        // MaxAcc = 1 -> s1 = 0; s2 = 0 -> score 0 < 0.5: skip the table
        assert!(d.sample_quns.is_empty(), "scores: {:?}", d.table_scores);

        // Same accurate history, but the executor just observed a 10x
        // misprediction on the table: the q-error feedback floors s1 at
        // 1 - 1/10 = 0.9, overriding the optimistic history.
        let mut feedback = BTreeMap::new();
        feedback.insert(block.quns[0].table, 10.0);
        let d = sensitivity_analysis_with_feedback(
            &block,
            &candidates,
            &history,
            &archive,
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(0.4),
            &feedback,
        );
        assert_eq!(d.sample_quns, vec![0], "scores: {:?}", d.table_scores);
        assert!((d.table_scores[0].s1 - 0.9).abs() < 1e-12);

        // A q-error at or below the threshold leaves the decision alone.
        feedback.insert(block.quns[0].table, 1.5);
        let d = sensitivity_analysis_with_feedback(
            &block,
            &candidates,
            &history,
            &archive,
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(0.4),
            &feedback,
        );
        assert!(d.sample_quns.is_empty(), "scores: {:?}", d.table_scores);
    }

    #[test]
    fn udi_churn_forces_recollection() {
        let (catalog, mut tables, block, candidates) = setup();
        // same accurate history as above, but now churn the table heavily
        let mut history = StatHistory::new();
        let full = candidates
            .iter()
            .max_by_key(|c| c.pred_indices.len())
            .unwrap();
        history.record(block.quns[0].table, full.colgroup.clone(), vec![], 1.0, 8);
        // an entry with an empty statlist and ef=1 gives MaxAcc=1 -> s1=0
        for r in 0..100u32 {
            let _ = tables[0].update(r, ColumnId(1), Value::str("Honda"));
        }
        let d = sensitivity_analysis(
            &block,
            &candidates,
            &history,
            &QssArchive::default(),
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(0.5),
        );
        // s1 = 0 but s2 = 1 -> score 0.5 >= 0.5: collect
        assert_eq!(d.sample_quns, vec![0]);
        assert_eq!(d.table_scores[0].s2, 1.0);
    }

    #[test]
    fn materialize_when_statistic_proved_useful() {
        let (catalog, tables, block, candidates) = setup();
        let mut history = StatHistory::new();
        let joint = candidates
            .iter()
            .find(|c| c.pred_indices.len() == 2)
            .unwrap();
        // the joint stat was used twice with near-perfect error factors
        history.record(
            block.quns[0].table,
            joint.colgroup.clone(),
            vec![joint.colgroup.clone()],
            0.98,
            8,
        );
        let d = sensitivity_analysis(
            &block,
            &candidates,
            &history,
            &QssArchive::default(),
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(0.5),
        );
        assert!(
            d.materialize.iter().any(|c| c.colgroup == joint.colgroup),
            "useful joint group should be materialized: {:?}",
            d.materialize
        );
    }

    #[test]
    fn existing_archive_histogram_always_refreshed() {
        let (catalog, tables, block, candidates) = setup();
        let joint = candidates
            .iter()
            .find(|c| c.pred_indices.len() == 2)
            .unwrap();
        let mut archive = QssArchive::default();
        archive.apply_observation(
            joint.colgroup.clone(),
            &Region::new(vec![(0.0, 1e19), (0.0, 1e19)]),
            &Region::new(vec![(0.0, 1e18), (0.0, 1e18)]),
            10.0,
            100.0,
            1,
        );
        let d = sensitivity_analysis(
            &block,
            &candidates,
            &StatHistory::new(),
            &archive,
            &PredicateCache::default(),
            &catalog,
            &tables,
            &cfg(0.5),
        );
        assert!(d.materialize.iter().any(|c| c.colgroup == joint.colgroup));
    }
}
