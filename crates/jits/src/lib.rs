//! JITS — Just-in-Time Statistics (El-Helw, Ilyas, Lau, Markl, Zuzarte;
//! ICDE 2007).
//!
//! The paper's contribution, reproduced module-for-module against Figure 1's
//! architecture:
//!
//! | Paper module          | This crate                                  |
//! |-----------------------|---------------------------------------------|
//! | Query Analysis        | [`analysis`] (Algorithm 1)                  |
//! | Sensitivity Analysis  | [`sensitivity`] (Algorithms 2, 3, 4)        |
//! | UDI counters          | `jits-storage` ([`jits_storage::UdiCounter`]) |
//! | StatHistory           | [`history`]                                 |
//! | Statistics Collection | [`collect`] (fixed-size sampling)           |
//! | QSS archive           | [`archive`] (max-entropy grid histograms,   |
//! |                       | uniformity-then-LRU eviction)               |
//! | Statistics Migration  | [`migrate`]                                 |
//! | LEO-style feedback    | [`feedback`]                                |
//! | Plan gen & costing    | `jits-optimizer`, fed through [`provider`]  |
//!
//! The flow during query compilation (driven by `jits-engine`):
//!
//! 1. [`analysis::query_analysis`] enumerates candidate predicate groups.
//! 2. [`sensitivity::sensitivity_analysis`] marks tables whose statistics
//!    are stale or inaccurate for sampling, and decides which collected
//!    groups deserve materialization into the archive.
//! 3. [`collect::collect_for_tables`] samples each marked table once and
//!    computes every candidate group's selectivity from the sample.
//! 4. [`provider::JitsStatisticsProvider`] layers fresh sample statistics
//!    over the QSS archive over the catalog during plan costing.
//! 5. After execution, [`feedback::ingest`] turns the executor's
//!    cardinality observations into StatHistory `errorFactor` entries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod archive;
pub mod collect;
pub mod config;
pub mod epsilon;
pub mod feedback;
pub mod gate;
pub mod history;
pub mod migrate;
pub mod predcache;
pub mod provider;
pub mod sensitivity;

pub use analysis::{query_analysis, CandidateGroup};
pub use archive::{ArchiveSnapshot, QssArchive, RefineOutcome};
pub use collect::{
    collect_for_tables, collect_for_tables_parallel, collect_for_tables_sourced,
    collect_for_tables_traced, CollectTiming, CollectedStats, DegradedTable, DrawnSample,
    SampleOrigin, SampleSource, FB_ARCHIVE_STATS, FB_PARTIAL_SAMPLE, FP_COLLECT_BUDGET,
};
pub use config::{AggregateFn, JitsConfig, SensitivityStrategy};
pub use epsilon::{epsilon_sensitivity, EpsilonConfig, EpsilonOutcome};
pub use feedback::ingest;
pub use history::{HistEntry, StatHistory};
pub use predcache::{fingerprint, CachedSelectivity, PredicateCache};
pub use provider::JitsStatisticsProvider;
pub use sensitivity::{
    sensitivity_analysis, sensitivity_analysis_with_feedback, MaterializeDecision,
    MaterializeReason, SensitivityDecision, TableScore,
};
