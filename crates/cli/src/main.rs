//! `jits-sql` — an interactive SQL shell over the JITS engine.
//!
//! ```sh
//! cargo run --release -p jits-cli [-- --scale 0.002]
//! ```
//!
//! Boots the paper's car-insurance database and reads statements from stdin.
//! Besides SQL (`SELECT`/`INSERT`/`UPDATE`/`DELETE`/`EXPLAIN ...`), the
//! shell understands:
//!
//! ```text
//! \setting no-stats | general | workload | jits [s_max]
//! \runstats           collect general statistics on all tables
//! \migrate            fold 1-D QSS histograms into the catalog
//! \stats              show archive / history / catalog status
//! \checkpoint         force a durability checkpoint (needs --data-dir)
//! \trace on|off       per-statement span traces (also: --trace flag)
//! \metrics [prom]     dump the metrics registry (JSON or Prometheus)
//! \analyze SELECT …   execute and print the per-operator profile
//!                     (est/actual rows, q-error, work, wall)
//! \flight [path]      dump the flight recorder as JSON (stdout or file)
//! \help, \quit
//! ```
//!
//! Durability: `--data-dir <path>` opens (or creates) a write-ahead-logged
//! database under `<path>`. A fresh directory is seeded with the
//! car-insurance schema and data; an existing one is *recovered* — last
//! checkpoint plus WAL tail replay — so the statistics plane (QSS archive,
//! history, catalog stats) comes back warm and the first query does not
//! re-sample. Every statement is logged before it runs; `\checkpoint`
//! forces a fuzzy checkpoint on demand.
//!
//! With `--trace`, each statement prints its span tree (parse/bind,
//! analyze, sensitivity, collect, refine, optimize, execute, feedback)
//! to stderr; `--metrics` dumps the registry as JSON on exit.
//!
//! `--dump-flight <path>` writes the flight-recorder ring (the last
//! [`jits_obs::FLIGHT_CAPACITY`] query profiles, degradations, and anomaly
//! markers) to `<path>` as JSON on exit, and also arms anomaly auto-dump:
//! any statement whose max q-error crosses the configured threshold, or
//! that degrades, rewrites the dump immediately — so the black box survives
//! even a crash later in the session.
//!
//! Chaos testing: `--fault-spec 'point=mode:arg[:attempts],...'` installs
//! the deterministic fault plane (e.g. `--fault-spec
//! 'sample.draw=every:3:inf,archive.write=once:2049'`), and `--fault-seed
//! <u64>` (default 0) keys its schedules; replaying with the same seed,
//! spec, and workload reproduces every fault bit-identically. Degradations
//! show up in `SELECT * FROM jits_degradation` and the `jits.degraded.*`
//! counters.

use jits::JitsConfig;
use jits_common::FaultPlane;
use jits_engine::{Database, StatsSetting};
use jits_workload::{create_schema, populate, DataGenConfig};
use std::io::{BufRead, Write};

fn main() {
    let mut scale = 0.002f64;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        scale = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(scale);
    }
    let trace = args.iter().any(|a| a == "--trace");
    let metrics = args.iter().any(|a| a == "--metrics");
    let dump_flight: Option<String> = match args.iter().position(|a| a == "--dump-flight") {
        Some(i) => match args.get(i + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("--dump-flight requires a file path");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let fault_seed: u64 = match args.iter().position(|a| a == "--fault-seed") {
        Some(i) => match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(seed) => seed,
            None => {
                eprintln!("--fault-seed requires an unsigned integer");
                std::process::exit(2);
            }
        },
        None => 0,
    };
    let fault = match args.iter().position(|a| a == "--fault-spec") {
        Some(i) => {
            let Some(spec) = args.get(i + 1) else {
                eprintln!("--fault-spec requires a specification string");
                std::process::exit(2);
            };
            match FaultPlane::from_spec(fault_seed, spec) {
                Ok(plane) => plane,
                Err(e) => {
                    eprintln!("invalid --fault-spec: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => FaultPlane::disabled(),
    };
    let data_dir: Option<String> = match args.iter().position(|a| a == "--data-dir") {
        Some(i) => match args.get(i + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("--data-dir requires a directory path");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let cfg = DataGenConfig {
        scale,
        ..DataGenConfig::default()
    };
    let mut db = match &data_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create --data-dir {dir}: {e}");
                std::process::exit(2);
            }
            match Database::open(cfg.seed, std::path::Path::new(dir)) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("cannot recover {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => Database::new(cfg.seed),
    };
    if db.tables().is_empty() {
        // fresh database (in-memory, or an empty data directory)
        eprintln!("loading the car-insurance database at scale {scale} ...");
        create_schema(&mut db).expect("schema");
        let counts = populate(&mut db, &cfg).expect("populate");
        db.set_setting(StatsSetting::Jits(JitsConfig::default()));
        eprintln!(
            "tables: car={} owner={} demographics={} accidents={}",
            counts[0], counts[1], counts[2], counts[3]
        );
    } else {
        // recovered: schema, data, and warm statistics come from the log
        let r = db.recovery_report();
        eprintln!(
            "recovered {} (checkpoint lsn {}, {} record(s) replayed, {} replay error(s), \
             {} torn byte(s) discarded); statistics are warm: archive has {} histogram(s)",
            data_dir.as_deref().unwrap_or("?"),
            r.checkpoint_lsn.map_or("none".to_string(), |l| l.to_string()),
            r.replayed_records,
            r.replay_errors,
            r.torn_bytes,
            db.archive().len(),
        );
    }
    db.obs().tracer.set_enabled(trace);
    if let Some(path) = &dump_flight {
        // arm anomaly auto-dump so the black box is on disk even if the
        // process dies before the exit-time dump
        db.obs().flight.set_auto_dump(Some(path.clone().into()));
    }
    if fault.is_enabled() {
        eprintln!(
            "fault plane enabled (seed {fault_seed}); degradations: SELECT * FROM jits_degradation"
        );
        db.set_fault_plane(fault);
    }
    eprintln!("ready (JITS enabled; \\help for commands)");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("jits> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            if !meta_command(&mut db, cmd) {
                break;
            }
            continue;
        }
        match db.execute(line) {
            Ok(result) => {
                let shown = result.rows.len().min(40);
                for row in result.rows.iter().take(shown) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    let _ = writeln!(out, "{}", cells.join(" | "));
                }
                if result.rows.len() > shown {
                    let _ = writeln!(out, "... ({} rows total)", result.rows.len());
                }
                if db.obs().tracer.enabled() {
                    if let Some(t) = db.obs().tracer.latest() {
                        eprint!("{}", t.render());
                    }
                }
                let m = &result.metrics;
                eprintln!(
                    "-- {} rows, compile {:.2} ms (work {:.0}), exec {:.2} ms (work {:.0}), sampled {} table(s)",
                    result.rows.len(),
                    m.compile_wall.as_secs_f64() * 1e3,
                    m.compile_work,
                    m.exec_wall.as_secs_f64() * 1e3,
                    m.exec_work,
                    m.sampled_tables,
                );
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if metrics {
        println!("{}", db.metrics_json(true));
    }
    if let Some(path) = &dump_flight {
        match std::fs::write(path, db.obs().flight.to_json(true)) {
            Ok(()) => eprintln!("flight recorder dumped to {path}"),
            Err(e) => eprintln!("cannot dump flight recorder to {path}: {e}"),
        }
    }
}

/// Handles a `\...` meta command; returns false to quit.
fn meta_command(db: &mut Database, cmd: &str) -> bool {
    let parts: Vec<&str> = cmd.split_whitespace().collect();
    match parts.first().copied() {
        Some("q") | Some("quit") | Some("exit") => return false,
        Some("help") => {
            eprintln!("SQL: SELECT / INSERT / UPDATE / DELETE / EXPLAIN SELECT ...");
            eprintln!("\\setting no-stats|general|workload|jits [s_max]");
            eprintln!("\\runstats   \\migrate   \\stats   \\checkpoint   \\quit");
            eprintln!("\\trace on|off   \\metrics [prom]");
            eprintln!("\\analyze SELECT ...   \\flight [path]");
        }
        Some("analyze") => {
            let sql = cmd.trim_start_matches("analyze").trim();
            if sql.is_empty() {
                eprintln!("usage: \\analyze SELECT ...");
            } else {
                match db.explain_analyze(sql) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        Some("flight") => match parts.get(1).copied() {
            Some(path) => match std::fs::write(path, db.obs().flight.to_json(true)) {
                Ok(()) => eprintln!("flight recorder dumped to {path}"),
                Err(e) => eprintln!("cannot dump flight recorder to {path}: {e}"),
            },
            None => println!("{}", db.obs().flight.to_json(true)),
        },
        Some("trace") => match parts.get(1).copied() {
            Some("on") => db.obs().tracer.set_enabled(true),
            Some("off") => db.obs().tracer.set_enabled(false),
            _ => eprintln!(
                "tracing is {}",
                if db.obs().tracer.enabled() {
                    "on"
                } else {
                    "off"
                }
            ),
        },
        Some("metrics") => {
            if parts.get(1).copied() == Some("prom") {
                print!("{}", db.metrics_prometheus());
            } else {
                println!("{}", db.metrics_json(true));
            }
        }
        Some("checkpoint") => match db.checkpoint() {
            Ok(Some(lsn)) => eprintln!("checkpoint written through lsn {lsn}"),
            Ok(None) => eprintln!("in-memory database (start with --data-dir to enable the WAL)"),
            Err(e) => eprintln!("checkpoint failed: {e}"),
        },
        Some("runstats") => match db.runstats_all() {
            Ok(()) => eprintln!("general statistics collected on all tables"),
            Err(e) => eprintln!("error: {e}"),
        },
        Some("migrate") => {
            let n = db.migrate_statistics();
            eprintln!("migrated {n} one-dimensional histogram(s) into the catalog");
        }
        Some("stats") => {
            eprintln!(
                "archive: {} histogram(s), {} bucket(s); history: {} entr(ies); clock {}",
                db.archive().len(),
                db.archive().total_buckets(),
                db.history().len(),
                db.clock()
            );
        }
        Some("setting") => {
            let setting = match parts.get(1).copied() {
                Some("no-stats") => Some(StatsSetting::NoStatistics),
                Some("general") => Some(StatsSetting::CatalogOnly),
                Some("workload") => Some(StatsSetting::ArchiveReadOnly),
                Some("jits") => {
                    let s_max = parts
                        .get(2)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(JitsConfig::default().s_max);
                    Some(StatsSetting::Jits(JitsConfig {
                        s_max,
                        ..JitsConfig::default()
                    }))
                }
                other => {
                    eprintln!("unknown setting {other:?} (no-stats|general|workload|jits)");
                    None
                }
            };
            if let Some(s) = setting {
                let needs_runstats = matches!(s, StatsSetting::CatalogOnly)
                    && db
                        .table_id("car")
                        .and_then(|t| db.catalog().row_count(t))
                        .is_none();
                eprintln!("setting -> {}", s.label());
                if needs_runstats {
                    eprintln!("(catalog is empty — run \\runstats to collect general statistics)");
                }
                db.set_setting(s);
            }
        }
        other => eprintln!("unknown command {other:?} (try \\help)"),
    }
    true
}
