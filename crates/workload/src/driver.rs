//! Experiment driver: builds the database, prepares a statistics setting,
//! runs the workload, and summarizes.

use crate::datagen::{populate, DataGenConfig};
use crate::queries::WorkloadOp;
use crate::schema::create_schema;
use jits::JitsConfig;
use jits_common::Result;
use jits_engine::{Database, QueryMetrics, Session, SharedDatabase, StatsSetting};

/// The four experiment settings of the paper's §4.2.
#[derive(Debug, Clone)]
pub enum Setting {
    /// JITS disabled, no initial statistics.
    NoStats,
    /// JITS disabled, general statistics on all tables and columns.
    GeneralStats,
    /// JITS disabled, general statistics plus pre-collected column-group
    /// statistics for every query in the workload.
    WorkloadStats,
    /// JITS enabled (optionally with a tuned config), no initial statistics.
    Jits(JitsConfig),
}

impl Setting {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Setting::NoStats => "no-stats".into(),
            Setting::GeneralStats => "general-stats".into(),
            Setting::WorkloadStats => "workload-stats".into(),
            Setting::Jits(cfg) => format!("jits(s_max={})", cfg.s_max),
        }
    }
}

/// Creates and populates the evaluation database.
pub fn setup_database(cfg: &DataGenConfig) -> Result<Database> {
    let mut db = Database::new(cfg.seed ^ 0xD1B);
    create_schema(&mut db)?;
    populate(&mut db, cfg)?;
    Ok(db)
}

/// Applies a setting to a freshly populated database: clears or collects
/// statistics as the setting demands. Preparation time is not charged to
/// any query (the paper treats it as prior knowledge).
pub fn prepare(db: &mut Database, setting: &Setting, workload: &[WorkloadOp]) -> Result<()> {
    db.clear_statistics();
    match setting {
        Setting::NoStats => db.set_setting(StatsSetting::NoStatistics),
        Setting::GeneralStats => {
            db.runstats_all()?;
            db.set_setting(StatsSetting::CatalogOnly);
        }
        Setting::WorkloadStats => {
            db.runstats_all()?;
            // "all column groups that occur in all the queries" (§4.2):
            // analyze every workload query and collect its groups up front
            for op in workload.iter().filter(|o| o.is_query) {
                db.precollect_query_stats(&op.sql)?;
            }
            db.set_setting(StatsSetting::ArchiveReadOnly);
        }
        Setting::Jits(cfg) => db.set_setting(StatsSetting::Jits(cfg.clone())),
    }
    Ok(())
}

/// One executed operation's outcome.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Position in the workload.
    pub index: usize,
    /// Whether the op was a read query.
    pub is_query: bool,
    /// Measured metrics.
    pub metrics: QueryMetrics,
}

/// Executes the workload, returning one record per operation.
pub fn run_workload(db: &mut Database, ops: &[WorkloadOp]) -> Result<Vec<RunRecord>> {
    let mut records = Vec::with_capacity(ops.len());
    for (index, op) in ops.iter().enumerate() {
        let result = db.execute(&op.sql)?;
        records.push(RunRecord {
            index,
            is_query: op.is_query,
            metrics: result.metrics,
        });
    }
    Ok(records)
}

/// Knobs of an observed (traced/metered) workload run — the programmatic
/// equivalent of the CLI's `--trace` / `--metrics` flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObserveOptions {
    /// Enable per-statement span tracing for the run.
    pub trace: bool,
    /// Export the metrics registry as JSON after the run.
    pub metrics: bool,
    /// Export the flight-recorder ring as JSON after the run (deterministic
    /// form: wall-clock fields masked, so equal-seed runs dump equal bytes).
    pub flight: bool,
}

/// An observed run's artifacts.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// One record per operation.
    pub records: Vec<RunRecord>,
    /// Rendered span tree of the last traced statement (empty unless
    /// `trace` was set).
    pub last_trace: String,
    /// Metrics-registry JSON including volatile samples (empty unless
    /// `metrics` was set).
    pub metrics_json: String,
    /// Flight-recorder JSON with wall-clock fields masked (empty unless
    /// `flight` was set).
    pub flight_json: String,
}

/// [`run_workload`] with observability: enables the tracer for the run
/// (restoring its prior state afterward) and/or exports the metrics
/// registry when done.
pub fn run_workload_observed(
    db: &mut Database,
    ops: &[WorkloadOp],
    opts: ObserveOptions,
) -> Result<ObservedRun> {
    let was_tracing = db.obs().tracer.enabled();
    db.obs().tracer.set_enabled(opts.trace);
    let outcome = run_workload(db, ops);
    db.obs().tracer.set_enabled(was_tracing);
    let records = outcome?;
    let last_trace = if opts.trace {
        db.obs()
            .tracer
            .latest()
            .map(|t| t.render())
            .unwrap_or_default()
    } else {
        String::new()
    };
    let metrics_json = if opts.metrics {
        db.metrics_json(true)
    } else {
        String::new()
    };
    let flight_json = if opts.flight {
        db.obs().flight.to_json(false)
    } else {
        String::new()
    };
    Ok(ObservedRun {
        records,
        last_trace,
        metrics_json,
        flight_json,
    })
}

/// Executes the workload through one [`Session`] of a [`SharedDatabase`] —
/// the shared-state equivalent of [`run_workload`]. With a session opened
/// first on a fresh conversion ([`Database::into_shared`]), the statement
/// stream replays the `Database` run bit-for-bit; the JITS
/// `collect_threads` knob then changes wall-clock only, never results.
pub fn run_workload_session(session: &mut Session, ops: &[WorkloadOp]) -> Result<Vec<RunRecord>> {
    let mut records = Vec::with_capacity(ops.len());
    for (index, op) in ops.iter().enumerate() {
        let result = session.execute(&op.sql)?;
        records.push(RunRecord {
            index,
            is_query: op.is_query,
            metrics: result.metrics,
        });
    }
    Ok(records)
}

/// Executes the workload across `threads` concurrent sessions of a
/// [`SharedDatabase`], partitioning the operations round-robin. Returns one
/// record per operation, ordered by workload index.
///
/// Unlike the `collect_threads` axis, *session* concurrency interleaves
/// statements nondeterministically, so learned statistics (and therefore
/// plans) can differ run to run — query answers on tables the workload's
/// DML does not touch stay exact.
pub fn run_workload_concurrent(
    db: &SharedDatabase,
    ops: &[WorkloadOp],
    threads: usize,
) -> Result<Vec<RunRecord>> {
    let threads = threads.max(1).min(ops.len().max(1));
    let sessions: Vec<Session> = (0..threads).map(|_| db.session()).collect();
    let mut outcomes: Vec<Result<Vec<RunRecord>>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .into_iter()
            .enumerate()
            .map(|(t, mut session)| {
                scope.spawn(move || -> Result<Vec<RunRecord>> {
                    let mut records = Vec::new();
                    for (index, op) in ops.iter().enumerate().skip(t).step_by(threads) {
                        let result = session.execute(&op.sql)?;
                        records.push(RunRecord {
                            index,
                            is_query: op.is_query,
                            metrics: result.metrics,
                        });
                    }
                    Ok(records)
                })
            })
            .collect();
        for h in handles {
            outcomes.push(h.join().expect("workload session thread panicked"));
        }
    });
    let mut all = Vec::with_capacity(ops.len());
    for outcome in outcomes {
        all.extend(outcome?);
    }
    all.sort_by_key(|r| r.index);
    Ok(all)
}

/// Five-number summary for the paper's Figure 3 box plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boxplot {
    /// Smallest observation.
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

/// Computes the five-number summary (linear-interpolated quantiles).
pub fn boxplot(values: &[f64]) -> Option<Boxplot> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    Some(Boxplot {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{generate_workload, WorkloadSpec};

    fn tiny() -> (DataGenConfig, WorkloadSpec) {
        (
            DataGenConfig {
                scale: 0.001,
                seed: 3,
            },
            WorkloadSpec {
                total_ops: 24,
                dml_every: 6,
                seed: 9,
            },
        )
    }

    #[test]
    fn boxplot_five_numbers() {
        let b = boxplot(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert!(boxplot(&[]).is_none());
        let single = boxplot(&[7.0]).unwrap();
        assert_eq!(single.median, 7.0);
        assert_eq!(single.min, single.max);
    }

    #[test]
    fn workload_runs_under_all_settings() {
        let (dg, ws) = tiny();
        let ops = generate_workload(&ws, &dg);
        for setting in [
            Setting::NoStats,
            Setting::GeneralStats,
            Setting::WorkloadStats,
            Setting::Jits(JitsConfig::default()),
        ] {
            let mut db = setup_database(&dg).unwrap();
            prepare(&mut db, &setting, &ops).unwrap();
            let records = run_workload(&mut db, &ops).unwrap();
            assert_eq!(records.len(), ops.len(), "{}", setting.label());
            assert!(
                records
                    .iter()
                    .filter(|r| r.is_query)
                    .all(|r| r.metrics.exec_work > 0.0),
                "{}",
                setting.label()
            );
        }
    }

    #[test]
    fn workload_stats_prepopulates_archive() {
        let (dg, ws) = tiny();
        let ops = generate_workload(&ws, &dg);
        let mut db = setup_database(&dg).unwrap();
        prepare(&mut db, &Setting::WorkloadStats, &ops).unwrap();
        assert!(!db.archive().is_empty());
    }

    #[test]
    fn jits_setting_actually_samples() {
        let (dg, ws) = tiny();
        let ops = generate_workload(&ws, &dg);
        let mut db = setup_database(&dg).unwrap();
        prepare(&mut db, &Setting::Jits(JitsConfig::default()), &ops).unwrap();
        let records = run_workload(&mut db, &ops).unwrap();
        let sampled: usize = records.iter().map(|r| r.metrics.sampled_tables).sum();
        assert!(sampled > 0, "JITS must sample at least once");
    }

    #[test]
    fn observed_run_returns_trace_and_metrics() {
        let (dg, ws) = tiny();
        let ops = generate_workload(&ws, &dg);
        let mut db = setup_database(&dg).unwrap();
        prepare(&mut db, &Setting::Jits(JitsConfig::default()), &ops).unwrap();
        let observed = run_workload_observed(
            &mut db,
            &ops,
            ObserveOptions {
                trace: true,
                metrics: true,
                flight: true,
            },
        )
        .unwrap();
        assert_eq!(observed.records.len(), ops.len());
        assert!(!observed.last_trace.is_empty());
        assert!(observed.metrics_json.contains("jits.query.statements"));
        assert!(observed.flight_json.contains("\"profile\""));
        assert!(
            !db.obs().tracer.enabled(),
            "tracer state must be restored after the run"
        );
    }

    #[test]
    fn masked_flight_dump_replays_bit_identically() {
        let (dg, ws) = tiny();
        let ops = generate_workload(&ws, &dg);
        let run = |()| {
            let mut db = setup_database(&dg).unwrap();
            prepare(&mut db, &Setting::Jits(JitsConfig::default()), &ops).unwrap();
            run_workload_observed(
                &mut db,
                &ops,
                ObserveOptions {
                    flight: true,
                    ..ObserveOptions::default()
                },
            )
            .unwrap()
            .flight_json
        };
        let a = run(());
        assert!(!a.is_empty());
        assert_eq!(a, run(()), "masked flight dumps must be byte-equal");
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let (dg, ws) = tiny();
        let ops = generate_workload(&ws, &dg);
        let run = |()| {
            let mut db = setup_database(&dg).unwrap();
            prepare(&mut db, &Setting::GeneralStats, &ops).unwrap();
            run_workload(&mut db, &ops)
                .unwrap()
                .iter()
                .map(|r| r.metrics.exec_work)
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(()), run(()));
    }
}

#[cfg(test)]
mod boxplot_edge_tests {
    use super::*;

    #[test]
    fn boxplot_filters_non_finite() {
        let b = boxplot(&[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 3.0);
        assert!(boxplot(&[f64::NAN]).is_none());
    }

    #[test]
    fn boxplot_interpolates_quartiles() {
        let b = boxplot(&[0.0, 10.0]).unwrap();
        assert_eq!(b.q1, 2.5);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q3, 7.5);
    }
}
