//! Synthetic data with the correlations the paper's evaluation relies on.
//!
//! Built-in structure:
//!
//! * **Model → Make** functional dependency (every "Camry" is a "Toyota"),
//!   so `make = X AND model = Y` is exactly the correlated predicate pair
//!   the paper's running example uses;
//! * **City → Country** functional dependency on DEMOGRAPHICS;
//! * Zipf-like skew over makes and cities (popular values dominate);
//! * price correlated with make tier and model year;
//! * salary correlated with age;
//! * accident damage correlated with the car's age (older cars → worse
//!   damage), a *cross-table* correlation reached through the FK.

use crate::schema::paper_row_counts;
use jits_common::{Result, SplitMix64, Value};
use jits_engine::Database;

/// Car makes with their models and a price-tier multiplier.
pub const MAKE_MODELS: &[(&str, &[&str], f64)] = &[
    ("Toyota", &["Camry", "Corolla", "Rav4"], 1.0),
    ("Honda", &["Civic", "Accord"], 1.0),
    ("Ford", &["Focus", "Mustang", "Fiesta"], 0.9),
    ("Volkswagen", &["Golf", "Passat"], 1.1),
    ("Nissan", &["Altima", "Sentra"], 0.9),
    ("Hyundai", &["Elantra", "Tucson"], 0.8),
    ("Audi", &["A4", "Q5"], 1.8),
    ("BMW", &["M3", "X5"], 2.0),
    ("Mercedes", &["C300", "E350"], 2.1),
    ("Porsche", &["Cayenne", "Boxster"], 3.0),
];

/// Cities with their (functionally determined) countries.
pub const CITY_COUNTRY: &[(&str, &str)] = &[
    ("Ottawa", "CA"),
    ("Toronto", "CA"),
    ("Montreal", "CA"),
    ("Vancouver", "CA"),
    ("NewYork", "US"),
    ("Boston", "US"),
    ("Chicago", "US"),
    ("Seattle", "US"),
    ("Austin", "US"),
    ("Denver", "US"),
    ("London", "UK"),
    ("Leeds", "UK"),
    ("Bristol", "UK"),
    ("Munich", "DE"),
    ("Berlin", "DE"),
];

/// Marital statuses.
pub const MARITAL: &[&str] = &["single", "married", "divorced", "widowed"];

/// Model-year range of the fleet.
pub const YEAR_RANGE: (i64, i64) = (1990, 2006);

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DataGenConfig {
    /// Fraction of the paper's Table 2 row counts (1.0 = full size).
    pub scale: f64,
    /// RNG seed; equal seeds give identical databases.
    pub seed: u64,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig {
            scale: 0.02,
            seed: 0x2007_1CDE,
        }
    }
}

impl DataGenConfig {
    /// Scaled row counts per table, in [`crate::schema::TABLE_NAMES`] order.
    pub fn row_counts(&self) -> [usize; 4] {
        let paper = paper_row_counts();
        let mut out = [0usize; 4];
        for (i, (_, n)) in paper.iter().enumerate() {
            out[i] = ((*n as f64) * self.scale).round().max(1.0) as usize;
        }
        out
    }
}

/// Zipf-like sampler over `n` ranks (weight of rank r is `1 / (r + 1)`).
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks.
    pub fn new(n: usize) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / (r as f64 + 1.0);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let total = *self.cumulative.last().expect("n >= 1");
        let x = rng.next_f64() * total;
        self.cumulative
            .partition_point(|c| *c < x)
            .min(self.cumulative.len() - 1)
    }
}

/// Populates all four tables at the configured scale. Returns the row
/// counts loaded. UDI counters are reset afterwards (bulk load is not
/// "activity").
pub fn populate(db: &mut Database, cfg: &DataGenConfig) -> Result<[usize; 4]> {
    let counts = cfg.row_counts();
    let [n_car, n_owner, n_demo, n_acc] = counts;
    let mut rng = SplitMix64::new(cfg.seed);

    // ---- owners ---------------------------------------------------------
    let mut owner_rows = Vec::with_capacity(n_owner);
    for i in 0..n_owner {
        let age = 18 + (rng.next_f64() * rng.next_f64() * 62.0) as i64; // skewed young
                                                                        // salary correlated with age (peaks mid-career) + noise
        let peak = 1.0 - ((age - 48).abs() as f64 / 30.0).min(1.0);
        let salary = (18_000.0 + 90_000.0 * peak * (0.6 + 0.8 * rng.next_f64())) as i64;
        owner_rows.push(vec![
            Value::Int(i as i64),
            Value::str(format!("owner{i}")),
            Value::Int(age),
            Value::Int(salary),
        ]);
    }
    db.load_rows("owner", owner_rows)?;

    // ---- cars -----------------------------------------------------------
    let make_zipf = ZipfSampler::new(MAKE_MODELS.len());
    let mut car_year = Vec::with_capacity(n_car);
    let mut car_rows = Vec::with_capacity(n_car);
    for i in 0..n_car {
        let mk = make_zipf.sample(&mut rng);
        let (make, models, tier) = MAKE_MODELS[mk];
        // first model of each make is the most popular
        let model_rank = (rng.next_f64() * rng.next_f64() * models.len() as f64) as usize;
        let model = models[model_rank.min(models.len() - 1)];
        // expensive makes skew newer
        let span = (YEAR_RANGE.1 - YEAR_RANGE.0) as f64;
        let newness = (rng.next_f64().powf(1.0 / tier)).min(1.0);
        let year = YEAR_RANGE.0 + (newness * span) as i64;
        let age = (YEAR_RANGE.1 - year) as f64;
        let price = 8_000.0 * tier * (1.0 - 0.045 * age).max(0.2) * (0.8 + 0.4 * rng.next_f64());
        car_year.push(year);
        car_rows.push(vec![
            Value::Int(i as i64),
            Value::Int(rng.next_bounded(n_owner as u64) as i64),
            Value::str(make),
            Value::str(model),
            Value::Int(year),
            Value::Float(price.round()),
        ]);
        if car_rows.len() == 50_000 {
            db.load_rows("car", std::mem::take(&mut car_rows))?;
        }
    }
    db.load_rows("car", car_rows)?;

    // ---- demographics (one row per owner id, cyclically) -----------------
    let city_zipf = ZipfSampler::new(CITY_COUNTRY.len());
    let mut demo_rows = Vec::with_capacity(n_demo);
    for i in 0..n_demo {
        let (city, country) = CITY_COUNTRY[city_zipf.sample(&mut rng)];
        let marital = MARITAL[rng.next_index(MARITAL.len())];
        demo_rows.push(vec![
            Value::Int((i % n_owner) as i64),
            Value::str(city),
            Value::str(country),
            Value::str(marital),
        ]);
    }
    db.load_rows("demographics", demo_rows)?;

    // ---- accidents --------------------------------------------------------
    let mut acc_rows = Vec::with_capacity(n_acc);
    for i in 0..n_acc {
        let carid = rng.next_bounded(n_car as u64) as usize;
        let car_age = (YEAR_RANGE.1 - car_year[carid]) as f64;
        // damage correlated with the car's age
        let damage = (500.0 + 2_500.0 * car_age * (0.3 + rng.next_f64())) as i64;
        let year = 2000 + rng.next_bounded(7) as i64;
        acc_rows.push(vec![
            Value::Int(i as i64),
            Value::Int(carid as i64),
            Value::str(format!("driver{}", rng.next_bounded(997))),
            Value::Int(damage),
            Value::Int(year),
        ]);
        if acc_rows.len() == 50_000 {
            db.load_rows("accidents", std::mem::take(&mut acc_rows))?;
        }
    }
    db.load_rows("accidents", acc_rows)?;

    // bulk load is the database's initial state, not churn
    for name in crate::schema::TABLE_NAMES {
        let tid = db.table_id(name).expect("table exists");
        db.reset_udi(tid);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::create_schema;
    use jits_common::ColumnId;

    fn small_db() -> (Database, [usize; 4]) {
        let mut db = Database::new(7);
        create_schema(&mut db).unwrap();
        let cfg = DataGenConfig {
            scale: 0.002,
            seed: 99,
        };
        let counts = populate(&mut db, &cfg).unwrap();
        (db, counts)
    }

    #[test]
    fn row_counts_scale() {
        let (db, counts) = small_db();
        assert_eq!(counts[0], 2_862); // 1,430,798 * 0.002
        for (i, name) in crate::schema::TABLE_NAMES.iter().enumerate() {
            let tid = db.table_id(name).unwrap();
            assert_eq!(db.table(tid).unwrap().row_count(), counts[i]);
        }
    }

    #[test]
    fn model_determines_make() {
        let (db, _) = small_db();
        let tid = db.table_id("car").unwrap();
        let t = db.table(tid).unwrap();
        let mut seen: std::collections::HashMap<String, String> = std::collections::HashMap::new();
        for r in t.scan() {
            let make = t.value(r, ColumnId(2)).as_str().unwrap().to_string();
            let model = t.value(r, ColumnId(3)).as_str().unwrap().to_string();
            if let Some(prev) = seen.insert(model.clone(), make.clone()) {
                assert_eq!(prev, make, "model {model} maps to two makes");
            }
        }
        assert!(seen.len() >= 10, "many models generated");
    }

    #[test]
    fn city_determines_country() {
        let (db, _) = small_db();
        let tid = db.table_id("demographics").unwrap();
        let t = db.table(tid).unwrap();
        for r in t.scan().take(500) {
            let city = t.value(r, ColumnId(1)).as_str().unwrap().to_string();
            let country = t.value(r, ColumnId(2)).as_str().unwrap().to_string();
            let expected = CITY_COUNTRY
                .iter()
                .find(|(c, _)| *c == city)
                .map(|(_, k)| *k)
                .unwrap();
            assert_eq!(country, expected);
        }
    }

    #[test]
    fn make_distribution_is_skewed() {
        let (db, counts) = small_db();
        let tid = db.table_id("car").unwrap();
        let t = db.table(tid).unwrap();
        let toyota = t
            .scan()
            .filter(|&r| t.value(r, ColumnId(2)) == Value::str("Toyota"))
            .count();
        let porsche = t
            .scan()
            .filter(|&r| t.value(r, ColumnId(2)) == Value::str("Porsche"))
            .count();
        assert!(
            toyota > porsche * 4,
            "Zipf skew expected: toyota {toyota} vs porsche {porsche} of {}",
            counts[0]
        );
    }

    #[test]
    fn damage_correlates_with_car_age() {
        let (db, _) = small_db();
        let cars = db.table(db.table_id("car").unwrap()).unwrap();
        let accs = db.table(db.table_id("accidents").unwrap()).unwrap();
        let mut old_sum = 0.0;
        let mut old_n = 0.0;
        let mut new_sum = 0.0;
        let mut new_n = 0.0;
        for r in accs.scan() {
            let carid = accs.value(r, ColumnId(1)).as_i64().unwrap() as u32;
            let year = cars.value(carid, ColumnId(4)).as_i64().unwrap();
            let damage = accs.value(r, ColumnId(3)).as_i64().unwrap() as f64;
            if year < 1995 {
                old_sum += damage;
                old_n += 1.0;
            } else if year > 2003 {
                new_sum += damage;
                new_n += 1.0;
            }
        }
        assert!(old_sum / old_n > 2.0 * (new_sum / new_n));
    }

    #[test]
    fn generation_is_deterministic() {
        let (db1, _) = small_db();
        let (db2, _) = small_db();
        let t1 = db1.table(db1.table_id("car").unwrap()).unwrap();
        let t2 = db2.table(db2.table_id("car").unwrap()).unwrap();
        for r in t1.scan().take(100) {
            assert_eq!(t1.row(r), t2.row(r));
        }
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let z = ZipfSampler::new(10);
        let mut rng = SplitMix64::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] * 5);
        assert!(counts.iter().all(|&c| c > 0));
    }
}
