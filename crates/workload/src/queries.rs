//! The 840-operation workload generator.
//!
//! §4.2: "a workload of 840 queries, including data updates to simulate a
//! real-world operational database". Queries draw their constants from the
//! generator's correlated domains (make/model pairs that really co-occur,
//! city/country pairs that really match), so the independence assumption is
//! wrong for them in exactly the way the paper exploits. DML batches shift
//! the data — a rotating "trending make" floods the fleet, old accidents
//! are purged, prices are repriced — so statistics collected early go stale
//! by the middle of the run.

use crate::datagen::{DataGenConfig, ZipfSampler, CITY_COUNTRY, MAKE_MODELS, YEAR_RANGE};
use jits_common::SplitMix64;

/// One workload operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOp {
    /// The SQL text.
    pub sql: String,
    /// Whether this is a read query (vs. a DML statement).
    pub is_query: bool,
}

/// Workload shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Total operations (the paper uses 840).
    pub total_ops: usize,
    /// Every n-th operation is a DML batch.
    pub dml_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            total_ops: 840,
            dml_every: 12,
            seed: 77,
        }
    }
}

/// Generates the operation stream. `datagen` supplies the id ranges DML
/// inserts must respect.
pub fn generate_workload(spec: &WorkloadSpec, datagen: &DataGenConfig) -> Vec<WorkloadOp> {
    let mut rng = SplitMix64::new(spec.seed);
    let counts = datagen.row_counts();
    let mut gen = Generator {
        rng: &mut rng,
        next_car_id: counts[0] as i64,
        next_owner_id: counts[1] as i64,
        next_accident_id: counts[3] as i64,
        dml_batches_emitted: 0,
    };
    let mut ops = Vec::with_capacity(spec.total_ops);
    for i in 0..spec.total_ops {
        if spec.dml_every > 0 && i % spec.dml_every == spec.dml_every - 1 {
            ops.push(gen.dml());
        } else {
            ops.push(gen.query());
        }
    }
    ops
}

struct Generator<'a> {
    rng: &'a mut SplitMix64,
    next_car_id: i64,
    next_owner_id: i64,
    next_accident_id: i64,
    dml_batches_emitted: usize,
}

impl Generator<'_> {
    /// A correlated (make, model) pair: the model genuinely belongs to the
    /// make, drawn with the same Zipf skew the data uses.
    fn make_model(&mut self) -> (&'static str, &'static str) {
        let zipf = ZipfSampler::new(MAKE_MODELS.len());
        let (make, models, _) = MAKE_MODELS[zipf.sample(self.rng)];
        (make, models[self.rng.next_index(models.len())])
    }

    fn city_country(&mut self) -> (&'static str, &'static str) {
        let zipf = ZipfSampler::new(CITY_COUNTRY.len());
        CITY_COUNTRY[zipf.sample(self.rng)]
    }

    fn year_cut(&mut self) -> i64 {
        YEAR_RANGE.0
            + 3
            + self
                .rng
                .next_bounded((YEAR_RANGE.1 - YEAR_RANGE.0 - 4) as u64) as i64
    }

    fn salary_cut(&mut self) -> i64 {
        20_000 + self.rng.next_bounded(80) as i64 * 1_000
    }

    fn damage_cut(&mut self) -> i64 {
        2_000 + self.rng.next_bounded(30) as i64 * 1_000
    }

    fn query(&mut self) -> WorkloadOp {
        let sql = match self.rng.next_bounded(12) {
            // single-table car query with the correlated make/model pair
            0 | 1 => {
                let (make, model) = self.make_model();
                let year = self.year_cut();
                format!(
                    "SELECT COUNT(*) FROM car WHERE make = '{make}' \
                     AND model = '{model}' AND year > {year}"
                )
            }
            // car x owner
            2 | 3 => {
                let (make, model) = self.make_model();
                let salary = self.salary_cut();
                format!(
                    "SELECT o.name FROM car c, owner o WHERE c.ownerid = o.id \
                     AND make = '{make}' AND model = '{model}' AND salary > {salary}"
                )
            }
            // owner x demographics with the correlated city/country pair
            4 | 5 => {
                let (city, country) = self.city_country();
                let age = 25 + self.rng.next_bounded(35) as i64;
                format!(
                    "SELECT o.name FROM owner o, demographics d \
                     WHERE d.ownerid = o.id AND city = '{city}' \
                     AND country = '{country}' AND age > {age}"
                )
            }
            // car x accidents with the cross-table damage correlation
            6 | 7 => {
                let (make, model) = self.make_model();
                let damage = self.damage_cut();
                format!(
                    "SELECT COUNT(*) FROM car c, accidents a WHERE a.carid = c.id \
                     AND make = '{make}' AND model = '{model}' AND damage > {damage}"
                )
            }
            // IN-list over a correlated make set (no region form: exercises
            // the footnote-1 predicate cache)
            9 => {
                let zipf = ZipfSampler::new(MAKE_MODELS.len());
                let a = zipf.sample(self.rng);
                let mut b = zipf.sample(self.rng);
                if b == a {
                    b = (b + 1) % MAKE_MODELS.len();
                }
                let year = self.year_cut();
                format!(
                    "SELECT COUNT(*) FROM car WHERE make IN ('{}', '{}') AND year > {year}",
                    MAKE_MODELS[a].0, MAKE_MODELS[b].0
                )
            }
            // OLAP rollup: accident damage per make (aggregates + grouping,
            // the DSS shape the paper's introduction motivates)
            8 => {
                let damage = self.damage_cut();
                let year = self.year_cut();
                format!(
                    "SELECT make, COUNT(*), AVG(damage) FROM car c, accidents a \
                     WHERE a.carid = c.id AND damage > {damage} AND c.year > {year} \
                     GROUP BY make"
                )
            }
            // the paper's §4.1 four-way join, with rotating constants
            _ => {
                let (make, model) = self.make_model();
                let (city, country) = self.city_country();
                let salary = self.salary_cut();
                format!(
                    "SELECT o.name, driver, damage \
                     FROM car c, accidents a, demographics d, owner o \
                     WHERE d.ownerid = o.id AND a.carid = c.id AND c.ownerid = o.id \
                     AND make = '{make}' AND model = '{model}' AND city = '{city}' \
                     AND country = '{country}' AND salary > {salary}"
                )
            }
        };
        WorkloadOp {
            sql,
            is_query: true,
        }
    }

    fn dml(&mut self) -> WorkloadOp {
        self.dml_batches_emitted += 1;
        // the "trending make" and "trending city" rotate as the workload
        // progresses, so distributions drift away from any early statistics
        let trend = MAKE_MODELS[(self.dml_batches_emitted / 4) % MAKE_MODELS.len()];
        let trend_city = CITY_COUNTRY[(self.dml_batches_emitted / 3) % CITY_COUNTRY.len()];
        let car_burst = (self.next_car_id as usize / 150).max(25);
        let acc_burst = (self.next_accident_id as usize / 150).max(25);
        let sql = match self.rng.next_bounded(6) {
            // insert a burst of trending cars (newest model years)
            0 => {
                let rows: Vec<String> = (0..car_burst)
                    .map(|_| {
                        let id = self.next_car_id;
                        self.next_car_id += 1;
                        let owner = self.rng.next_bounded(self.next_owner_id as u64);
                        let model = trend.1[self.rng.next_index(trend.1.len())];
                        let year = YEAR_RANGE.1 - self.rng.next_bounded(2) as i64;
                        let price = 9_000 + self.rng.next_bounded(30_000);
                        format!(
                            "({id}, {owner}, '{}', '{model}', {year}, {price}.0)",
                            trend.0
                        )
                    })
                    .collect();
                format!("INSERT INTO car VALUES {}", rows.join(", "))
            }
            // purge low-damage accidents (shrinks and reshapes ACCIDENTS)
            1 => {
                let cut = 900 + self.rng.next_bounded(600);
                format!("DELETE FROM accidents WHERE damage < {cut}")
            }
            // reprice one make (price distribution drifts per make)
            2 => {
                let (make, _, _) = MAKE_MODELS[self.rng.next_index(MAKE_MODELS.len())];
                let price = 3_000 + self.rng.next_bounded(25_000);
                format!("UPDATE car SET price = {price}.0 WHERE make = '{make}'")
            }
            // a slice of owners moves to the trending city (shifts the
            // city/country distribution and puts UDI on DEMOGRAPHICS)
            3 => {
                let span = (self.next_owner_id / 40).max(1);
                let lo = self.rng.next_bounded(self.next_owner_id as u64) as i64;
                format!(
                    "UPDATE demographics SET city = '{}', country = '{}' \
                     WHERE ownerid BETWEEN {lo} AND {}",
                    trend_city.0,
                    trend_city.1,
                    lo + span
                )
            }
            // raises for a salary band (shifts OWNER's salary distribution)
            4 => {
                let lo = 20_000 + self.rng.next_bounded(60) as i64 * 1_000;
                let new = lo + 15_000 + self.rng.next_bounded(20_000) as i64;
                format!(
                    "UPDATE owner SET salary = {new} \
                     WHERE salary BETWEEN {lo} AND {}",
                    lo + 8_000
                )
            }
            // new accidents, skewed to recent cars
            _ => {
                let rows: Vec<String> = (0..acc_burst)
                    .map(|_| {
                        let id = self.next_accident_id;
                        self.next_accident_id += 1;
                        let car = self.rng.next_bounded((self.next_car_id as u64).max(1));
                        let damage = 500 + self.rng.next_bounded(20_000);
                        let year = 2006;
                        format!("({id}, {car}, 'driver{}', {damage}, {year})", id % 997)
                    })
                    .collect();
                format!("INSERT INTO accidents VALUES {}", rows.join(", "))
            }
        };
        WorkloadOp {
            sql,
            is_query: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_query::parse;

    #[test]
    fn default_workload_has_840_ops_with_dml() {
        let ops = generate_workload(&WorkloadSpec::default(), &DataGenConfig::default());
        assert_eq!(ops.len(), 840);
        let dml = ops.iter().filter(|o| !o.is_query).count();
        assert_eq!(dml, 840 / 12);
    }

    #[test]
    fn all_operations_parse() {
        let ops = generate_workload(&WorkloadSpec::default(), &DataGenConfig::default());
        for op in &ops {
            parse(&op.sql).unwrap_or_else(|e| panic!("{e}: {}", op.sql));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_workload(&WorkloadSpec::default(), &DataGenConfig::default());
        let b = generate_workload(&WorkloadSpec::default(), &DataGenConfig::default());
        assert_eq!(a, b);
        let c = generate_workload(
            &WorkloadSpec {
                seed: 78,
                ..WorkloadSpec::default()
            },
            &DataGenConfig::default(),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn make_model_pairs_are_correlated() {
        let ops = generate_workload(&WorkloadSpec::default(), &DataGenConfig::default());
        for op in ops.iter().filter(|o| o.is_query) {
            if let Some(make_pos) = op.sql.find("make = '") {
                let make = &op.sql[make_pos + 8..];
                let make = &make[..make.find('\'').unwrap()];
                if let Some(model_pos) = op.sql.find("model = '") {
                    let model = &op.sql[model_pos + 9..];
                    let model = &model[..model.find('\'').unwrap()];
                    let entry = MAKE_MODELS.iter().find(|(m, _, _)| *m == make).unwrap();
                    assert!(
                        entry.1.contains(&model),
                        "{model} is not a {make} model: {}",
                        op.sql
                    );
                }
            }
        }
    }

    #[test]
    fn queries_without_dml() {
        let ops = generate_workload(
            &WorkloadSpec {
                total_ops: 50,
                dml_every: 0,
                seed: 1,
            },
            &DataGenConfig::default(),
        );
        assert_eq!(ops.len(), 50);
        assert!(ops.iter().all(|o| o.is_query));
    }
}
