//! The paper's evaluation database and workload.
//!
//! §4 of the paper evaluates JITS on a four-table car-insurance database
//! (CAR 1,430,798 rows / OWNER 1,000,000 / DEMOGRAPHICS 1,000,000 /
//! ACCIDENTS 4,289,980 — Table 2) with "several primary-key-to-foreign-key
//! relationships ... as well as a number of correlations between attributes,
//! such as Make and Model", driven by "a workload of 840 queries, including
//! data updates to simulate a real-world operational database" (§4.2).
//!
//! The data is proprietary, so this crate synthesizes an equivalent:
//! the same four tables and key relationships, deliberate functional
//! dependencies (Model → Make, City → Country) and correlations (price ↔
//! make tier ↔ year, damage ↔ car age proxy) that make the independence
//! assumption fail exactly where the paper needs it to, Zipf-like skew, and
//! a seeded 840-operation workload mixing SPJ queries with UPDATE / DELETE /
//! INSERT batches that *shift* the distributions over time so pre-collected
//! statistics go stale.

#![forbid(unsafe_code)]

pub mod datagen;
pub mod driver;
pub mod queries;
pub mod schema;

pub use datagen::{populate, DataGenConfig};
pub use driver::{
    boxplot, prepare, run_workload, run_workload_concurrent, run_workload_observed,
    run_workload_session, setup_database, Boxplot, ObserveOptions, ObservedRun, RunRecord, Setting,
};
pub use queries::{generate_workload, WorkloadOp, WorkloadSpec};
pub use schema::{create_schema, paper_row_counts, TABLE_NAMES};
