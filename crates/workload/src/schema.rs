//! DDL for the car-insurance evaluation database.

use jits_common::{DataType, Result, Schema};
use jits_engine::Database;

/// The four evaluation tables, in `TableId` order.
pub const TABLE_NAMES: [&str; 4] = ["car", "owner", "demographics", "accidents"];

/// Row counts from the paper's Table 2.
pub fn paper_row_counts() -> [(&'static str, usize); 4] {
    [
        ("car", 1_430_798),
        ("owner", 1_000_000),
        ("demographics", 1_000_000),
        ("accidents", 4_289_980),
    ]
}

/// Creates the four tables, primary keys and foreign-key indexes.
///
/// Schema (the columns the paper's queries §3.2/§4.1 reference, plus the
/// obvious attributes they imply):
///
/// * `car(id, ownerid, make, model, year, price)` — PK `id`, FK `ownerid`
/// * `owner(id, name, age, salary)` — PK `id`
/// * `demographics(ownerid, city, country, marital)` — FK `ownerid`
/// * `accidents(id, carid, driver, damage, year)` — PK `id`, FK `carid`
pub fn create_schema(db: &mut Database) -> Result<()> {
    db.create_table(
        "car",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("ownerid", DataType::Int),
            ("make", DataType::Str),
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("price", DataType::Float),
        ]),
    )?;
    db.create_table(
        "owner",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("age", DataType::Int),
            ("salary", DataType::Int),
        ]),
    )?;
    db.create_table(
        "demographics",
        Schema::from_pairs(&[
            ("ownerid", DataType::Int),
            ("city", DataType::Str),
            ("country", DataType::Str),
            ("marital", DataType::Str),
        ]),
    )?;
    db.create_table(
        "accidents",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("carid", DataType::Int),
            ("driver", DataType::Str),
            ("damage", DataType::Int),
            ("year", DataType::Int),
        ]),
    )?;

    db.set_primary_key("car", "id")?;
    db.create_index("car", "ownerid")?;
    db.set_primary_key("owner", "id")?;
    db.create_index("demographics", "ownerid")?;
    db.set_primary_key("accidents", "id")?;
    db.create_index("accidents", "carid")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_creates_all_tables() {
        let mut db = Database::new(1);
        create_schema(&mut db).unwrap();
        for name in TABLE_NAMES {
            assert!(db.table_id(name).is_some(), "missing {name}");
        }
        // keys and indexes registered
        let car = db.table_id("car").unwrap();
        assert_eq!(db.catalog().table(car).unwrap().indexed_columns.len(), 2);
    }

    #[test]
    fn paper_counts_match_table2() {
        let counts = paper_row_counts();
        assert_eq!(counts[0].1, 1_430_798);
        assert_eq!(counts[3].1, 4_289_980);
    }
}
