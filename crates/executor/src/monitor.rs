//! Execution statistics and cardinality observations.

use jits_common::{ColGroup, TableId};
use jits_optimizer::StatSource;

/// What kind of node an observation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Sequential scan.
    SeqScan,
    /// Zone-map-pruned scan.
    PrunedScan,
    /// Index scan.
    IndexScan,
    /// Hash join.
    HashJoin,
    /// Index nested-loop join.
    IndexNLJoin,
    /// Nested-loop join.
    NLJoin,
}

impl NodeKind {
    /// Stable lowercase label for profiles, views, and JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::SeqScan => "seq_scan",
            NodeKind::PrunedScan => "pruned_scan",
            NodeKind::IndexScan => "index_scan",
            NodeKind::HashJoin => "hash_join",
            NodeKind::IndexNLJoin => "index_nl_join",
            NodeKind::NLJoin => "nl_join",
        }
    }
}

/// The q-error of a cardinality estimate: `max(est/act, act/est)`, the
/// symmetric multiplicative error used throughout the estimation-quality
/// literature. Guarded so it is total: both sides zero (a correct empty
/// estimate) is a perfect 1.0; exactly one side zero is an unbounded miss.
pub fn q_error(est_rows: f64, actual_rows: f64) -> f64 {
    let est = est_rows.max(0.0);
    let act = actual_rows.max(0.0);
    if est <= 0.0 && act <= 0.0 {
        1.0
    } else if est <= 0.0 || act <= 0.0 {
        f64::INFINITY
    } else {
        (est / act).max(act / est)
    }
}

/// Estimated vs. actual output cardinality of one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeObservation {
    /// Node kind.
    pub kind: NodeKind,
    /// Optimizer's estimate.
    pub est_rows: f64,
    /// What actually came out.
    pub actual_rows: f64,
    /// Work this node charged, in cost-model units. The per-node slice of
    /// [`ExecStats::work`]: the bit-identity contract compares it between
    /// the row and batch executors at every operator boundary, not just in
    /// the final total.
    pub work: f64,
}

impl NodeObservation {
    /// The q-error of this node's estimate (see [`q_error`]).
    pub fn q_error(&self) -> f64 {
        q_error(self.est_rows, self.actual_rows)
    }
}

/// Actual selectivity of a base-table predicate group, paired with how it
/// was estimated — the raw material for StatHistory `errorFactor` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanObservation {
    /// Quantifier index in the block.
    pub qun: usize,
    /// Base table.
    pub table: TableId,
    /// Indices of the applied local predicates.
    pub pred_indices: Vec<usize>,
    /// Estimated joint selectivity.
    pub est_selectivity: f64,
    /// Statistics used for the estimate (the `statlist`).
    pub statlist: Vec<ColGroup>,
    /// Estimate provenance.
    pub source: StatSource,
    /// Rows that actually satisfied the group.
    pub actual_rows: f64,
    /// Live rows in the table at execution time.
    pub table_rows: f64,
}

impl ScanObservation {
    /// Actual selectivity (0 when the table is empty).
    pub fn actual_selectivity(&self) -> f64 {
        if self.table_rows <= 0.0 {
            0.0
        } else {
            (self.actual_rows / self.table_rows).clamp(0.0, 1.0)
        }
    }

    /// The paper's `errorFactor` = estimated / actual selectivity, guarded
    /// against division by zero (an actual of zero with a non-zero estimate
    /// reports a large over-estimate factor).
    pub fn error_factor(&self) -> f64 {
        let actual = self.actual_selectivity();
        if actual > 0.0 {
            self.est_selectivity / actual
        } else if self.est_selectivity > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Work and observations accumulated during one execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Total work in cost-model units (same currency as plan cost).
    pub work: f64,
    /// Per-node estimated-vs-actual cardinalities.
    pub nodes: Vec<NodeObservation>,
    /// Inclusive wall time per node, in nanoseconds, parallel to `nodes`
    /// (same push order). Kept out of [`NodeObservation`] on purpose: the
    /// observation stream is the deterministic, bit-compared half of the
    /// profile, while walls are volatile and masked in replay comparisons.
    pub node_walls: Vec<u64>,
    /// Base-table predicate-group observations for the feedback loop.
    pub scans: Vec<ScanObservation>,
    /// Zone-map block summaries probed by pruned scans. Computed from the
    /// skip list whether or not blocks are physically skipped, so the pair
    /// is part of the bit-compared half of the stats.
    pub blocks_total: u64,
    /// Blocks whose summaries proved no row could match.
    pub blocks_pruned: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(est: f64, actual_rows: f64, table_rows: f64) -> ScanObservation {
        ScanObservation {
            qun: 0,
            table: TableId(0),
            pred_indices: vec![0],
            est_selectivity: est,
            statlist: vec![],
            source: StatSource::Default,
            actual_rows,
            table_rows,
        }
    }

    #[test]
    fn actual_selectivity_and_error_factor() {
        let o = obs(0.2, 500.0, 1000.0);
        assert_eq!(o.actual_selectivity(), 0.5);
        assert!((o.error_factor() - 0.4).abs() < 1e-12); // the paper's example
    }

    #[test]
    fn zero_actual_guard() {
        let o = obs(0.2, 0.0, 1000.0);
        assert_eq!(o.actual_selectivity(), 0.0);
        assert!(o.error_factor().is_infinite());
        let o = obs(0.0, 0.0, 1000.0);
        assert_eq!(o.error_factor(), 1.0);
    }

    #[test]
    fn empty_table_guard() {
        let o = obs(0.5, 0.0, 0.0);
        assert_eq!(o.actual_selectivity(), 0.0);
    }

    #[test]
    fn q_error_is_symmetric_and_guarded() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(200.0, 100.0), 2.0);
        assert_eq!(q_error(100.0, 200.0), 2.0); // under-estimates count too
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert!(q_error(5.0, 0.0).is_infinite());
        assert!(q_error(0.0, 5.0).is_infinite());
        assert_eq!(q_error(-3.0, -7.0), 1.0); // negative inputs clamp to 0
    }
}
