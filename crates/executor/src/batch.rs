//! Vectorized batch execution over columnar gathers.
//!
//! The row executor ([`crate::exec`]) materializes intermediate results as
//! vectors of row-id tuples and calls [`Table::value`] once per *row ×
//! predicate/key* probe — a `Value` clone (and, for strings, an `Arc` bump)
//! each time. This module evaluates the same physical plans columnar:
//!
//! * operators carry **selection vectors** — one `Vec<RowId>` per covered
//!   quantifier, struct-of-arrays instead of the row path's array-of-structs
//!   tuple vectors;
//! * scan predicates evaluate as **bitsets over gathered columns**: every
//!   referenced column is gathered once into a typed dense
//!   [`FrameColumn`] (PR 4's collection-path layout, reused here against
//!   live tables) and each predicate ANDs its verdicts into a `Vec<bool>`;
//! * joins gather their key columns once per side and probe/build over the
//!   dense slices; aggregation accumulates over gathered slices.
//!
//! **Bit-identity contract.** For every plan the batch executor produces the
//! same result rows (values and order), the same `ExecStats.work` (same
//! [`CostModel`] formulas applied to the same counts, in the same order —
//! f64-bit-identical), and the same node/scan observations as the row
//! executor. The argument: `FrameColumn::value(i)` is defined to equal
//! `Table::value(rows[i], c)`, predicates and key comparisons run the same
//! `Value` operations (or a typed integer fast path whose outcome equals
//! `Interval::contains` exactly), hash-join output order is probe-order ×
//! build-insertion-order in both paths, and ORDER BY uses the same stable
//! comparator. The contract is enforced by `tests/batch_executor.rs`.

use crate::exec::{
    accumulate, finish_groups, index_interval, matches_preds, position_in, record_scan, table_of,
    zone_constraints, AggAcc, ExecOptions, ExecOutput,
};
use crate::monitor::{ExecStats, NodeKind, NodeObservation};
use jits_common::{Bound, ColumnId, Interval, JitsError, Result, Value};
use jits_optimizer::{CostModel, PhysicalPlan};
use jits_query::{LocalPredicate, PredKind, Projection, QueryBlock};
use jits_storage::{FrameColumn, FrameValues, Row, RowId, Table};
use std::collections::BTreeMap;

/// A batch in struct-of-arrays form: `sel[i]` is the selection vector of
/// quantifier `quns[i]`, and all selection vectors share length `len`
/// (tuple `t` of the row executor corresponds to `sel[..][t]`).
struct ColumnBatch {
    quns: Vec<usize>,
    sel: Vec<Vec<RowId>>,
    len: usize,
}

impl ColumnBatch {
    fn position_of(&self, qun: usize) -> Result<usize> {
        position_in(&self.quns, qun)
    }

    /// The selection vector of `qun`.
    fn sel_of(&self, qun: usize) -> Result<&[RowId]> {
        let pos = self.position_of(qun)?;
        self.sel.get(pos).map(Vec::as_slice).ok_or_else(|| {
            JitsError::Execution(format!("batch carries no selection vector for qun {qun}"))
        })
    }

    /// Reorders every selection vector by `perm` (ORDER BY).
    fn permute(&mut self, perm: &[usize]) {
        debug_assert!(perm.iter().all(|&i| i < self.len));
        for s in &mut self.sel {
            let reordered: Vec<RowId> = perm.iter().map(|&i| s[i]).collect();
            *s = reordered;
        }
    }

    /// Truncates every selection vector (LIMIT on plain projections).
    fn truncate(&mut self, limit: usize) {
        for s in &mut self.sel {
            s.truncate(limit);
        }
        self.len = self.len.min(limit);
    }
}

/// Executes a physical plan on the batch executor (see module docs for the
/// bit-identity contract with [`crate::exec::execute_with`]'s row path).
pub(crate) fn execute_batch(
    plan: &PhysicalPlan,
    block: &QueryBlock,
    tables: &[Table],
    cost: &CostModel,
    opts: ExecOptions,
) -> Result<ExecOutput> {
    let mut stats = ExecStats::default();
    let mut batch = run_batch(plan, block, tables, cost, opts, &mut stats)?;
    if let Some((qun, col, desc)) = block.order_by {
        let table = table_of(tables, block, qun)?;
        let fc = table.gather_column(col, batch.sel_of(qun)?);
        let n = batch.len as f64;
        let mut perm: Vec<usize> = (0..batch.len).collect();
        // same stable sort and comparator as the row path, over indices
        perm.sort_by(|&a, &b| {
            let ord = fc.value(a).cmp_total(&fc.value(b));
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
        batch.permute(&perm);
        stats.work += cost.sort(n);
    }
    let aggregating = matches!(
        block.projection,
        Projection::CountStar | Projection::Aggregates(_) | Projection::GroupBy { .. }
    );
    if let Some(limit) = block.limit {
        if !aggregating {
            batch.truncate(limit);
        }
    }
    let mut rows = project_batch(&batch, block, tables)?;
    if let Some(limit) = block.limit {
        rows.truncate(limit);
    }
    stats.work += rows.len() as f64 * cost.output_row;
    Ok(ExecOutput { rows, stats })
}

/// Runs one operator (recursively) and, in debug builds, validates the
/// produced batch and the work charged at this operator boundary.
fn run_batch(
    plan: &PhysicalPlan,
    block: &QueryBlock,
    tables: &[Table],
    cost: &CostModel,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<ColumnBatch> {
    #[cfg(debug_assertions)]
    let (work_before, nodes_before) = (stats.work, stats.nodes.len());
    let batch = run_operator(plan, block, tables, cost, opts, stats)?;
    #[cfg(debug_assertions)]
    debug_validate_batch(plan, &batch, stats, work_before, nodes_before);
    Ok(batch)
}

/// Debug-build runtime validator for the batch executor's structural
/// invariants at operator boundaries (the static `batch-bounds` lint pass
/// covers indexing; this covers what only execution can see):
///
/// - every covered quantifier carries a selection vector, all of the
///   batch's length, with no quantifier covered twice;
/// - scan output preserves ascending row-id order (the row path's scan
///   order — joins and ORDER BY may reorder, scans must not);
/// - the operator charged exactly one node observation whose kind matches
///   the plan node, with finite non-negative work, and the running work
///   total grew by a finite non-negative amount (charged-work parity with
///   the row path is then enforced per node by `tests/batch_executor.rs`,
///   which compares the `NodeObservation.work` streams bit for bit).
#[cfg(debug_assertions)]
fn debug_validate_batch(
    plan: &PhysicalPlan,
    batch: &ColumnBatch,
    stats: &ExecStats,
    work_before: f64,
    nodes_before: usize,
) {
    assert_eq!(
        batch.quns.len(),
        batch.sel.len(),
        "batch executor: quns/sel arity mismatch"
    );
    for (q, s) in batch.quns.iter().zip(&batch.sel) {
        assert_eq!(
            s.len(),
            batch.len,
            "batch executor: selection vector of qun {q} disagrees with batch length"
        );
    }
    let mut sorted_quns = batch.quns.clone();
    sorted_quns.sort_unstable();
    sorted_quns.dedup();
    assert_eq!(
        sorted_quns.len(),
        batch.quns.len(),
        "batch executor: a quantifier is covered by two selection vectors"
    );
    let expect_kind = match plan {
        PhysicalPlan::SeqScan { .. } => NodeKind::SeqScan,
        PhysicalPlan::PrunedScan { .. } => NodeKind::PrunedScan,
        PhysicalPlan::IndexScan { .. } => NodeKind::IndexScan,
        PhysicalPlan::HashJoin { .. } => NodeKind::HashJoin,
        PhysicalPlan::IndexNLJoin { .. } => NodeKind::IndexNLJoin,
        PhysicalPlan::NLJoin { .. } => NodeKind::NLJoin,
    };
    match plan {
        PhysicalPlan::SeqScan { .. } | PhysicalPlan::PrunedScan { .. } => {
            // table scans emit row ids in ascending order and both the
            // bitset filter and block skipping preserve it
            for (q, s) in batch.quns.iter().zip(&batch.sel) {
                assert!(
                    s.windows(2).all(|w| w[0] < w[1]),
                    "batch executor: scan selection vector of qun {q} is not strictly \
                     increasing"
                );
            }
        }
        PhysicalPlan::IndexScan { .. } => {
            // index ranges come back in key order, not row-id order, but a
            // scan must still never emit the same row twice
            for (q, s) in batch.quns.iter().zip(&batch.sel) {
                let mut seen = s.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(
                    seen.len(),
                    s.len(),
                    "batch executor: index-scan selection vector of qun {q} repeats a row"
                );
            }
        }
        _ => {}
    }
    assert_eq!(
        stats.nodes.len(),
        nodes_before + node_count(plan),
        "batch executor: wrong number of node observations for this subtree"
    );
    assert_eq!(
        stats.node_walls.len(),
        stats.nodes.len(),
        "batch executor: node wall-time stream out of step with observations"
    );
    let Some(node) = stats.nodes.last() else {
        return; // unreachable: node_count(plan) >= 1, checked just above
    };
    assert_eq!(
        node.kind, expect_kind,
        "batch executor: last node observation does not match the operator"
    );
    assert!(
        node.work.is_finite() && node.work >= 0.0,
        "batch executor: operator charged non-finite or negative work ({})",
        node.work
    );
    let delta = stats.work - work_before;
    assert!(
        delta.is_finite() && delta >= 0.0,
        "batch executor: running work total moved by a non-finite or negative amount ({delta})"
    );
}

/// Number of observation-charging plan nodes in a subtree. The inner side
/// of an index nested-loop join is probed through the index, not run as an
/// operator, so it charges nothing of its own.
#[cfg(debug_assertions)]
fn node_count(plan: &PhysicalPlan) -> usize {
    match plan {
        PhysicalPlan::SeqScan { .. }
        | PhysicalPlan::PrunedScan { .. }
        | PhysicalPlan::IndexScan { .. } => 1,
        PhysicalPlan::HashJoin { build, probe, .. } => 1 + node_count(build) + node_count(probe),
        PhysicalPlan::IndexNLJoin { outer, .. } => 1 + node_count(outer),
        PhysicalPlan::NLJoin { outer, inner, .. } => 1 + node_count(outer) + node_count(inner),
    }
}

fn run_operator(
    plan: &PhysicalPlan,
    block: &QueryBlock,
    tables: &[Table],
    cost: &CostModel,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<ColumnBatch> {
    // inclusive wall per node, mirroring the row path's capture points;
    // volatile and excluded from the bit-identity contract
    let t_node = jits_obs::clock::now_nanos();
    match plan {
        PhysicalPlan::SeqScan { scan, est } => {
            let table = table_of(tables, block, scan.qun)?;
            let rows: Vec<RowId> = table.scan().collect();
            let sel = filter_rows(table, rows, block, &scan.pred_indices);
            let work = cost.seq_scan(table.row_count() as f64, sel.len() as f64);
            stats.work += work;
            record_scan(
                stats,
                scan,
                NodeKind::SeqScan,
                est.rows,
                sel.len(),
                table,
                work,
                jits_obs::clock::now_nanos().saturating_sub(t_node),
            );
            Ok(ColumnBatch {
                quns: vec![scan.qun],
                len: sel.len(),
                sel: vec![sel],
            })
        }
        PhysicalPlan::PrunedScan { scan, est, .. } => {
            debug_assert!(
                jits_optimizer::EST_BLOCK_ROWS == jits_storage::BLOCK_SIZE as f64,
                "optimizer block-size assumption diverged from storage"
            );
            let table = table_of(tables, block, scan.qun)?;
            // same skip list, work formula, and row order as the row path
            // (and as the off-mode full scan — pruning is sound, so the
            // surviving blocks contain every matching row)
            let constraints = zone_constraints(block, &scan.pred_indices);
            let skip = table.skip_list(&constraints);
            let rows: Vec<RowId> = if opts.data_skipping {
                skip.survivors
                    .iter()
                    .flat_map(|&b| table.block_rows(b as usize))
                    .collect()
            } else {
                table.scan().collect()
            };
            let sel = filter_rows(table, rows, block, &scan.pred_indices);
            let work = cost.pruned_scan(
                skip.blocks_total as f64,
                skip.surviving_rows as f64,
                sel.len() as f64,
            );
            stats.work += work;
            stats.blocks_total += skip.blocks_total as u64;
            stats.blocks_pruned += skip.blocks_pruned() as u64;
            record_scan(
                stats,
                scan,
                NodeKind::PrunedScan,
                est.rows,
                sel.len(),
                table,
                work,
                jits_obs::clock::now_nanos().saturating_sub(t_node),
            );
            Ok(ColumnBatch {
                quns: vec![scan.qun],
                len: sel.len(),
                sel: vec![sel],
            })
        }
        PhysicalPlan::IndexScan {
            scan,
            index_column,
            est,
            ..
        } => {
            let table = table_of(tables, block, scan.qun)?;
            let index = table.index(*index_column).ok_or_else(|| {
                JitsError::Execution(format!(
                    "plan expects an index on {index_column} of '{}'",
                    table.name()
                ))
            })?;
            let interval = index_interval(block, &scan.pred_indices, *index_column)?;
            // equality probes route to the hash twin when one exists (same
            // per-key row order as the B-tree, so the candidate stream is
            // identical either way)
            let point_key = if interval.is_point() {
                interval.low.value()
            } else {
                None
            };
            let candidates: Vec<RowId> = match (point_key, table.hash_index(*index_column)) {
                (Some(v), Some(hash)) => hash.lookup_eq(v).to_vec(),
                _ => index.lookup_range(&interval),
            };
            let fetched = candidates.len() as f64;
            let live: Vec<RowId> = candidates
                .into_iter()
                .filter(|&r| table.is_live(r))
                .collect();
            let sel = filter_rows(table, live, block, &scan.pred_indices);
            let work = cost.index_scan(fetched, sel.len() as f64);
            stats.work += work;
            record_scan(
                stats,
                scan,
                NodeKind::IndexScan,
                est.rows,
                sel.len(),
                table,
                work,
                jits_obs::clock::now_nanos().saturating_sub(t_node),
            );
            Ok(ColumnBatch {
                quns: vec![scan.qun],
                len: sel.len(),
                sel: vec![sel],
            })
        }
        PhysicalPlan::HashJoin {
            build,
            probe,
            keys,
            est,
        } => {
            let build_batch = run_batch(build, block, tables, cost, opts, stats)?;
            let probe_batch = run_batch(probe, block, tables, cost, opts, stats)?;
            if keys.is_empty() {
                return Err(JitsError::Execution("hash join without keys".into()));
            }
            let build_cols = gather_keys(&build_batch, block, tables, keys.iter().map(|(b, _)| b))?;
            let probe_cols = gather_keys(&probe_batch, block, tables, keys.iter().map(|(_, p)| p))?;
            let pairs = hash_join_pairs(&build_cols, &probe_cols, build_batch.len, probe_batch.len);
            debug_assert!(pairs
                .iter()
                .all(|&(b, p)| b < build_batch.len && p < probe_batch.len));
            let work = cost.hash_join(
                build_batch.len as f64,
                probe_batch.len as f64,
                pairs.len() as f64,
            );
            stats.work += work;
            stats.nodes.push(NodeObservation {
                kind: NodeKind::HashJoin,
                est_rows: est.rows,
                actual_rows: pairs.len() as f64,
                work,
            });
            stats
                .node_walls
                .push(jits_obs::clock::now_nanos().saturating_sub(t_node));
            let mut quns = build_batch.quns;
            quns.extend(probe_batch.quns);
            let mut sel = Vec::with_capacity(quns.len());
            for s in &build_batch.sel {
                sel.push(pairs.iter().map(|&(b, _)| s[b]).collect());
            }
            for s in &probe_batch.sel {
                sel.push(pairs.iter().map(|&(_, p)| s[p]).collect());
            }
            Ok(ColumnBatch {
                quns,
                len: pairs.len(),
                sel,
            })
        }
        PhysicalPlan::IndexNLJoin {
            outer,
            inner,
            index_column,
            keys,
            est,
        } => {
            let outer_batch = run_batch(outer, block, tables, cost, opts, stats)?;
            let inner_table = table_of(tables, block, inner.qun)?;
            let index = inner_table.index(*index_column).ok_or_else(|| {
                JitsError::Execution(format!(
                    "plan expects an index on {index_column} of '{}'",
                    inner_table.name()
                ))
            })?;
            let Some(&((drive_oq, drive_oc), _)) = keys.first() else {
                return Err(JitsError::Execution(
                    "index nested-loop join without keys".into(),
                ));
            };
            let drive_table = table_of(tables, block, drive_oq)?;
            let drive_col = drive_table.gather_column(drive_oc, outer_batch.sel_of(drive_oq)?);
            // equality probes prefer the hash twin (same per-key row order
            // as the B-tree, so the candidate stream is identical)
            let hash = inner_table.hash_index(*index_column);
            // residual outer key columns, gathered once before the probe loop
            let residual: Vec<(FrameColumn, ColumnId)> = keys[1..]
                .iter()
                .map(|((oq, oc), (_, ic))| {
                    let t = table_of(tables, block, *oq)?;
                    Ok((t.gather_column(*oc, outer_batch.sel_of(*oq)?), *ic))
                })
                .collect::<Result<_>>()?;
            let mut pairs: Vec<(usize, RowId)> = Vec::new();
            let mut fetched_total = 0f64;
            for t in 0..outer_batch.len {
                if !drive_col.validity[t] {
                    continue; // NULL keys never join
                }
                let key = drive_col.value(t);
                let candidates = match hash {
                    Some(h) => h.lookup_eq(&key),
                    None => index.lookup_eq(&key),
                };
                fetched_total += candidates.len() as f64;
                'cand: for &irow in candidates {
                    if !inner_table.is_live(irow)
                        || !matches_preds(inner_table, irow, block, &inner.pred_indices)
                    {
                        continue;
                    }
                    for (fc, ic) in &residual {
                        if !fc.value(t).sql_eq(&inner_table.value(irow, *ic)) {
                            continue 'cand;
                        }
                    }
                    pairs.push((t, irow));
                }
            }
            let per_probe = if outer_batch.len == 0 {
                0.0
            } else {
                fetched_total / outer_batch.len as f64
            };
            let work = cost.index_nl_join(outer_batch.len as f64, per_probe, pairs.len() as f64);
            stats.work += work;
            stats.nodes.push(NodeObservation {
                kind: NodeKind::IndexNLJoin,
                est_rows: est.rows,
                actual_rows: pairs.len() as f64,
                work,
            });
            stats
                .node_walls
                .push(jits_obs::clock::now_nanos().saturating_sub(t_node));
            let mut quns = outer_batch.quns;
            quns.push(inner.qun);
            let mut sel = Vec::with_capacity(quns.len());
            for s in &outer_batch.sel {
                sel.push(pairs.iter().map(|&(t, _)| s[t]).collect());
            }
            sel.push(pairs.iter().map(|&(_, irow)| irow).collect());
            Ok(ColumnBatch {
                quns,
                len: pairs.len(),
                sel,
            })
        }
        PhysicalPlan::NLJoin {
            outer,
            inner,
            keys,
            est,
        } => {
            let outer_batch = run_batch(outer, block, tables, cost, opts, stats)?;
            let inner_batch = run_batch(inner, block, tables, cost, opts, stats)?;
            let outer_cols = gather_keys(&outer_batch, block, tables, keys.iter().map(|(o, _)| o))?;
            let inner_cols = gather_keys(&inner_batch, block, tables, keys.iter().map(|(_, i)| i))?;
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for o in 0..outer_batch.len {
                'inner: for i in 0..inner_batch.len {
                    for k in 0..outer_cols.len() {
                        if !outer_cols[k].value(o).sql_eq(&inner_cols[k].value(i)) {
                            continue 'inner;
                        }
                    }
                    pairs.push((o, i));
                }
            }
            let work = cost.nl_join(
                outer_batch.len as f64,
                inner_batch.len as f64,
                pairs.len() as f64,
            );
            stats.work += work;
            stats.nodes.push(NodeObservation {
                kind: NodeKind::NLJoin,
                est_rows: est.rows,
                actual_rows: pairs.len() as f64,
                work,
            });
            stats
                .node_walls
                .push(jits_obs::clock::now_nanos().saturating_sub(t_node));
            let mut quns = outer_batch.quns;
            quns.extend(inner_batch.quns);
            let mut sel = Vec::with_capacity(quns.len());
            for s in &outer_batch.sel {
                sel.push(pairs.iter().map(|&(o, _)| s[o]).collect());
            }
            for s in &inner_batch.sel {
                sel.push(pairs.iter().map(|&(_, i)| s[i]).collect());
            }
            Ok(ColumnBatch {
                quns,
                len: pairs.len(),
                sel,
            })
        }
    }
}

/// Gathers one key column per join key side, in key order.
fn gather_keys<'a>(
    batch: &ColumnBatch,
    block: &QueryBlock,
    tables: &[Table],
    sides: impl Iterator<Item = &'a (usize, ColumnId)>,
) -> Result<Vec<FrameColumn>> {
    sides
        .map(|(q, c)| {
            let t = table_of(tables, block, *q)?;
            Ok(t.gather_column(*c, batch.sel_of(*q)?))
        })
        .collect()
}

/// Hash-join pair construction: output is probe-order × build-insertion-
/// order, exactly like the row path's tuple loop. NULL keys never join.
fn hash_join_pairs(
    build_cols: &[FrameColumn],
    probe_cols: &[FrameColumn],
    build_len: usize,
    probe_len: usize,
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    // single-Int-key fast path: hash raw i64s, no Value materialization.
    // Output order is unaffected by the hash function (entries keep build
    // insertion order; probes run in probe order).
    if let ([b], [p]) = (build_cols, probe_cols) {
        if let (FrameValues::Int(bv), FrameValues::Int(pv)) = (&b.values, &p.values) {
            let mut ht: std::collections::HashMap<i64, Vec<usize>> =
                std::collections::HashMap::new();
            for (t, &v) in bv.iter().enumerate().take(build_len) {
                if b.validity[t] {
                    ht.entry(v).or_default().push(t);
                }
            }
            for (t, v) in pv.iter().enumerate().take(probe_len) {
                if !p.validity[t] {
                    continue;
                }
                if let Some(matches) = ht.get(v) {
                    for &bi in matches {
                        pairs.push((bi, t));
                    }
                }
            }
            return pairs;
        }
    }
    let mut ht: std::collections::HashMap<Vec<Value>, Vec<usize>> =
        std::collections::HashMap::new();
    for t in 0..build_len {
        if build_cols.iter().any(|fc| !fc.validity[t]) {
            continue;
        }
        let key: Vec<Value> = build_cols.iter().map(|fc| fc.value(t)).collect();
        ht.entry(key).or_default().push(t);
    }
    for t in 0..probe_len {
        if probe_cols.iter().any(|fc| !fc.validity[t]) {
            continue;
        }
        let key: Vec<Value> = probe_cols.iter().map(|fc| fc.value(t)).collect();
        if let Some(matches) = ht.get(&key) {
            for &bi in matches {
                pairs.push((bi, t));
            }
        }
    }
    pairs
}

/// Gathers every predicate column once and keeps the rows passing all
/// predicates (bitset AND), preserving input order.
fn filter_rows(
    table: &Table,
    rows: Vec<RowId>,
    block: &QueryBlock,
    pred_indices: &[usize],
) -> Vec<RowId> {
    if pred_indices.is_empty() {
        return rows;
    }
    let mut cols: BTreeMap<ColumnId, FrameColumn> = BTreeMap::new();
    for &i in pred_indices {
        let c = block.local_predicates[i].column;
        cols.entry(c)
            .or_insert_with(|| table.gather_column(c, &rows));
    }
    let mut keep = vec![true; rows.len()];
    for &i in pred_indices {
        let p = &block.local_predicates[i];
        eval_pred(p, &cols[&p.column], &mut keep);
    }
    rows.into_iter()
        .zip(keep)
        .filter_map(|(r, k)| k.then_some(r))
        .collect()
}

/// ANDs one predicate's verdicts into `keep`. Integer intervals compare
/// dense `i64`s directly; every other shape falls back to
/// [`LocalPredicate::matches`] over [`FrameColumn::value`], which is
/// definitionally identical to the row path.
fn eval_pred(p: &LocalPredicate, fc: &FrameColumn, keep: &mut [bool]) {
    if let (PredKind::Interval(iv), FrameValues::Int(vals)) = (&p.kind, &fc.values) {
        if let Some((lo, hi)) = int_bounds(iv) {
            let in_bounds = |v: i64| {
                lo.is_none_or(|(x, inc)| if inc { v >= x } else { v > x })
                    && hi.is_none_or(|(x, inc)| if inc { v <= x } else { v < x })
            };
            if fc.non_null == fc.len() {
                // the gather proved the slice NULL-free (for pruned scans
                // the zone map's null count already knew), so the per-row
                // validity re-check is hoisted out of the inner loop
                for (i, k) in keep.iter_mut().enumerate() {
                    if *k {
                        *k = in_bounds(vals[i]);
                    }
                }
            } else {
                for (i, k) in keep.iter_mut().enumerate() {
                    if *k {
                        // NULL never matches an interval; bound semantics
                        // mirror Interval::contains over exact i64 compares
                        *k = fc.validity[i] && in_bounds(vals[i]);
                    }
                }
            }
            return;
        }
    }
    for (i, k) in keep.iter_mut().enumerate() {
        if *k {
            *k = p.matches(&fc.value(i));
        }
    }
}

/// The interval's bounds as `(value, inclusive)` pairs when both endpoints
/// are integer or unbounded (`None` = unbounded); `None` otherwise.
#[allow(clippy::type_complexity)]
fn int_bounds(iv: &Interval) -> Option<(Option<(i64, bool)>, Option<(i64, bool)>)> {
    let side = |b: &Bound| match b {
        Bound::Unbounded => Some(None),
        Bound::Inclusive(Value::Int(x)) => Some(Some((*x, true))),
        Bound::Exclusive(Value::Int(x)) => Some(Some((*x, false))),
        _ => None,
    };
    Some((side(&iv.low)?, side(&iv.high)?))
}

fn project_batch(batch: &ColumnBatch, block: &QueryBlock, tables: &[Table]) -> Result<Vec<Row>> {
    match &block.projection {
        Projection::CountStar => Ok(vec![vec![Value::Int(batch.len as i64)]]),
        Projection::Aggregates(aggs) => {
            let row = aggs
                .iter()
                .map(|agg| eval_aggregate_batch(agg, batch, block, tables))
                .collect::<Result<Vec<Value>>>()?;
            Ok(vec![row])
        }
        Projection::GroupBy { keys, items } => {
            eval_group_by_batch(keys, items, batch, block, tables)
        }
        Projection::Wildcard => {
            // gather all columns of every quantifier once, then emit rows in
            // the same qun-major / column-minor order as the row path
            let mut frames: Vec<Vec<FrameColumn>> = Vec::with_capacity(block.quns.len());
            for qun in 0..block.quns.len() {
                let table = table_of(tables, block, qun)?;
                let sel = batch.sel_of(qun)?;
                frames.push(
                    (0..table.schema().len())
                        .map(|c| table.gather_column(ColumnId(c as u32), sel))
                        .collect(),
                );
            }
            let width: usize = frames.iter().map(Vec::len).sum();
            let mut rows = Vec::with_capacity(batch.len);
            for t in 0..batch.len {
                let mut row = Vec::with_capacity(width);
                for cols in &frames {
                    for fc in cols {
                        row.push(fc.value(t));
                    }
                }
                rows.push(row);
            }
            Ok(rows)
        }
        Projection::Columns(cols) => {
            let frames: Vec<FrameColumn> = cols
                .iter()
                .map(|(qun, col)| {
                    let t = table_of(tables, block, *qun)?;
                    Ok(t.gather_column(*col, batch.sel_of(*qun)?))
                })
                .collect::<Result<_>>()?;
            let mut rows = Vec::with_capacity(batch.len);
            for t in 0..batch.len {
                rows.push(frames.iter().map(|fc| fc.value(t)).collect());
            }
            Ok(rows)
        }
    }
}

/// Evaluates one aggregate over the whole batch (no GROUP BY), gathering
/// the input column once and streaming it through the shared accumulator.
fn eval_aggregate_batch(
    agg: &jits_query::BoundAggregate,
    batch: &ColumnBatch,
    block: &QueryBlock,
    tables: &[Table],
) -> Result<Value> {
    let Some((qun, col)) = agg.col else {
        return Ok(Value::Int(batch.len as i64));
    };
    let table = table_of(tables, block, qun)?;
    let fc = table.gather_column(col, batch.sel_of(qun)?);
    let mut acc = AggAcc::new();
    for i in 0..fc.len() {
        accumulate(&mut acc, agg.func, col, fc.value(i))?;
    }
    Ok(acc.finish(agg.func))
}

/// Hash aggregation over gathered key/input columns, one output row per
/// distinct key combination in first-seen order (same as the row path).
fn eval_group_by_batch(
    keys: &[(usize, ColumnId)],
    items: &[jits_query::qgm::GroupItem],
    batch: &ColumnBatch,
    block: &QueryBlock,
    tables: &[Table],
) -> Result<Vec<Row>> {
    use jits_query::qgm::GroupItem;
    let key_cols: Vec<FrameColumn> = keys
        .iter()
        .map(|(q, c)| {
            let t = table_of(tables, block, *q)?;
            Ok(t.gather_column(*c, batch.sel_of(*q)?))
        })
        .collect::<Result<_>>()?;
    // per-item aggregate input columns, gathered once; None for COUNT(*)
    // and for items whose table is missing (mirroring the row path's `.ok()`)
    let agg_cols: Vec<Option<FrameColumn>> = items
        .iter()
        .map(|it| match it {
            GroupItem::Agg(a) => match a.col {
                Some((q, c)) => {
                    let sel = batch.sel_of(q)?;
                    Ok(table_of(tables, block, q)
                        .ok()
                        .map(|t| t.gather_column(c, sel)))
                }
                None => Ok(None),
            },
            GroupItem::Key(_) => Ok(None),
        })
        .collect::<Result<_>>()?;

    // key -> group index; only probed, never iterated (first-seen `order`
    // carries the output order)
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<(Vec<AggAcc>, i64)> = Vec::new();
    let mut groups: std::collections::HashMap<Vec<Value>, usize> = std::collections::HashMap::new();
    for t in 0..batch.len {
        let key: Vec<Value> = key_cols.iter().map(|fc| fc.value(t)).collect();
        let n_items = items.len();
        let gi = *groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            accs.push((vec![AggAcc::new(); n_items], 0));
            accs.len() - 1
        });
        let entry = &mut accs[gi];
        entry.1 += 1;
        for (i, item) in items.iter().enumerate() {
            if let GroupItem::Agg(_) = item {
                if let Some(fc) = &agg_cols[i] {
                    entry.0[i].push(fc.value(t));
                }
            }
        }
    }
    Ok(finish_groups(items, order, accs))
}
