//! Plan execution with cardinality monitoring.
//!
//! Two executors share one contract: the row path materializes intermediate
//! results as vectors of row-id tuples (one row id per covered quantifier),
//! while the default batch path ([`batch`]) keeps one selection vector per
//! quantifier and evaluates predicates, join keys, and aggregates over
//! columnar gathers. Both charge identical work and record identical
//! observations — [`ExecutorKind`] only selects the evaluation strategy.
//! Two byproducts matter to JITS:
//!
//! * **work accounting** — every operator charges the same
//!   [`CostModel`](jits_optimizer::CostModel) constants the optimizer used
//!   to *estimate* cost, so "actual work" and "estimated cost" are in one
//!   currency and simulated time is machine-independent;
//! * **cardinality observations** — each base-table access records the
//!   actual number of rows satisfying its predicate group next to the
//!   optimizer's estimate and the statistics (`statlist`) that produced it.
//!   This is the LEO-style feedback (paper §5.1, \[14\]) that fills the JITS
//!   StatHistory with `errorFactor` entries.

#![forbid(unsafe_code)]

pub mod batch;
pub mod exec;
pub mod monitor;

pub use exec::{execute, execute_with, execute_with_opts, ExecOptions, ExecOutput, ExecutorKind};
pub use monitor::{ExecStats, NodeKind, NodeObservation, ScanObservation};
