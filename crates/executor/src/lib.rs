//! Plan execution with cardinality monitoring.
//!
//! The executor materializes intermediate results as vectors of row-id
//! tuples (one row id per covered quantifier), so joins move 4-byte ids, not
//! values. Two byproducts matter to JITS:
//!
//! * **work accounting** — every operator charges the same
//!   [`CostModel`](jits_optimizer::CostModel) constants the optimizer used
//!   to *estimate* cost, so "actual work" and "estimated cost" are in one
//!   currency and simulated time is machine-independent;
//! * **cardinality observations** — each base-table access records the
//!   actual number of rows satisfying its predicate group next to the
//!   optimizer's estimate and the statistics (`statlist`) that produced it.
//!   This is the LEO-style feedback (paper §5.1, \[14\]) that fills the JITS
//!   StatHistory with `errorFactor` entries.

#![forbid(unsafe_code)]

pub mod exec;
pub mod monitor;

pub use exec::{execute, ExecOutput};
pub use monitor::{ExecStats, NodeKind, NodeObservation, ScanObservation};
