//! Plan evaluation.

use crate::monitor::{ExecStats, NodeKind, NodeObservation, ScanObservation};
use jits_common::{ColumnId, Interval, JitsError, Result, Value};
use jits_optimizer::{CostModel, PhysicalPlan, ScanGroupEstimate};
use jits_query::ast::AggFunc;
use jits_query::{PredKind, Projection, QueryBlock};
use jits_storage::{Row, RowId, Table};

/// The result of executing a SELECT block.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// Projected result rows.
    pub rows: Vec<Vec<Value>>,
    /// Execution statistics (work + observations).
    pub stats: ExecStats,
}

/// Which of the two executors evaluates the plan.
///
/// Both produce bit-identical results, work charges, and observations; the
/// batch executor replaces per-row `Value` materialization with columnar
/// gathers and selection vectors (see [`crate::batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Row-at-a-time volcano evaluation over row-id tuples.
    Row,
    /// Vectorized evaluation over gathered columns and selection vectors.
    Batch,
}

/// Per-execution options shared by both executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Whether pruned scans physically skip zone-map-pruned blocks. The
    /// skip list is computed and work is charged from it either way, so
    /// rows, work, and observations are bit-identical on and off; the knob
    /// only changes wall-clock time.
    pub data_skipping: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            data_skipping: true,
        }
    }
}

/// A batch of intermediate tuples: `quns[i]` names the quantifier whose row
/// id sits at position `i` of every tuple.
struct Batch {
    quns: Vec<usize>,
    tuples: Vec<Vec<RowId>>,
}

impl Batch {
    fn position_of(&self, qun: usize) -> Result<usize> {
        position_in(&self.quns, qun)
    }
}

/// Index of `qun` within a covered-quantifier list; a typed error (not a
/// panic) when a malformed plan references an uncovered quantifier.
pub(crate) fn position_in(quns: &[usize], qun: usize) -> Result<usize> {
    quns.iter().position(|q| *q == qun).ok_or_else(|| {
        JitsError::Execution(format!("quantifier q{qun} is not covered by the batch"))
    })
}

/// Executes a physical plan for `block` against `tables` (indexed by
/// `TableId`) on the default (batch) executor.
pub fn execute(
    plan: &PhysicalPlan,
    block: &QueryBlock,
    tables: &[Table],
    cost: &CostModel,
) -> Result<ExecOutput> {
    execute_with(ExecutorKind::Batch, plan, block, tables, cost)
}

/// Executes a physical plan on the chosen executor. The two executors are
/// differential-tested bit-identical (rows, `ExecStats.work`, node and scan
/// observations); `kind` only selects the evaluation strategy.
pub fn execute_with(
    kind: ExecutorKind,
    plan: &PhysicalPlan,
    block: &QueryBlock,
    tables: &[Table],
    cost: &CostModel,
) -> Result<ExecOutput> {
    execute_with_opts(kind, plan, block, tables, cost, ExecOptions::default())
}

/// [`execute_with`] with explicit [`ExecOptions`].
pub fn execute_with_opts(
    kind: ExecutorKind,
    plan: &PhysicalPlan,
    block: &QueryBlock,
    tables: &[Table],
    cost: &CostModel,
    opts: ExecOptions,
) -> Result<ExecOutput> {
    match kind {
        ExecutorKind::Row => execute_row(plan, block, tables, cost, opts),
        ExecutorKind::Batch => crate::batch::execute_batch(plan, block, tables, cost, opts),
    }
}

fn execute_row(
    plan: &PhysicalPlan,
    block: &QueryBlock,
    tables: &[Table],
    cost: &CostModel,
    opts: ExecOptions,
) -> Result<ExecOutput> {
    let mut stats = ExecStats::default();
    let mut batch = run(plan, block, tables, cost, opts, &mut stats)?;
    if let Some((qun, col, desc)) = block.order_by {
        let pos = batch.position_of(qun)?;
        let table = table_of(tables, block, qun)?;
        let n = batch.tuples.len() as f64;
        batch.tuples.sort_by(|a, b| {
            let va = table.value(a[pos], col);
            let vb = table.value(b[pos], col);
            let ord = va.cmp_total(&vb);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
        stats.work += cost.sort(n);
    }
    let aggregating = matches!(
        block.projection,
        Projection::CountStar | Projection::Aggregates(_) | Projection::GroupBy { .. }
    );
    if let Some(limit) = block.limit {
        if !aggregating {
            // for plain projections LIMIT can truncate the input tuples;
            // aggregations consume every tuple and limit their output rows
            batch.tuples.truncate(limit);
        }
    }
    let mut rows = project(&batch, block, tables)?;
    if let Some(limit) = block.limit {
        rows.truncate(limit);
    }
    stats.work += rows.len() as f64 * cost.output_row;
    Ok(ExecOutput { rows, stats })
}

pub(crate) fn table_of<'a>(
    tables: &'a [Table],
    block: &QueryBlock,
    qun: usize,
) -> Result<&'a Table> {
    let tid = block.quns[qun].table;
    tables
        .get(tid.index())
        .ok_or_else(|| JitsError::Execution(format!("table {tid} missing from execution context")))
}

fn run(
    plan: &PhysicalPlan,
    block: &QueryBlock,
    tables: &[Table],
    cost: &CostModel,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<Batch> {
    // inclusive wall per node (children recurse within the arm, so a join's
    // wall covers its inputs); volatile — never part of the bit-compared
    // observation stream
    let t_node = jits_obs::clock::now_nanos();
    match plan {
        PhysicalPlan::SeqScan { scan, est } => {
            let table = table_of(tables, block, scan.qun)?;
            let mut tuples = Vec::new();
            for row in table.scan() {
                if matches_preds(table, row, block, &scan.pred_indices) {
                    tuples.push(vec![row]);
                }
            }
            let work = cost.seq_scan(table.row_count() as f64, tuples.len() as f64);
            stats.work += work;
            record_scan(
                stats,
                scan,
                NodeKind::SeqScan,
                est.rows,
                tuples.len(),
                table,
                work,
                jits_obs::clock::now_nanos().saturating_sub(t_node),
            );
            Ok(Batch {
                quns: vec![scan.qun],
                tuples,
            })
        }
        PhysicalPlan::PrunedScan { scan, est, .. } => {
            debug_assert!(
                jits_optimizer::EST_BLOCK_ROWS == jits_storage::BLOCK_SIZE as f64,
                "optimizer block-size assumption diverged from storage"
            );
            let table = table_of(tables, block, scan.qun)?;
            // the skip list is computed in both modes: pruning is sound
            // (pruned blocks hold no matching rows), so the off-mode full
            // scan yields the same rows in the same ascending order, and
            // charging work from the skip list keeps the stats identical
            let constraints = zone_constraints(block, &scan.pred_indices);
            let skip = table.skip_list(&constraints);
            let mut tuples = Vec::new();
            if opts.data_skipping {
                for &b in &skip.survivors {
                    for row in table.block_rows(b as usize) {
                        if matches_preds(table, row, block, &scan.pred_indices) {
                            tuples.push(vec![row]);
                        }
                    }
                }
            } else {
                for row in table.scan() {
                    if matches_preds(table, row, block, &scan.pred_indices) {
                        tuples.push(vec![row]);
                    }
                }
            }
            let work = cost.pruned_scan(
                skip.blocks_total as f64,
                skip.surviving_rows as f64,
                tuples.len() as f64,
            );
            stats.work += work;
            stats.blocks_total += skip.blocks_total as u64;
            stats.blocks_pruned += skip.blocks_pruned() as u64;
            record_scan(
                stats,
                scan,
                NodeKind::PrunedScan,
                est.rows,
                tuples.len(),
                table,
                work,
                jits_obs::clock::now_nanos().saturating_sub(t_node),
            );
            Ok(Batch {
                quns: vec![scan.qun],
                tuples,
            })
        }
        PhysicalPlan::IndexScan {
            scan,
            index_column,
            est,
            ..
        } => {
            let table = table_of(tables, block, scan.qun)?;
            let index = table.index(*index_column).ok_or_else(|| {
                JitsError::Execution(format!(
                    "plan expects an index on {index_column} of '{}'",
                    table.name()
                ))
            })?;
            let interval = index_interval(block, &scan.pred_indices, *index_column)?;
            // equality probes route to the hash twin when one exists; its
            // per-key row vectors are maintained in the same order as the
            // B-tree's, so the candidate stream is identical either way
            let point_key = if interval.is_point() {
                interval.low.value()
            } else {
                None
            };
            let candidates: Vec<RowId> = match (point_key, table.hash_index(*index_column)) {
                (Some(v), Some(hash)) => hash.lookup_eq(v).to_vec(),
                _ => index.lookup_range(&interval),
            };
            let fetched = candidates.len() as f64;
            let mut tuples = Vec::new();
            for row in candidates {
                if table.is_live(row) && matches_preds(table, row, block, &scan.pred_indices) {
                    tuples.push(vec![row]);
                }
            }
            let work = cost.index_scan(fetched, tuples.len() as f64);
            stats.work += work;
            record_scan(
                stats,
                scan,
                NodeKind::IndexScan,
                est.rows,
                tuples.len(),
                table,
                work,
                jits_obs::clock::now_nanos().saturating_sub(t_node),
            );
            Ok(Batch {
                quns: vec![scan.qun],
                tuples,
            })
        }
        PhysicalPlan::HashJoin {
            build,
            probe,
            keys,
            est,
        } => {
            let build_batch = run(build, block, tables, cost, opts, stats)?;
            let probe_batch = run(probe, block, tables, cost, opts, stats)?;
            if keys.is_empty() {
                return Err(JitsError::Execution("hash join without keys".into()));
            }
            // hash the build side
            let mut ht: std::collections::HashMap<Vec<Value>, Vec<usize>> =
                std::collections::HashMap::new();
            let build_positions: Vec<(usize, ColumnId)> = keys
                .iter()
                .map(|((bq, bc), _)| Ok((build_batch.position_of(*bq)?, *bc)))
                .collect::<Result<_>>()?;
            let build_tables: Vec<&Table> = keys
                .iter()
                .map(|((bq, _), _)| table_of(tables, block, *bq))
                .collect::<Result<_>>()?;
            for (ti, tuple) in build_batch.tuples.iter().enumerate() {
                let key: Vec<Value> = build_positions
                    .iter()
                    .zip(&build_tables)
                    .map(|((pos, col), t)| t.value(tuple[*pos], *col))
                    .collect();
                if key.iter().any(Value::is_null) {
                    continue; // NULL keys never join
                }
                ht.entry(key).or_default().push(ti);
            }
            // probe
            let probe_positions: Vec<(usize, ColumnId)> = keys
                .iter()
                .map(|(_, (pq, pc))| Ok((probe_batch.position_of(*pq)?, *pc)))
                .collect::<Result<_>>()?;
            let probe_tables: Vec<&Table> = keys
                .iter()
                .map(|(_, (pq, _))| table_of(tables, block, *pq))
                .collect::<Result<_>>()?;
            let mut tuples = Vec::new();
            for probe_tuple in &probe_batch.tuples {
                let key: Vec<Value> = probe_positions
                    .iter()
                    .zip(&probe_tables)
                    .map(|((pos, col), t)| t.value(probe_tuple[*pos], *col))
                    .collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = ht.get(&key) {
                    for &bi in matches {
                        let mut combined = build_batch.tuples[bi].clone();
                        combined.extend_from_slice(probe_tuple);
                        tuples.push(combined);
                    }
                }
            }
            let work = cost.hash_join(
                build_batch.tuples.len() as f64,
                probe_batch.tuples.len() as f64,
                tuples.len() as f64,
            );
            stats.work += work;
            stats.nodes.push(NodeObservation {
                kind: NodeKind::HashJoin,
                est_rows: est.rows,
                actual_rows: tuples.len() as f64,
                work,
            });
            stats
                .node_walls
                .push(jits_obs::clock::now_nanos().saturating_sub(t_node));
            let mut quns = build_batch.quns;
            quns.extend(probe_batch.quns);
            Ok(Batch { quns, tuples })
        }
        PhysicalPlan::IndexNLJoin {
            outer,
            inner,
            index_column,
            keys,
            est,
        } => {
            let outer_batch = run(outer, block, tables, cost, opts, stats)?;
            let inner_table = table_of(tables, block, inner.qun)?;
            let index = inner_table.index(*index_column).ok_or_else(|| {
                JitsError::Execution(format!(
                    "plan expects an index on {index_column} of '{}'",
                    inner_table.name()
                ))
            })?;
            let Some(&((drive_oq, drive_oc), _)) = keys.first() else {
                return Err(JitsError::Execution(
                    "index nested-loop join without keys".into(),
                ));
            };
            let drive_pos = outer_batch.position_of(drive_oq)?;
            let drive_table = table_of(tables, block, drive_oq)?;
            // equality probes prefer the hash twin (same per-key row order
            // as the B-tree, so the candidate stream is identical)
            let hash = inner_table.hash_index(*index_column);
            // residual keys beyond the driving one; positions and tables are
            // loop-invariant, so resolve them once before probing
            let residual: Vec<(usize, ColumnId, &Table, ColumnId)> = keys[1..]
                .iter()
                .map(|((oq, oc), (_, ic))| {
                    Ok((
                        outer_batch.position_of(*oq)?,
                        *oc,
                        table_of(tables, block, *oq)?,
                        *ic,
                    ))
                })
                .collect::<Result<_>>()?;
            let mut tuples = Vec::new();
            let mut fetched_total = 0f64;
            for outer_tuple in &outer_batch.tuples {
                let key = drive_table.value(outer_tuple[drive_pos], drive_oc);
                if key.is_null() {
                    continue;
                }
                let candidates = match hash {
                    Some(h) => h.lookup_eq(&key),
                    None => index.lookup_eq(&key),
                };
                fetched_total += candidates.len() as f64;
                'cand: for &irow in candidates {
                    if !inner_table.is_live(irow)
                        || !matches_preds(inner_table, irow, block, &inner.pred_indices)
                    {
                        continue;
                    }
                    for (opos, oc, ot, ic) in &residual {
                        let ov = ot.value(outer_tuple[*opos], *oc);
                        let iv = inner_table.value(irow, *ic);
                        if !ov.sql_eq(&iv) {
                            continue 'cand;
                        }
                    }
                    let mut combined = outer_tuple.clone();
                    combined.push(irow);
                    tuples.push(combined);
                }
            }
            let per_probe = if outer_batch.tuples.is_empty() {
                0.0
            } else {
                fetched_total / outer_batch.tuples.len() as f64
            };
            let work = cost.index_nl_join(
                outer_batch.tuples.len() as f64,
                per_probe,
                tuples.len() as f64,
            );
            stats.work += work;
            stats.nodes.push(NodeObservation {
                kind: NodeKind::IndexNLJoin,
                est_rows: est.rows,
                actual_rows: tuples.len() as f64,
                work,
            });
            stats
                .node_walls
                .push(jits_obs::clock::now_nanos().saturating_sub(t_node));
            let mut quns = outer_batch.quns;
            quns.push(inner.qun);
            Ok(Batch { quns, tuples })
        }
        PhysicalPlan::NLJoin {
            outer,
            inner,
            keys,
            est,
        } => {
            let outer_batch = run(outer, block, tables, cost, opts, stats)?;
            let inner_batch = run(inner, block, tables, cost, opts, stats)?;
            let key_positions: Vec<((usize, ColumnId), (usize, ColumnId))> = keys
                .iter()
                .map(|((oq, oc), (iq, ic))| {
                    Ok((
                        (outer_batch.position_of(*oq)?, *oc),
                        (inner_batch.position_of(*iq)?, *ic),
                    ))
                })
                .collect::<Result<_>>()?;
            let outer_key_tables: Vec<&Table> = keys
                .iter()
                .map(|((oq, _), _)| table_of(tables, block, *oq))
                .collect::<Result<_>>()?;
            let inner_key_tables: Vec<&Table> = keys
                .iter()
                .map(|(_, (iq, _))| table_of(tables, block, *iq))
                .collect::<Result<_>>()?;
            let mut tuples = Vec::new();
            for ot in &outer_batch.tuples {
                'inner: for it in &inner_batch.tuples {
                    for (ki, ((opos, oc), (ipos, ic))) in key_positions.iter().enumerate() {
                        let ov = outer_key_tables[ki].value(ot[*opos], *oc);
                        let iv = inner_key_tables[ki].value(it[*ipos], *ic);
                        if !ov.sql_eq(&iv) {
                            continue 'inner;
                        }
                    }
                    let mut combined = ot.clone();
                    combined.extend_from_slice(it);
                    tuples.push(combined);
                }
            }
            let work = cost.nl_join(
                outer_batch.tuples.len() as f64,
                inner_batch.tuples.len() as f64,
                tuples.len() as f64,
            );
            stats.work += work;
            stats.nodes.push(NodeObservation {
                kind: NodeKind::NLJoin,
                est_rows: est.rows,
                actual_rows: tuples.len() as f64,
                work,
            });
            stats
                .node_walls
                .push(jits_obs::clock::now_nanos().saturating_sub(t_node));
            let mut quns = outer_batch.quns;
            quns.extend(inner_batch.quns);
            Ok(Batch { quns, tuples })
        }
    }
}

/// Whether a row satisfies all the given local predicates.
pub(crate) fn matches_preds(
    table: &Table,
    row: RowId,
    block: &QueryBlock,
    pred_indices: &[usize],
) -> bool {
    pred_indices.iter().all(|&i| {
        let p = &block.local_predicates[i];
        p.matches(&table.value(row, p.column))
    })
}

/// The per-column zone-map constraints of a scan's predicate group: every
/// interval predicate, merged per column by intersection. Shared by both
/// executors so their skip lists (and therefore their work charges) agree.
pub(crate) fn zone_constraints(
    block: &QueryBlock,
    pred_indices: &[usize],
) -> Vec<(ColumnId, Interval)> {
    let mut merged: std::collections::BTreeMap<ColumnId, Interval> = Default::default();
    for &i in pred_indices {
        let p = &block.local_predicates[i];
        if let PredKind::Interval(iv) = &p.kind {
            let next = match merged.remove(&p.column) {
                Some(existing) => existing.intersect(iv),
                None => iv.clone(),
            };
            merged.insert(p.column, next);
        }
    }
    merged.into_iter().collect()
}

/// The merged index-driving interval for `column` among the scan's
/// predicates.
pub(crate) fn index_interval(
    block: &QueryBlock,
    pred_indices: &[usize],
    column: ColumnId,
) -> Result<Interval> {
    let mut interval: Option<Interval> = None;
    for &i in pred_indices {
        let p = &block.local_predicates[i];
        if p.column != column {
            continue;
        }
        if let PredKind::Interval(iv) = &p.kind {
            interval = Some(match interval {
                Some(existing) => existing.intersect(iv),
                None => iv.clone(),
            });
        }
    }
    interval.ok_or_else(|| {
        JitsError::Execution(format!("index scan on {column} has no interval predicate"))
    })
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn record_scan(
    stats: &mut ExecStats,
    scan: &ScanGroupEstimate,
    kind: NodeKind,
    est_rows: f64,
    actual: usize,
    table: &Table,
    work: f64,
    wall_nanos: u64,
) {
    stats.nodes.push(NodeObservation {
        kind,
        est_rows,
        actual_rows: actual as f64,
        work,
    });
    stats.node_walls.push(wall_nanos);
    if !scan.pred_indices.is_empty() {
        stats.scans.push(ScanObservation {
            qun: scan.qun,
            table: scan.table,
            pred_indices: scan.pred_indices.clone(),
            est_selectivity: scan.selectivity,
            statlist: scan.statlist.clone(),
            source: scan.source,
            actual_rows: actual as f64,
            table_rows: table.row_count() as f64,
        });
    }
}

/// A streaming accumulator for one aggregate.
///
/// Integer inputs additionally accumulate in a checked `i64` so pure-integer
/// `SUM` stays exact past 2^53 (the `f64` mirror still drives `AVG` and the
/// float/overflow fallbacks).
#[derive(Debug, Clone)]
pub(crate) struct AggAcc {
    count: i64,
    sum: f64,
    int_sum: i64,
    int_exact: bool,
    any_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggAcc {
    pub(crate) fn new() -> Self {
        AggAcc {
            count: 0,
            sum: 0.0,
            int_sum: 0,
            int_exact: true,
            any_float: false,
            min: None,
            max: None,
        }
    }

    pub(crate) fn push(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.any_float |= matches!(v, Value::Float(_));
            self.sum += x;
        }
        if let Value::Int(i) = v {
            match self.int_sum.checked_add(i) {
                Some(s) => self.int_sum = s,
                None => self.int_exact = false,
            }
        }
        if self
            .min
            .as_ref()
            .is_none_or(|m| v.cmp_total(m) == std::cmp::Ordering::Less)
        {
            self.min = Some(v.clone());
        }
        if self
            .max
            .as_ref()
            .is_none_or(|m| v.cmp_total(m) == std::cmp::Ordering::Greater)
        {
            self.max = Some(v);
        }
    }

    pub(crate) fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.any_float {
                    Value::Float(self.sum)
                } else if self.int_exact {
                    Value::Int(self.int_sum)
                } else {
                    // pure-int input overflowed i64: degrade to the float
                    // mirror rather than wrapping
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Feeds one input value to an accumulator, surfacing the typed error the
/// executor reports for `SUM`/`AVG` over non-numeric input. Shared by the
/// row and batch aggregate paths so they cannot diverge.
pub(crate) fn accumulate(acc: &mut AggAcc, func: AggFunc, col: ColumnId, v: Value) -> Result<()> {
    if matches!(func, AggFunc::Sum | AggFunc::Avg) && !v.is_null() && v.as_f64().is_none() {
        return Err(JitsError::Execution(format!(
            "{func}({col}) over non-numeric value"
        )));
    }
    acc.push(v);
    Ok(())
}

/// Hash aggregation: one output row per distinct grouping-key combination,
/// in first-seen order (deterministic given the input order).
fn eval_group_by(
    keys: &[(usize, ColumnId)],
    items: &[jits_query::qgm::GroupItem],
    batch: &Batch,
    block: &QueryBlock,
    tables: &[Table],
) -> Result<Vec<Row>> {
    use jits_query::qgm::GroupItem;
    let key_pos: Vec<(usize, ColumnId)> = keys
        .iter()
        .map(|(q, c)| Ok((batch.position_of(*q)?, *c)))
        .collect::<Result<_>>()?;
    let key_tables: Vec<&Table> = keys
        .iter()
        .map(|(q, _)| table_of(tables, block, *q))
        .collect::<Result<_>>()?;
    // per-item aggregate inputs (position + column), None for COUNT(*)
    let agg_inputs: Vec<Option<(usize, ColumnId)>> = items
        .iter()
        .map(|it| match it {
            GroupItem::Agg(a) => a
                .col
                .map(|(q, c)| Ok((batch.position_of(q)?, c)))
                .transpose(),
            GroupItem::Key(_) => Ok(None),
        })
        .collect::<Result<_>>()?;
    let agg_tables: Vec<Option<&Table>> = items
        .iter()
        .map(|it| match it {
            GroupItem::Agg(a) => match a.col {
                Some((q, _)) => table_of(tables, block, q).ok(),
                None => None,
            },
            GroupItem::Key(_) => None,
        })
        .collect();

    // `groups` maps key -> group index and is only ever probed (`entry`);
    // output order comes from the first-seen `order`/`accs` vectors, so no
    // hash order is observed
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<(Vec<AggAcc>, i64)> = Vec::new();
    let mut groups: std::collections::HashMap<Vec<Value>, usize> = std::collections::HashMap::new();
    for tuple in &batch.tuples {
        let key: Vec<Value> = key_pos
            .iter()
            .zip(&key_tables)
            .map(|((pos, col), t)| t.value(tuple[*pos], *col))
            .collect();
        let n_items = items.len();
        let gi = *groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            accs.push((vec![AggAcc::new(); n_items], 0));
            accs.len() - 1
        });
        let entry = &mut accs[gi];
        entry.1 += 1; // group row count for COUNT(*)
        for (i, item) in items.iter().enumerate() {
            if let GroupItem::Agg(_) = item {
                if let (Some((pos, col)), Some(t)) = (agg_inputs[i], agg_tables[i]) {
                    entry.0[i].push(t.value(tuple[pos], col));
                }
            }
        }
    }
    Ok(finish_groups(items, order, accs))
}

/// Emits one row per group in first-seen order, shared by both executors.
pub(crate) fn finish_groups(
    items: &[jits_query::qgm::GroupItem],
    order: Vec<Vec<Value>>,
    accs: Vec<(Vec<AggAcc>, i64)>,
) -> Vec<Row> {
    use jits_query::qgm::GroupItem;
    order
        .into_iter()
        .zip(accs)
        .map(|(key, (group_accs, star))| {
            items
                .iter()
                .enumerate()
                .map(|(i, item)| match item {
                    GroupItem::Key(k) => key[*k].clone(),
                    GroupItem::Agg(a) => match a.col {
                        None => Value::Int(star),
                        Some(_) => group_accs[i].finish(a.func),
                    },
                })
                .collect()
        })
        .collect()
}

/// Evaluates one aggregate over the whole batch (no GROUP BY).
fn eval_aggregate(
    agg: &jits_query::BoundAggregate,
    batch: &Batch,
    block: &QueryBlock,
    tables: &[Table],
) -> Result<Value> {
    let Some((qun, col)) = agg.col else {
        return Ok(Value::Int(batch.tuples.len() as i64));
    };
    let pos = batch.position_of(qun)?;
    let table = table_of(tables, block, qun)?;
    let mut acc = AggAcc::new();
    for tuple in &batch.tuples {
        accumulate(&mut acc, agg.func, col, table.value(tuple[pos], col))?;
    }
    Ok(acc.finish(agg.func))
}

fn project(batch: &Batch, block: &QueryBlock, tables: &[Table]) -> Result<Vec<Row>> {
    match &block.projection {
        Projection::CountStar => Ok(vec![vec![Value::Int(batch.tuples.len() as i64)]]),
        Projection::Aggregates(aggs) => {
            let row = aggs
                .iter()
                .map(|agg| eval_aggregate(agg, batch, block, tables))
                .collect::<Result<Vec<Value>>>()?;
            Ok(vec![row])
        }
        Projection::GroupBy { keys, items } => eval_group_by(keys, items, batch, block, tables),
        Projection::Wildcard => {
            let mut rows = Vec::with_capacity(batch.tuples.len());
            for tuple in &batch.tuples {
                let mut row = Vec::new();
                for qun in 0..block.quns.len() {
                    let pos = batch.position_of(qun)?;
                    let table = table_of(tables, block, qun)?;
                    for c in 0..table.schema().len() {
                        row.push(table.value(tuple[pos], ColumnId(c as u32)));
                    }
                }
                rows.push(row);
            }
            Ok(rows)
        }
        Projection::Columns(cols) => {
            let mut rows = Vec::with_capacity(batch.tuples.len());
            for tuple in &batch.tuples {
                let row = cols
                    .iter()
                    .map(|(qun, col)| {
                        let pos = batch.position_of(*qun)?;
                        table_of(tables, block, *qun).map(|t| t.value(tuple[pos], *col))
                    })
                    .collect::<Result<Vec<Value>>>()?;
                rows.push(row);
            }
            Ok(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_catalog::{runstats, Catalog, RunstatsOptions};
    use jits_common::{DataType, Schema};
    use jits_optimizer::{
        optimize, CardinalityEstimator, CatalogStatisticsProvider, DefaultSelectivities,
    };
    use jits_query::{bind_statement, parse, BoundStatement};

    /// car(1000) with FK ownerid -> owner(100, PK indexed); make correlates
    /// with owner bucket.
    fn setup() -> (Catalog, Vec<Table>) {
        let mut catalog = Catalog::new();
        let car_schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("ownerid", DataType::Int),
            ("make", DataType::Str),
            ("year", DataType::Int),
        ]);
        let owner_schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("salary", DataType::Int),
        ]);
        let car_id = catalog.register_table("car", car_schema.clone()).unwrap();
        let owner_id = catalog
            .register_table("owner", owner_schema.clone())
            .unwrap();

        let mut car = Table::new("car", car_schema);
        for i in 0..1000i64 {
            let make = if i % 5 == 0 { "Toyota" } else { "Honda" };
            car.insert(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::str(make),
                Value::Int(1990 + i % 17),
            ])
            .unwrap();
        }
        let mut owner = Table::new("owner", owner_schema);
        for i in 0..100i64 {
            owner
                .insert(vec![
                    Value::Int(i),
                    Value::str(format!("owner{i}")),
                    Value::Int(i * 1000),
                ])
                .unwrap();
        }
        owner.create_index(ColumnId(0)).unwrap();
        catalog.add_index(owner_id, ColumnId(0)).unwrap();
        car.create_index(ColumnId(0)).unwrap();
        catalog.add_index(car_id, ColumnId(0)).unwrap();

        let (ts, cs) = runstats(&car, RunstatsOptions::default(), 1);
        catalog.set_stats(car_id, ts, cs).unwrap();
        let (ts, cs) = runstats(&owner, RunstatsOptions::default(), 1);
        catalog.set_stats(owner_id, ts, cs).unwrap();
        (catalog, vec![car, owner])
    }

    fn run_sql(catalog: &Catalog, tables: &[Table], sql: &str) -> ExecOutput {
        let BoundStatement::Select(block) = bind_statement(&parse(sql).unwrap(), catalog).unwrap()
        else {
            panic!()
        };
        let provider = CatalogStatisticsProvider::new(catalog);
        let est = CardinalityEstimator::new(&provider, DefaultSelectivities::default());
        let cost = CostModel::default();
        let plan = optimize(&block, &est, &cost, catalog).unwrap();
        execute(&plan, &block, tables, &cost).unwrap()
    }

    #[test]
    fn filter_scan_returns_matching_rows() {
        let (catalog, tables) = setup();
        let out = run_sql(
            &catalog,
            &tables,
            "SELECT id FROM car WHERE make = 'Toyota'",
        );
        assert_eq!(out.rows.len(), 200);
        assert!(out.stats.work > 0.0);
        // observation recorded with correct actual selectivity
        let scan = &out.stats.scans[0];
        assert_eq!(scan.actual_rows, 200.0);
        assert!((scan.actual_selectivity() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn count_star() {
        let (catalog, tables) = setup();
        let out = run_sql(
            &catalog,
            &tables,
            "SELECT COUNT(*) FROM car WHERE year > 2000",
        );
        assert_eq!(out.rows.len(), 1);
        let Value::Int(n) = out.rows[0][0] else {
            panic!()
        };
        // years 2001..=2006 -> 6 of 17 buckets
        let expected: i64 = (0..1000).filter(|i| 1990 + i % 17 > 2000).count() as i64;
        assert_eq!(n, expected);
    }

    #[test]
    fn join_results_match_naive_evaluation() {
        let (catalog, tables) = setup();
        let out = run_sql(
            &catalog,
            &tables,
            "SELECT c.id, o.name FROM car c, owner o \
             WHERE c.ownerid = o.id AND make = 'Toyota' AND salary >= 50000",
        );
        // naive: Toyota cars are ids 0,5,10,...,995; ownerid = id % 100;
        // salary >= 50000 -> owner id >= 50
        let expected = (0..1000i64)
            .filter(|i| i % 5 == 0 && (i % 100) >= 50)
            .count();
        assert_eq!(out.rows.len(), expected);
        // join observation recorded
        assert!(out
            .stats
            .nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::HashJoin | NodeKind::IndexNLJoin)));
    }

    #[test]
    fn projection_wildcard_has_all_columns() {
        let (catalog, tables) = setup();
        let out = run_sql(
            &catalog,
            &tables,
            "SELECT * FROM car c, owner o WHERE c.ownerid = o.id AND c.id = 7",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].len(), 4 + 3);
        assert_eq!(out.rows[0][0], Value::Int(7));
        assert_eq!(out.rows[0][4], Value::Int(7)); // owner.id == ownerid
    }

    #[test]
    fn tombstoned_rows_invisible() {
        let (catalog, mut tables) = setup();
        // delete all Toyotas
        let doomed: Vec<RowId> = tables[0]
            .scan()
            .filter(|r| tables[0].value(*r, ColumnId(2)) == Value::str("Toyota"))
            .collect();
        for r in doomed {
            tables[0].delete(r);
        }
        let out = run_sql(
            &catalog,
            &tables,
            "SELECT id FROM car WHERE make = 'Toyota'",
        );
        assert!(out.rows.is_empty());
    }

    #[test]
    fn observed_error_factor_reflects_stale_stats() {
        let (catalog, mut tables) = setup();
        // churn the data after stats were collected: make everything Toyota
        let all: Vec<RowId> = tables[0].scan().collect();
        for r in all {
            tables[0]
                .update(r, ColumnId(2), Value::str("Toyota"))
                .unwrap();
        }
        let out = run_sql(
            &catalog,
            &tables,
            "SELECT id FROM car WHERE make = 'Toyota'",
        );
        assert_eq!(out.rows.len(), 1000);
        let scan = &out.stats.scans[0];
        // estimate said ~0.2, actual is 1.0 -> errorFactor ~0.2
        assert!(scan.error_factor() < 0.3, "ef {}", scan.error_factor());
    }
}

#[cfg(test)]
mod additional_tests {
    use super::*;
    use jits_catalog::{runstats, Catalog, RunstatsOptions};
    use jits_common::{DataType, Schema};
    use jits_optimizer::{
        optimize, CardinalityEstimator, CatalogStatisticsProvider, DefaultSelectivities,
    };
    use jits_query::{bind_statement, parse, BoundStatement};

    fn setup() -> (Catalog, Vec<Table>) {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("grp", DataType::Int),
            ("v", DataType::Int),
        ]);
        let tid = catalog.register_table("t", schema.clone()).unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..100i64 {
            // rows 10 and 20 carry NULL join keys
            let grp = if i == 10 || i == 20 {
                Value::Null
            } else {
                Value::Int(i % 5)
            };
            t.insert(vec![Value::Int(i), grp, Value::Int(i * 2)])
                .unwrap();
        }
        let (ts, cs) = runstats(&t, RunstatsOptions::default(), 1);
        catalog.set_stats(tid, ts, cs).unwrap();

        let other = Schema::from_pairs(&[("grp", DataType::Int), ("name", DataType::Str)]);
        let oid = catalog.register_table("g", other.clone()).unwrap();
        let mut o = Table::new("g", other);
        for i in 0..5i64 {
            o.insert(vec![Value::Int(i), Value::str(format!("g{i}"))])
                .unwrap();
        }
        let (ts, cs) = runstats(&o, RunstatsOptions::default(), 1);
        catalog.set_stats(oid, ts, cs).unwrap();
        (catalog, vec![t, o])
    }

    fn run_sql(catalog: &Catalog, tables: &[Table], sql: &str) -> ExecOutput {
        let BoundStatement::Select(block) = bind_statement(&parse(sql).unwrap(), catalog).unwrap()
        else {
            panic!()
        };
        let provider = CatalogStatisticsProvider::new(catalog);
        let est = CardinalityEstimator::new(&provider, DefaultSelectivities::default());
        let cost = CostModel::default();
        let plan = optimize(&block, &est, &cost, catalog).unwrap();
        execute(&plan, &block, tables, &cost).unwrap()
    }

    #[test]
    fn null_join_keys_never_match() {
        let (catalog, tables) = setup();
        let out = run_sql(
            &catalog,
            &tables,
            "SELECT COUNT(*) FROM t, g WHERE t.grp = g.grp",
        );
        // 98 non-NULL rows each match exactly one group row
        assert_eq!(out.rows[0][0], Value::Int(98));
    }

    #[test]
    fn order_by_after_join() {
        let (catalog, tables) = setup();
        let out = run_sql(
            &catalog,
            &tables,
            "SELECT t.id FROM t, g WHERE t.grp = g.grp AND t.id < 7 ORDER BY t.v DESC LIMIT 3",
        );
        let ids: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![6, 5, 4]);
    }

    #[test]
    fn work_increases_with_sort() {
        let (catalog, tables) = setup();
        let plain = run_sql(&catalog, &tables, "SELECT id FROM t WHERE v > 10");
        let sorted = run_sql(
            &catalog,
            &tables,
            "SELECT id FROM t WHERE v > 10 ORDER BY id",
        );
        assert!(sorted.stats.work > plain.stats.work);
    }
}
