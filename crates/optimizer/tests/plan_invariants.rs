//! Property tests on plan enumeration invariants: whatever the statistics
//! say, the optimizer must produce a plan covering every quantifier with
//! sane estimates.

use jits_catalog::{runstats, Catalog, RunstatsOptions};
use jits_common::{ColumnId, DataType, Schema, SplitMix64, Value};
use jits_optimizer::{
    optimize, CardinalityEstimator, CatalogStatisticsProvider, CostModel, DefaultSelectivities,
    NoStatisticsProvider, PhysicalPlan,
};
use jits_query::{bind_statement, parse, BoundStatement};
use jits_storage::Table;
use proptest::prelude::*;

fn setup(seed: u64, n_cars: usize, n_owners: usize) -> (Catalog, Vec<Table>) {
    let mut rng = SplitMix64::new(seed);
    let mut catalog = Catalog::new();
    let car_schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("ownerid", DataType::Int),
        ("make", DataType::Str),
        ("year", DataType::Int),
    ]);
    let owner_schema = Schema::from_pairs(&[("id", DataType::Int), ("salary", DataType::Int)]);
    let car_id = catalog.register_table("car", car_schema.clone()).unwrap();
    let owner_id = catalog
        .register_table("owner", owner_schema.clone())
        .unwrap();

    let makes = ["Toyota", "Honda", "Audi"];
    let mut car = Table::new("car", car_schema);
    for i in 0..n_cars {
        car.insert(vec![
            Value::Int(i as i64),
            Value::Int(rng.next_bounded(n_owners.max(1) as u64) as i64),
            Value::str(makes[rng.next_index(makes.len())]),
            Value::Int(1990 + rng.next_bounded(17) as i64),
        ])
        .unwrap();
    }
    let mut owner = Table::new("owner", owner_schema);
    for i in 0..n_owners {
        owner
            .insert(vec![
                Value::Int(i as i64),
                Value::Int(rng.next_bounded(100_000) as i64),
            ])
            .unwrap();
    }
    owner.create_index(ColumnId(0)).unwrap();
    catalog.add_index(owner_id, ColumnId(0)).unwrap();
    let (ts, cs) = runstats(&car, RunstatsOptions::default(), 1);
    catalog.set_stats(car_id, ts, cs).unwrap();
    let (ts, cs) = runstats(&owner, RunstatsOptions::default(), 1);
    catalog.set_stats(owner_id, ts, cs).unwrap();
    (catalog, vec![car, owner])
}

fn check_plan_invariants(p: &PhysicalPlan, expected_quns: usize) {
    let mut quns = p.quns();
    quns.sort_unstable();
    quns.dedup();
    assert_eq!(
        quns.len(),
        expected_quns,
        "plan must cover every quantifier"
    );
    assert!(p.est().rows >= 0.0, "negative row estimate");
    assert!(p.est().cost > 0.0, "non-positive cost");
    assert!(p.est().cost.is_finite() && p.est().rows.is_finite());
    // every scan estimate is a valid selectivity
    for s in p.scan_estimates() {
        assert!(
            (0.0..=1.0).contains(&s.selectivity),
            "sel {}",
            s.selectivity
        );
        assert!(s.base_rows >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn plans_cover_all_quantifiers_and_estimate_sanely(
        seed in any::<u64>(),
        n_cars in 1usize..400,
        n_owners in 1usize..80,
        year in 1985i64..2010,
        salary in 0i64..120_000,
        use_catalog in any::<bool>(),
    ) {
        let (catalog, _tables) = setup(seed, n_cars, n_owners);
        let sql = format!(
            "SELECT COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id \
             AND make = 'Toyota' AND year > {year} AND salary <= {salary}"
        );
        let BoundStatement::Select(block) =
            bind_statement(&parse(&sql).unwrap(), &catalog).unwrap()
        else {
            panic!()
        };
        let cost = CostModel::default();
        let plan = if use_catalog {
            let provider = CatalogStatisticsProvider::new(&catalog);
            let est = CardinalityEstimator::new(&provider, DefaultSelectivities::default());
            optimize(&block, &est, &cost, &catalog).unwrap()
        } else {
            let provider = NoStatisticsProvider;
            let est = CardinalityEstimator::new(&provider, DefaultSelectivities::default());
            optimize(&block, &est, &cost, &catalog).unwrap()
        };
        check_plan_invariants(&plan, 2);
    }

    #[test]
    fn estimated_rows_never_exceed_cross_product(
        seed in any::<u64>(),
        n_cars in 1usize..300,
        n_owners in 1usize..60,
    ) {
        let (catalog, _tables) = setup(seed, n_cars, n_owners);
        let BoundStatement::Select(block) = bind_statement(
            &parse("SELECT COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id").unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        let provider = CatalogStatisticsProvider::new(&catalog);
        let est = CardinalityEstimator::new(&provider, DefaultSelectivities::default());
        let plan = optimize(&block, &est, &CostModel::default(), &catalog).unwrap();
        let cross = (n_cars * n_owners) as f64;
        prop_assert!(
            plan.est().rows <= cross * 1.0001,
            "estimate {} exceeds cross product {cross}",
            plan.est().rows
        );
    }

    #[test]
    fn explain_renders_for_any_plan(
        seed in any::<u64>(),
        n_cars in 1usize..200,
    ) {
        let (catalog, _tables) = setup(seed, n_cars, 20);
        let BoundStatement::Select(block) = bind_statement(
            &parse("SELECT COUNT(*) FROM car WHERE make = 'Audi' AND year BETWEEN 1995 AND 2000")
                .unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        let provider = CatalogStatisticsProvider::new(&catalog);
        let est = CardinalityEstimator::new(&provider, DefaultSelectivities::default());
        let plan = optimize(&block, &est, &CostModel::default(), &catalog).unwrap();
        let text = plan.explain();
        prop_assert!(text.contains("Scan"));
        prop_assert!(!text.is_empty());
    }
}
