//! The statistics seam between the optimizer and whoever owns statistics.

use jits_catalog::Catalog;
use jits_common::{ColGroup, ColumnId, TableId};
use jits_query::{PredKind, QueryBlock};

/// Provenance of a selectivity estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatSource {
    /// Textbook default constants (no statistics at all).
    Default,
    /// General catalog statistics (with independence across columns).
    Catalog,
    /// Query-specific statistics (fresh sample or QSS archive).
    Qss,
}

/// A selectivity estimate with the provenance the feedback loop needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SelEstimate {
    /// Estimated fraction of rows satisfying the predicate group.
    pub selectivity: f64,
    /// The column groups whose stored statistics produced the estimate —
    /// the paper's `statlist`.
    pub statlist: Vec<ColGroup>,
    /// Where the estimate came from.
    pub source: StatSource,
}

impl SelEstimate {
    /// An estimate from a single stored statistic.
    pub fn from_stat(selectivity: f64, group: ColGroup, source: StatSource) -> Self {
        SelEstimate {
            selectivity: selectivity.clamp(0.0, 1.0),
            statlist: vec![group],
            source,
        }
    }
}

/// What the optimizer asks of a statistics subsystem.
///
/// A provider answers only what its statistics answer *directly*; the
/// cardinality estimator ([`crate::card`]) composes partial answers with
/// independence when a joint answer is unavailable — mirroring how the
/// paper's optimizer "can estimate the selectivity of conjuncts ... by using
/// partial selectivities".
pub trait StatisticsProvider {
    /// Estimated live row count of a table, if known.
    fn table_cardinality(&self, table: TableId) -> Option<f64>;

    /// Joint selectivity of the predicate-index group `pred_indices` (into
    /// `block.local_predicates`, all on quantifier `qun`) — `None` unless
    /// the provider holds a statistic that answers the group as a whole.
    fn group_selectivity(
        &self,
        block: &QueryBlock,
        qun: usize,
        pred_indices: &[usize],
    ) -> Option<SelEstimate>;

    /// Estimated distinct count of a column, if known.
    fn distinct(&self, table: TableId, column: ColumnId) -> Option<f64>;
}

/// The "no statistics" provider: knows nothing, forcing the estimator onto
/// textbook defaults (the paper's "no initial statistics" setting).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoStatisticsProvider;

impl StatisticsProvider for NoStatisticsProvider {
    fn table_cardinality(&self, _table: TableId) -> Option<f64> {
        None
    }

    fn group_selectivity(
        &self,
        _block: &QueryBlock,
        _qun: usize,
        _pred_indices: &[usize],
    ) -> Option<SelEstimate> {
        None
    }

    fn distinct(&self, _table: TableId, _column: ColumnId) -> Option<f64> {
        None
    }
}

/// General-statistics provider: answers single-*column* groups from the
/// catalog's 1-D histograms/MCVs. Multi-column groups return `None`, which
/// makes the estimator fall back to independence — exactly the assumption
/// the paper blames for large errors on correlated columns.
#[derive(Debug, Clone, Copy)]
pub struct CatalogStatisticsProvider<'a> {
    catalog: &'a Catalog,
}

impl<'a> CatalogStatisticsProvider<'a> {
    /// Wraps a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        CatalogStatisticsProvider { catalog }
    }
}

impl StatisticsProvider for CatalogStatisticsProvider<'_> {
    fn table_cardinality(&self, table: TableId) -> Option<f64> {
        self.catalog.row_count(table)
    }

    fn group_selectivity(
        &self,
        block: &QueryBlock,
        qun: usize,
        pred_indices: &[usize],
    ) -> Option<SelEstimate> {
        if pred_indices.is_empty() {
            return None;
        }
        let group = block.colgroup_of(pred_indices);
        if group.arity() != 1 {
            return None; // no multi-dimensional general statistics
        }
        let table = block.quns[qun].table;
        let column = group.columns()[0];
        let stats = self.catalog.column_stats(table, column)?;

        let (intervals, residuals) = block.constraints_of(pred_indices);
        let mut sel = 1.0;
        if let Some((_, iv)) = intervals.first() {
            sel *= stats.selectivity(iv)?;
        }
        for r in residuals {
            match &r.kind {
                PredKind::NotEq(v) => {
                    let eq = stats.selectivity(&jits_common::Interval::point(v.clone()))?;
                    sel *= (1.0 - eq).clamp(0.0, 1.0);
                }
                PredKind::InList(vals) => {
                    // disjunction of points: sum of the point selectivities
                    let mut total = 0.0;
                    for v in vals {
                        total += stats.selectivity(&jits_common::Interval::point(v.clone()))?;
                    }
                    sel *= total.clamp(0.0, 1.0);
                }
                PredKind::IsNull(want_null) => {
                    let null_frac = if stats.row_count > 0.0 {
                        (stats.null_count / stats.row_count).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    sel *= if *want_null {
                        null_frac
                    } else {
                        1.0 - null_frac
                    };
                }
                PredKind::Interval(_) => unreachable!("intervals are folded above"),
            }
        }
        Some(SelEstimate::from_stat(sel, group, StatSource::Catalog))
    }

    fn distinct(&self, table: TableId, column: ColumnId) -> Option<f64> {
        self.catalog.column_stats(table, column).map(|s| s.distinct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jits_catalog::{runstats, RunstatsOptions};
    use jits_common::{DataType, Schema, Value};
    use jits_query::{bind_statement, parse, BoundStatement};
    use jits_storage::Table;

    fn setup() -> (Catalog, QueryBlock) {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("year", DataType::Int),
        ]);
        let tid = catalog.register_table("car", schema.clone()).unwrap();
        let mut t = Table::new("car", schema);
        for i in 0..1000i64 {
            let make = if i % 10 < 6 { "Toyota" } else { "Honda" };
            t.insert(vec![
                Value::Int(i),
                Value::str(make),
                Value::Int(1990 + (i % 17)),
            ])
            .unwrap();
        }
        let (ts, cs) = runstats(&t, RunstatsOptions::default(), 1);
        catalog.set_stats(tid, ts, cs).unwrap();

        let stmt = parse("SELECT * FROM car WHERE make = 'Toyota' AND year > 2000").unwrap();
        let BoundStatement::Select(block) = bind_statement(&stmt, &catalog).unwrap() else {
            panic!()
        };
        (catalog, block)
    }

    #[test]
    fn no_stats_provider_knows_nothing() {
        let (_, block) = setup();
        let p = NoStatisticsProvider;
        assert_eq!(p.table_cardinality(TableId(0)), None);
        assert_eq!(p.group_selectivity(&block, 0, &[0]), None);
        assert_eq!(p.distinct(TableId(0), ColumnId(1)), None);
    }

    #[test]
    fn catalog_provider_answers_single_columns() {
        let (catalog, block) = setup();
        let p = CatalogStatisticsProvider::new(&catalog);
        assert_eq!(p.table_cardinality(TableId(0)), Some(1000.0));
        let est = p.group_selectivity(&block, 0, &[0]).unwrap();
        assert!((est.selectivity - 0.6).abs() < 0.02, "{}", est.selectivity);
        assert_eq!(est.source, StatSource::Catalog);
        assert_eq!(est.statlist.len(), 1);
        // multi-column group: unanswered
        assert_eq!(p.group_selectivity(&block, 0, &[0, 1]), None);
        assert_eq!(p.distinct(TableId(0), ColumnId(2)), Some(17.0));
    }

    #[test]
    fn catalog_provider_merges_same_column_predicates() {
        let (catalog, _) = setup();
        let stmt = parse("SELECT * FROM car WHERE year > 1995 AND year <= 2000").unwrap();
        let BoundStatement::Select(block) = bind_statement(&stmt, &catalog).unwrap() else {
            panic!()
        };
        let p = CatalogStatisticsProvider::new(&catalog);
        // both predicates form a single-column group -> answered jointly
        let est = p.group_selectivity(&block, 0, &[0, 1]).unwrap();
        // years 1996..=2000 out of 1990..=2006 ~ 5/17
        assert!(
            (est.selectivity - 5.0 / 17.0).abs() < 0.05,
            "{}",
            est.selectivity
        );
    }
}
