//! Cost-based query optimizer.
//!
//! The optimizer is deliberately classical — Selinger-style dynamic
//! programming over join orders with a tuples-processed cost model — because
//! the JITS paper's entire premise is that *a competent cost-based optimizer
//! fed bad statistics picks bad plans*. The interesting part for JITS is the
//! [`StatisticsProvider`] seam: every cardinality the enumerator uses flows
//! through that trait, so the same optimizer runs with
//!
//! * no statistics (textbook default selectivities),
//! * general catalog statistics (1-D histograms + independence), or
//! * query-specific statistics (JITS: exact joint selectivities from
//!   compile-time sampling and the QSS archive).
//!
//! Every estimate carries its `statlist` — the column groups whose
//! statistics produced it — which is exactly what the paper's StatHistory
//! records and the LEO-style feedback loop attributes errors to.
//!
//! [`StatisticsProvider`]: provider::StatisticsProvider

#![forbid(unsafe_code)]

pub mod card;
pub mod cost;
pub mod enumerate;
pub mod plan;
pub mod provider;

pub use card::{CardinalityEstimator, DefaultSelectivities};
pub use cost::{CostModel, EST_BLOCK_ROWS};
pub use enumerate::optimize;
pub use plan::{NodeEst, PhysicalPlan, PlanSummary, ScanGroupEstimate};
pub use provider::{
    CatalogStatisticsProvider, NoStatisticsProvider, SelEstimate, StatSource, StatisticsProvider,
};
