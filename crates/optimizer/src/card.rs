//! Cardinality estimation.
//!
//! The estimator turns predicate groups into selectivities by asking the
//! [`StatisticsProvider`] for the *joint* group first and, failing that,
//! decomposing greedily into the largest sub-groups the provider can answer,
//! combining the pieces under the independence assumption. The decomposition
//! records exactly which stored statistics were used (the `statlist`), which
//! the JITS StatHistory needs to later judge how well those statistics
//! estimated this group.

use crate::provider::{SelEstimate, StatSource, StatisticsProvider};
use jits_common::ColGroup;
use jits_query::{PredKind, QueryBlock};

/// Textbook fallback constants used when no statistics exist.
#[derive(Debug, Clone, Copy)]
pub struct DefaultSelectivities {
    /// Equality predicate.
    pub eq: f64,
    /// Range predicate (one- or two-sided).
    pub range: f64,
    /// Not-equal predicate.
    pub noteq: f64,
    /// Join predicate.
    pub join: f64,
    /// Table cardinality when the table has never been analyzed.
    pub table_cardinality: f64,
    /// Distinct count when unknown.
    pub distinct: f64,
}

impl Default for DefaultSelectivities {
    fn default() -> Self {
        DefaultSelectivities {
            eq: 0.1,
            range: 1.0 / 3.0,
            noteq: 0.9,
            join: 0.1,
            table_cardinality: 1000.0,
            distinct: 10.0,
        }
    }
}

/// Cardinality estimator over a provider.
pub struct CardinalityEstimator<'a> {
    provider: &'a dyn StatisticsProvider,
    defaults: DefaultSelectivities,
}

impl<'a> CardinalityEstimator<'a> {
    /// Builds an estimator.
    pub fn new(provider: &'a dyn StatisticsProvider, defaults: DefaultSelectivities) -> Self {
        CardinalityEstimator { provider, defaults }
    }

    /// The fallback constants.
    pub fn defaults(&self) -> DefaultSelectivities {
        self.defaults
    }

    /// Estimated base cardinality of the table behind quantifier `qun`.
    pub fn table_cardinality(&self, block: &QueryBlock, qun: usize) -> f64 {
        self.provider
            .table_cardinality(block.quns[qun].table)
            .unwrap_or(self.defaults.table_cardinality)
            .max(1.0)
    }

    /// Joint selectivity of all the given local predicates (indices into
    /// `block.local_predicates`, all on `qun`).
    ///
    /// Strategy: ask for the whole group; otherwise peel off the largest
    /// answerable sub-group, multiply, and recurse on the remainder
    /// (independence across sub-groups). Unanswerable single predicates use
    /// the defaults.
    pub fn local_selectivity(
        &self,
        block: &QueryBlock,
        qun: usize,
        pred_indices: &[usize],
    ) -> SelEstimate {
        if pred_indices.is_empty() {
            return SelEstimate {
                selectivity: 1.0,
                statlist: Vec::new(),
                source: StatSource::Default,
            };
        }
        if let Some(est) = self.provider.group_selectivity(block, qun, pred_indices) {
            return est;
        }
        let mut remaining: Vec<usize> = pred_indices.to_vec();
        let mut selectivity = 1.0;
        let mut statlist: Vec<ColGroup> = Vec::new();
        let mut best_source = StatSource::Default;

        while !remaining.is_empty() {
            match self.largest_answerable(block, qun, &remaining) {
                Some((subset, est)) => {
                    selectivity *= est.selectivity;
                    statlist.extend(est.statlist);
                    if est.source != StatSource::Default {
                        best_source = est.source;
                    }
                    remaining.retain(|i| !subset.contains(i));
                }
                None => {
                    // nothing answerable: defaults for each remaining pred
                    for &i in &remaining {
                        selectivity *= self.default_for(block, i);
                    }
                    remaining.clear();
                }
            }
        }
        SelEstimate {
            selectivity: selectivity.clamp(0.0, 1.0),
            statlist,
            source: best_source,
        }
    }

    /// The largest (by predicate count) sub-group the provider answers.
    /// Subset enumeration is exponential in the group size, but groups are
    /// bounded by the predicates on a single table (and JITS caps them).
    fn largest_answerable(
        &self,
        block: &QueryBlock,
        qun: usize,
        preds: &[usize],
    ) -> Option<(Vec<usize>, SelEstimate)> {
        let n = preds.len();
        debug_assert!(n <= 20, "predicate group too large to enumerate");
        for size in (1..=n).rev() {
            // enumerate subsets of this size via bitmask counting
            for mask in 1u32..(1 << n) {
                if mask.count_ones() as usize != size {
                    continue;
                }
                let subset: Vec<usize> = (0..n)
                    .filter(|b| mask & (1 << b) != 0)
                    .map(|b| preds[b])
                    .collect();
                if let Some(est) = self.provider.group_selectivity(block, qun, &subset) {
                    return Some((subset, est));
                }
            }
        }
        None
    }

    /// Default selectivity for a single predicate.
    fn default_for(&self, block: &QueryBlock, pred_index: usize) -> f64 {
        match &block.local_predicates[pred_index].kind {
            PredKind::Interval(iv) if iv.is_point() => self.defaults.eq,
            PredKind::Interval(_) => self.defaults.range,
            PredKind::NotEq(_) => self.defaults.noteq,
            PredKind::InList(vals) => (self.defaults.eq * vals.len() as f64).min(1.0),
            // most real columns are mostly non-NULL
            PredKind::IsNull(true) => 1.0 - self.defaults.noteq,
            PredKind::IsNull(false) => self.defaults.noteq,
        }
    }

    /// Distinct count of a column, falling back to the default.
    pub fn distinct_or_default(
        &self,
        block: &QueryBlock,
        qun: usize,
        column: jits_common::ColumnId,
    ) -> f64 {
        self.provider
            .distinct(block.quns[qun].table, column)
            .unwrap_or(self.defaults.distinct)
    }

    /// Selectivity of one equality join predicate:
    /// `1 / max(distinct(left key), distinct(right key))`, defaulting when
    /// distincts are unknown.
    pub fn single_join_selectivity(
        &self,
        block: &QueryBlock,
        j: &jits_query::JoinPredicate,
    ) -> f64 {
        let d_left = self.provider.distinct(block.quns[j.left.0].table, j.left.1);
        let d_right = self
            .provider
            .distinct(block.quns[j.right.0].table, j.right.1);
        let sel = match (d_left, d_right) {
            (Some(a), Some(b)) => 1.0 / a.max(b).max(1.0),
            (Some(a), None) => 1.0 / a.max(1.0),
            (None, Some(b)) => 1.0 / b.max(1.0),
            (None, None) => self.defaults.join,
        };
        sel.clamp(0.0, 1.0)
    }

    /// Selectivity of the equality join predicates connecting two quantifier
    /// sets (product over the connecting predicates; 1 for a cross product).
    pub fn join_selectivity(
        &self,
        block: &QueryBlock,
        left_set: &[usize],
        right_set: &[usize],
    ) -> f64 {
        block
            .joins_between(left_set, right_set)
            .into_iter()
            .map(|j| self.single_join_selectivity(block, j))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{CatalogStatisticsProvider, NoStatisticsProvider};
    use jits_catalog::{runstats, Catalog, RunstatsOptions};
    use jits_common::{DataType, Schema, TableId, Value};
    use jits_query::{bind_statement, parse, BoundStatement};
    use jits_storage::Table;

    /// Correlated data: model determines make (every Camry is a Toyota).
    fn setup() -> (Catalog, Table) {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("model", DataType::Str),
            ("year", DataType::Int),
        ]);
        let tid = catalog.register_table("car", schema.clone()).unwrap();
        let mut t = Table::new("car", schema);
        for i in 0..1000i64 {
            let (make, model) = match i % 10 {
                0..=2 => ("Toyota", "Camry"),
                3..=5 => ("Toyota", "Corolla"),
                6..=7 => ("Honda", "Civic"),
                _ => ("Audi", "A4"),
            };
            t.insert(vec![
                Value::Int(i),
                Value::str(make),
                Value::str(model),
                Value::Int(1990 + (i % 17)),
            ])
            .unwrap();
        }
        let (ts, cs) = runstats(&t, RunstatsOptions::default(), 1);
        catalog.set_stats(tid, ts, cs).unwrap();
        (catalog, t)
    }

    fn block(catalog: &Catalog, sql: &str) -> QueryBlock {
        let BoundStatement::Select(b) = bind_statement(&parse(sql).unwrap(), catalog).unwrap()
        else {
            panic!()
        };
        b
    }

    #[test]
    fn no_stats_uses_defaults() {
        let (catalog, _) = setup();
        let b = block(
            &catalog,
            "SELECT * FROM car WHERE make = 'Toyota' AND year > 2000",
        );
        let p = NoStatisticsProvider;
        let est = CardinalityEstimator::new(&p, DefaultSelectivities::default());
        let sel = est.local_selectivity(&b, 0, &[0, 1]);
        assert!((sel.selectivity - 0.1 / 3.0).abs() < 1e-9);
        assert_eq!(sel.source, StatSource::Default);
        assert!(sel.statlist.is_empty());
        assert_eq!(est.table_cardinality(&b, 0), 1000.0); // the default
    }

    #[test]
    fn catalog_independence_underestimates_correlated_group() {
        let (catalog, _) = setup();
        let b = block(
            &catalog,
            "SELECT * FROM car WHERE make = 'Toyota' AND model = 'Camry'",
        );
        let p = CatalogStatisticsProvider::new(&catalog);
        let est = CardinalityEstimator::new(&p, DefaultSelectivities::default());
        let sel = est.local_selectivity(&b, 0, &[0, 1]);
        // truth: 0.3. independence says 0.6 * 0.3 = 0.18
        assert!(
            (sel.selectivity - 0.18).abs() < 0.02,
            "sel {}",
            sel.selectivity
        );
        assert_eq!(sel.statlist.len(), 2, "two 1-D statistics combined");
        assert_eq!(sel.source, StatSource::Catalog);
    }

    #[test]
    fn empty_group_is_one() {
        let (catalog, _) = setup();
        let b = block(&catalog, "SELECT * FROM car");
        let p = NoStatisticsProvider;
        let est = CardinalityEstimator::new(&p, DefaultSelectivities::default());
        assert_eq!(est.local_selectivity(&b, 0, &[]).selectivity, 1.0);
    }

    #[test]
    fn join_selectivity_uses_distincts() {
        let mut catalog = Catalog::new();
        let car = Schema::from_pairs(&[("id", DataType::Int), ("ownerid", DataType::Int)]);
        let owner = Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]);
        let car_id = catalog.register_table("car", car.clone()).unwrap();
        let owner_id = catalog.register_table("owner", owner.clone()).unwrap();

        let mut tc = Table::new("car", car);
        let mut to = Table::new("owner", owner);
        for i in 0..500i64 {
            tc.insert(vec![Value::Int(i), Value::Int(i % 100)]).unwrap();
        }
        for i in 0..100i64 {
            to.insert(vec![Value::Int(i), Value::str(format!("o{i}"))])
                .unwrap();
        }
        let (ts, cs) = runstats(&tc, RunstatsOptions::default(), 1);
        catalog.set_stats(car_id, ts, cs).unwrap();
        let (ts, cs) = runstats(&to, RunstatsOptions::default(), 1);
        catalog.set_stats(owner_id, ts, cs).unwrap();

        let b = block(
            &catalog,
            "SELECT * FROM car c, owner o WHERE c.ownerid = o.id",
        );
        let p = CatalogStatisticsProvider::new(&catalog);
        let est = CardinalityEstimator::new(&p, DefaultSelectivities::default());
        let sel = est.join_selectivity(&b, &[0], &[1]);
        assert!((sel - 0.01).abs() < 1e-9, "sel {sel}");
        // disconnected sets: cross product
        assert_eq!(est.join_selectivity(&b, &[0], &[]), 1.0);

        // defaults when no stats
        let p = NoStatisticsProvider;
        let est = CardinalityEstimator::new(&p, DefaultSelectivities::default());
        assert!((est.join_selectivity(&b, &[0], &[1]) - 0.1).abs() < 1e-9);

        let _ = TableId(0);
    }
}
