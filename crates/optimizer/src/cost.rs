//! The cost model.
//!
//! Costs are in *tuples processed* — the same unit the executor's work
//! counters report — so estimated and actual work are directly comparable
//! and the simulated-time experiments are machine-independent.

/// Rows per zone-map block assumed when costing a pruned scan. Must match
/// the storage layout (`jits_storage::BLOCK_SIZE`); the executor
/// debug-asserts the two constants agree.
pub const EST_BLOCK_ROWS: f64 = 1024.0;

/// Per-operation cost constants.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Reading one row during a sequential scan.
    pub seq_row: f64,
    /// Probing one block's zone-map summary during a pruned scan
    /// (metadata only — pruned blocks are charged this instead of their
    /// row cost).
    pub block_probe: f64,
    /// One index probe (tree descent), amortized.
    pub index_probe: f64,
    /// Fetching one matching row through an index.
    pub index_row: f64,
    /// Inserting one row into a hash table.
    pub hash_build_row: f64,
    /// Probing the hash table with one row.
    pub hash_probe_row: f64,
    /// Emitting one output row from any operator.
    pub output_row: f64,
    /// Evaluating one (outer, inner) pair in a nested-loop join.
    pub nl_pair: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // The ratios mirror a disk-resident system (the paper's DB2
        // testbed): a random index probe costs tens of sequential rows, so
        // an index nested-loop driven by an underestimated outer is exactly
        // the expensive mistake misestimated selectivities cause.
        CostModel {
            seq_row: 1.0,
            block_probe: 2.0,
            index_probe: 40.0,
            index_row: 4.0,
            hash_build_row: 2.0,
            hash_probe_row: 1.0,
            output_row: 0.5,
            nl_pair: 0.25,
        }
    }
}

impl CostModel {
    /// Full scan of `table_rows`, emitting `out_rows`.
    pub fn seq_scan(&self, table_rows: f64, out_rows: f64) -> f64 {
        table_rows * self.seq_row + out_rows * self.output_row
    }

    /// Index access fetching `index_rows` then filtering to `out_rows`.
    pub fn index_scan(&self, index_rows: f64, out_rows: f64) -> f64 {
        self.index_probe + index_rows * self.index_row + out_rows * self.output_row
    }

    /// Zone-map-pruned scan: every block pays a metadata probe, only the
    /// rows of surviving blocks pay row cost. One formula shared by plan
    /// costing and by both executors' work charging, so charged work stays
    /// bit-identical whether or not pruned blocks are physically skipped.
    pub fn pruned_scan(&self, blocks_total: f64, surviving_rows: f64, out_rows: f64) -> f64 {
        blocks_total * self.block_probe + surviving_rows * self.seq_row + out_rows * self.output_row
    }

    /// Hash join on already-costed inputs.
    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
        build_rows * self.hash_build_row
            + probe_rows * self.hash_probe_row
            + out_rows * self.output_row
    }

    /// Index nested-loop join: one probe per outer row, fetching
    /// `rows_per_probe` matching inner rows each.
    pub fn index_nl_join(&self, outer_rows: f64, rows_per_probe: f64, out_rows: f64) -> f64 {
        outer_rows * (self.index_probe + rows_per_probe * self.index_row)
            + out_rows * self.output_row
    }

    /// Plain nested-loop join over materialized inputs.
    pub fn nl_join(&self, outer_rows: f64, inner_rows: f64, out_rows: f64) -> f64 {
        outer_rows * inner_rows * self.nl_pair + out_rows * self.output_row
    }

    /// Comparison sort of `n` rows (ORDER BY). One formula shared by the
    /// row and batch executors so their work charges stay bit-identical.
    pub fn sort(&self, n: f64) -> f64 {
        n * n.max(2.0).log2() * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_beats_scan_when_selective() {
        let m = CostModel::default();
        // 1% of 100k rows through an index vs scanning everything
        assert!(m.index_scan(1_000.0, 1_000.0) < m.seq_scan(100_000.0, 1_000.0));
        // 90% through an index is worse than a scan
        assert!(m.index_scan(90_000.0, 90_000.0) > m.seq_scan(100_000.0, 90_000.0));
    }

    #[test]
    fn pruned_scan_sits_between_index_and_full_scan() {
        let m = CostModel::default();
        // 100k rows = ~98 blocks; a clustered 0.5% predicate survives ~1
        // block. Pruning must beat the full scan by a wide margin...
        let (blocks, surviving, out) = (98.0, 1024.0, 500.0);
        assert!(m.pruned_scan(blocks, surviving, out) < m.seq_scan(100_000.0, out) / 3.0);
        // ...but a near-zero selectivity still favors the index
        assert!(m.index_scan(50.0, 50.0) < m.pruned_scan(blocks, 1024.0, 50.0));
        // and with nothing pruned it degenerates to scan + probe overhead
        assert!(m.pruned_scan(blocks, 100_000.0, out) > m.seq_scan(100_000.0, out));
    }

    #[test]
    fn hash_join_beats_nl_on_large_inputs() {
        let m = CostModel::default();
        let (l, r, out) = (10_000.0, 10_000.0, 5_000.0);
        assert!(m.hash_join(l, r, out) < m.nl_join(l, r, out));
    }

    #[test]
    fn index_nl_wins_with_tiny_outer() {
        let m = CostModel::default();
        // 10 outer rows, each matching ~5 of 1M inner rows
        let inl = m.index_nl_join(10.0, 5.0, 50.0);
        // hash join must at least build or probe the 1M-row side
        let hash = m.hash_join(1_000_000.0, 10.0, 50.0);
        assert!(inl < hash);
        // with a huge outer the index NL loses
        let inl = m.index_nl_join(500_000.0, 5.0, 2_500_000.0);
        let hash = m.hash_join(1_000_000.0, 500_000.0, 2_500_000.0);
        assert!(hash < inl);
    }
}
