//! Dynamic-programming plan enumeration (bushy, Selinger-style).
//!
//! For every subset of quantifiers the enumerator keeps the cheapest plan.
//! Access paths (sequential vs. index scan), join order, join sides, and
//! join algorithm (hash / nested-loop / index nested-loop) are all decided
//! by estimated cost — which is exactly the lever cardinality misestimation
//! pulls: an optimistic selectivity makes an index nested-loop with a huge
//! outer look cheap, and that is the slow-plan failure mode the JITS paper
//! measures.
//!
//! Subset cardinalities use the split-independent formula
//! `prod(filtered base rows) * prod(join predicate selectivities inside the
//! subset)`, so plan choice never changes the cardinality of a set — only
//! its cost.

use crate::card::CardinalityEstimator;
use crate::cost::{CostModel, EST_BLOCK_ROWS};
use crate::plan::{JoinKey, NodeEst, PhysicalPlan, ScanGroupEstimate};
use jits_catalog::Catalog;
use jits_common::{JitsError, Result};
use jits_query::{PredKind, QueryBlock};

/// Maximum quantifiers the bitmask DP supports.
pub const MAX_QUNS: usize = 16;

/// Produces the cheapest physical plan for a block.
pub fn optimize(
    block: &QueryBlock,
    estimator: &CardinalityEstimator<'_>,
    cost: &CostModel,
    catalog: &Catalog,
) -> Result<PhysicalPlan> {
    let n = block.quns.len();
    if n == 0 {
        return Err(JitsError::Plan("query block has no tables".into()));
    }
    if n > MAX_QUNS {
        return Err(JitsError::Plan(format!(
            "too many tables ({n} > {MAX_QUNS})"
        )));
    }

    // -- per-quantifier local estimates ---------------------------------
    let mut scans: Vec<ScanGroupEstimate> = Vec::with_capacity(n);
    for qun in 0..n {
        let preds = block.local_predicates_of(qun);
        let est = estimator.local_selectivity(block, qun, &preds);
        let base_rows = estimator.table_cardinality(block, qun);
        scans.push(ScanGroupEstimate {
            qun,
            table: block.quns[qun].table,
            pred_indices: preds,
            selectivity: est.selectivity,
            base_rows,
            statlist: est.statlist,
            source: est.source,
        });
    }

    // per-join-predicate selectivity
    let join_sels: Vec<f64> = block
        .join_predicates
        .iter()
        .map(|j| estimator.single_join_selectivity(block, j))
        .collect();

    // split-independent cardinality of a quantifier subset
    let rows_of = |mask: u32| -> f64 {
        let mut rows = 1.0;
        for (qun, scan) in scans.iter().enumerate() {
            if mask & (1 << qun) != 0 {
                rows *= (scan.base_rows * scan.selectivity).max(0.0);
            }
        }
        for (ji, j) in block.join_predicates.iter().enumerate() {
            if mask & (1 << j.left.0) != 0 && mask & (1 << j.right.0) != 0 {
                rows *= join_sels[ji];
            }
        }
        rows
    };

    // -- base access paths ------------------------------------------------
    let full = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut best: Vec<Option<PhysicalPlan>> = vec![None; (full as usize) + 1];
    for (qun, scan) in scans.iter().enumerate() {
        let out_rows = rows_of(1 << qun);
        let seq = PhysicalPlan::SeqScan {
            scan: scan.clone(),
            est: NodeEst {
                rows: out_rows,
                cost: cost.seq_scan(scan.base_rows, out_rows),
            },
        };
        let mut chosen = seq;
        // index access on any indexed column constrained by an interval
        for &col in &catalog
            .table(block.quns[qun].table)
            .map(|t| t.indexed_columns.clone())
            .unwrap_or_default()
        {
            let col_preds: Vec<usize> = scan
                .pred_indices
                .iter()
                .copied()
                .filter(|&i| {
                    let p = &block.local_predicates[i];
                    p.column == col && matches!(p.kind, PredKind::Interval(_))
                })
                .collect();
            if col_preds.is_empty() {
                continue;
            }
            let idx_sel = estimator.local_selectivity(block, qun, &col_preds);
            let index_rows = scan.base_rows * idx_sel.selectivity;
            let c = cost.index_scan(index_rows, out_rows);
            if c < chosen.est().cost {
                chosen = PhysicalPlan::IndexScan {
                    scan: scan.clone(),
                    index_column: col,
                    index_rows,
                    est: NodeEst {
                        rows: out_rows,
                        cost: c,
                    },
                };
            }
        }
        // zone-map-pruned scan: needs at least one interval predicate to
        // prune on. The block estimate assumes the matching rows are
        // clustered (the favorable layout pruning exists for): the rows fit
        // in ceil(matching / block) blocks plus one straddler. Ties go to
        // the simpler paths above (strict `<`), so tables of a block or two
        // never flip away from their sequential plan.
        let has_interval = scan
            .pred_indices
            .iter()
            .any(|&i| matches!(block.local_predicates[i].kind, PredKind::Interval(_)));
        if has_interval && scan.base_rows > 0.0 {
            let blocks_total = (scan.base_rows / EST_BLOCK_ROWS).ceil().max(1.0);
            let matching = scan.base_rows * scan.selectivity;
            let est_blocks = ((matching / EST_BLOCK_ROWS).ceil() + 1.0).min(blocks_total);
            let surviving_rows = (est_blocks * EST_BLOCK_ROWS).min(scan.base_rows);
            let c = cost.pruned_scan(blocks_total, surviving_rows, out_rows);
            if c < chosen.est().cost {
                chosen = PhysicalPlan::PrunedScan {
                    scan: scan.clone(),
                    est_blocks,
                    est: NodeEst {
                        rows: out_rows,
                        cost: c,
                    },
                };
            }
        }
        best[1usize << qun] = Some(chosen);
    }

    // -- DP over subsets ---------------------------------------------------
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let mut champion: Option<PhysicalPlan> = None;
        // enumerate proper nonempty submasks
        let mut s1 = (mask - 1) & mask;
        while s1 != 0 {
            let s2 = mask ^ s1;
            if let (Some(left), Some(right)) = (&best[s1 as usize], &best[s2 as usize]) {
                let out_rows = rows_of(mask);
                let left_quns: Vec<usize> = (0..n).filter(|q| s1 & (1 << q) != 0).collect();
                let right_quns: Vec<usize> = (0..n).filter(|q| s2 & (1 << q) != 0).collect();
                let keys: Vec<JoinKey> = block
                    .joins_between(&left_quns, &right_quns)
                    .into_iter()
                    .map(|j| {
                        if left_quns.contains(&j.left.0) {
                            (j.left, j.right)
                        } else {
                            (j.right, j.left)
                        }
                    })
                    .collect();

                // hash join (build = left, probe = right) — needs keys
                if !keys.is_empty() {
                    let c = left.est().cost
                        + right.est().cost
                        + cost.hash_join(left.est().rows, right.est().rows, out_rows);
                    if champion.as_ref().is_none_or(|p| c < p.est().cost) {
                        champion = Some(PhysicalPlan::HashJoin {
                            build: Box::new(left.clone()),
                            probe: Box::new(right.clone()),
                            keys: keys.clone(),
                            est: NodeEst {
                                rows: out_rows,
                                cost: c,
                            },
                        });
                    }
                }

                // nested loop (also covers cross products)
                {
                    let c = left.est().cost
                        + right.est().cost
                        + cost.nl_join(left.est().rows, right.est().rows, out_rows);
                    if champion.as_ref().is_none_or(|p| c < p.est().cost) {
                        champion = Some(PhysicalPlan::NLJoin {
                            outer: Box::new(left.clone()),
                            inner: Box::new(right.clone()),
                            keys: keys.clone(),
                            est: NodeEst {
                                rows: out_rows,
                                cost: c,
                            },
                        });
                    }
                }

                // index nested-loop: right side must be a single quantifier
                // whose table has an index on (the inner side of) some key
                if right_quns.len() == 1 && !keys.is_empty() {
                    let inner_qun = right_quns[0];
                    let inner_scan = &scans[inner_qun];
                    let indexed = catalog
                        .table(block.quns[inner_qun].table)
                        .map(|t| t.indexed_columns.clone())
                        .unwrap_or_default();
                    if let Some(key) = keys.iter().find(|(_, (_, ic))| indexed.contains(ic)) {
                        let inner_col = key.1 .1;
                        let distinct = estimator.distinct_or_default(block, inner_qun, inner_col);
                        let rows_per_probe = (inner_scan.base_rows / distinct.max(1.0)).max(0.0);
                        let c = left.est().cost
                            + cost.index_nl_join(left.est().rows, rows_per_probe, out_rows);
                        if champion.as_ref().is_none_or(|p| c < p.est().cost) {
                            // put the driving key first; executor probes on it
                            let mut ordered_keys = vec![*key];
                            ordered_keys.extend(keys.iter().filter(|k| *k != key).copied());
                            champion = Some(PhysicalPlan::IndexNLJoin {
                                outer: Box::new(left.clone()),
                                inner: inner_scan.clone(),
                                index_column: inner_col,
                                keys: ordered_keys,
                                est: NodeEst {
                                    rows: out_rows,
                                    cost: c,
                                },
                            });
                        }
                    }
                }
            }
            s1 = (s1 - 1) & mask;
        }
        best[mask as usize] = champion;
    }

    best[full as usize]
        .take()
        .ok_or_else(|| JitsError::Plan("enumeration produced no plan".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::DefaultSelectivities;
    use crate::provider::{CatalogStatisticsProvider, NoStatisticsProvider};
    use jits_catalog::{runstats, RunstatsOptions};
    use jits_common::{ColumnId, DataType, Schema, Value};
    use jits_query::{bind_statement, parse, BoundStatement};
    use jits_storage::Table;

    /// car (1000 rows, FK ownerid) + owner (100 rows, PK id, indexed).
    fn setup() -> (Catalog, Vec<Table>) {
        let mut catalog = Catalog::new();
        let car_schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("ownerid", DataType::Int),
            ("make", DataType::Str),
        ]);
        let owner_schema = Schema::from_pairs(&[("id", DataType::Int), ("salary", DataType::Int)]);
        let car_id = catalog.register_table("car", car_schema.clone()).unwrap();
        let owner_id = catalog
            .register_table("owner", owner_schema.clone())
            .unwrap();

        let mut car = Table::new("car", car_schema);
        for i in 0..1000i64 {
            let make = if i % 5 == 0 { "Toyota" } else { "Honda" };
            car.insert(vec![Value::Int(i), Value::Int(i % 100), Value::str(make)])
                .unwrap();
        }
        let mut owner = Table::new("owner", owner_schema);
        for i in 0..100i64 {
            owner
                .insert(vec![Value::Int(i), Value::Int(1000 * i)])
                .unwrap();
        }
        owner.create_index(ColumnId(0)).unwrap();
        catalog.add_index(owner_id, ColumnId(0)).unwrap();

        let (ts, cs) = runstats(&car, RunstatsOptions::default(), 1);
        catalog.set_stats(car_id, ts, cs).unwrap();
        let (ts, cs) = runstats(&owner, RunstatsOptions::default(), 1);
        catalog.set_stats(owner_id, ts, cs).unwrap();
        (catalog, vec![car, owner])
    }

    fn plan_for(catalog: &Catalog, sql: &str) -> PhysicalPlan {
        let BoundStatement::Select(block) = bind_statement(&parse(sql).unwrap(), catalog).unwrap()
        else {
            panic!()
        };
        let provider = CatalogStatisticsProvider::new(catalog);
        let est = CardinalityEstimator::new(&provider, DefaultSelectivities::default());
        optimize(&block, &est, &CostModel::default(), catalog).unwrap()
    }

    #[test]
    fn single_table_plan_is_a_scan() {
        let (catalog, _) = setup();
        let p = plan_for(&catalog, "SELECT * FROM car WHERE make = 'Toyota'");
        match &p {
            PhysicalPlan::SeqScan { scan, est } => {
                assert_eq!(scan.pred_indices.len(), 1);
                assert!((est.rows - 200.0).abs() < 20.0, "rows {}", est.rows);
            }
            other => panic!("expected SeqScan, got {other:?}"),
        }
    }

    #[test]
    fn selective_interval_on_large_table_prefers_pruned_scan() {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("ts", DataType::Int), ("v", DataType::Int)]);
        let id = catalog.register_table("log", schema.clone()).unwrap();
        let mut log = Table::new("log", schema);
        for i in 0..50_000i64 {
            log.insert(vec![Value::Int(i), Value::Int(i % 7)]).unwrap();
        }
        let (ts, cs) = runstats(&log, RunstatsOptions::default(), 1);
        catalog.set_stats(id, ts, cs).unwrap();
        // ~1% of a 49-block table: probing every summary plus reading a
        // couple of blocks beats scanning 50k rows
        let p = plan_for(&catalog, "SELECT * FROM log WHERE ts < 500");
        match &p {
            PhysicalPlan::PrunedScan {
                est_blocks, est, ..
            } => {
                assert!(*est_blocks <= 3.0, "blocks {est_blocks}");
                assert!(est.cost < 50_000.0, "cost {}", est.cost);
            }
            other => panic!("expected PrunedScan, got:\n{}", other.explain()),
        }
        // a table of a block or less keeps its sequential plan
        let (small, _) = setup();
        let p = plan_for(&small, "SELECT * FROM owner WHERE salary > 5000");
        assert!(matches!(p, PhysicalPlan::SeqScan { .. }), "{}", p.explain());
    }

    #[test]
    fn join_produces_connected_plan_with_estimates() {
        let (catalog, _) = setup();
        let p = plan_for(
            &catalog,
            "SELECT * FROM car c, owner o WHERE c.ownerid = o.id AND make = 'Toyota'",
        );
        let quns = p.quns();
        assert_eq!(quns.len(), 2);
        // expected output: 200 car rows, each matching exactly 1 owner
        assert!((p.est().rows - 200.0).abs() < 30.0, "rows {}", p.est().rows);
        // both scans recorded for feedback
        assert_eq!(p.scan_estimates().len(), 2);
    }

    #[test]
    fn selective_outer_prefers_index_nested_loop() {
        let (catalog, _) = setup();
        // make='Toyota' keeps ~200 of 1000 car rows; probing the owner PK
        // index 200 times beats building a hash table over it -- but more
        // importantly the optimizer must pick SOME index-aware plan when the
        // outer is small. Force a very selective outer:
        let p = plan_for(
            &catalog,
            "SELECT * FROM car c, owner o \
             WHERE c.ownerid = o.id AND c.id = 7",
        );
        assert!(
            matches!(p, PhysicalPlan::IndexNLJoin { .. }),
            "expected IndexNLJoin, got:\n{}",
            p.explain()
        );
    }

    #[test]
    fn no_stats_defaults_still_plan() {
        let (catalog, _) = setup();
        let BoundStatement::Select(block) = bind_statement(
            &parse("SELECT * FROM car c, owner o WHERE c.ownerid = o.id").unwrap(),
            &catalog,
        )
        .unwrap() else {
            panic!()
        };
        let provider = NoStatisticsProvider;
        let est = CardinalityEstimator::new(&provider, DefaultSelectivities::default());
        let p = optimize(&block, &est, &CostModel::default(), &catalog).unwrap();
        assert_eq!(p.quns().len(), 2);
        // default table card (1000) and join sel (0.1): 1000*1000*0.1
        assert!(
            (p.est().rows - 100_000.0).abs() < 1.0,
            "rows {}",
            p.est().rows
        );
    }

    #[test]
    fn cross_product_when_no_join_predicate() {
        let (catalog, _) = setup();
        let p = plan_for(&catalog, "SELECT * FROM car c, owner o");
        assert!(matches!(p, PhysicalPlan::NLJoin { ref keys, .. } if keys.is_empty()));
        assert!((p.est().rows - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn four_way_join_covers_all_tables() {
        let (mut catalog, _) = setup();
        catalog
            .register_table(
                "accidents",
                Schema::from_pairs(&[("carid", DataType::Int), ("damage", DataType::Int)]),
            )
            .unwrap();
        catalog
            .register_table(
                "demographics",
                Schema::from_pairs(&[("ownerid", DataType::Int), ("city", DataType::Str)]),
            )
            .unwrap();
        let p = plan_for(
            &catalog,
            "SELECT * FROM car c, owner o, accidents a, demographics d \
             WHERE c.ownerid = o.id AND a.carid = c.id AND d.ownerid = o.id \
             AND make = 'Toyota'",
        );
        let mut quns = p.quns();
        quns.sort_unstable();
        assert_eq!(quns, vec![0, 1, 2, 3]);
        assert_eq!(p.scan_estimates().len(), 4);
    }

    #[test]
    fn plan_cost_monotone_in_inputs() {
        // larger base tables must never produce a cheaper best plan
        let (catalog, _) = setup();
        let small = plan_for(&catalog, "SELECT * FROM owner WHERE salary > 5000");
        let big = plan_for(&catalog, "SELECT * FROM car WHERE make = 'Toyota'");
        assert!(small.est().cost < big.est().cost);
    }
}
