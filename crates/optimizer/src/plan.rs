//! Physical plans.

use crate::provider::StatSource;
use jits_common::{ColGroup, ColumnId, TableId};
use std::fmt;

/// Estimated output rows and cumulative cost of a plan node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEst {
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated cumulative cost (tuples-processed units).
    pub cost: f64,
}

/// Everything the feedback loop needs to know about how a base-table access
/// was estimated: the predicate group applied, the estimate, and the
/// statistics (`statlist`) that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanGroupEstimate {
    /// Quantifier index within the block.
    pub qun: usize,
    /// Base table.
    pub table: TableId,
    /// Indices into `block.local_predicates` applied at this access.
    pub pred_indices: Vec<usize>,
    /// Estimated joint selectivity of the group.
    pub selectivity: f64,
    /// Estimated base-table cardinality used.
    pub base_rows: f64,
    /// Statistics used to produce the estimate.
    pub statlist: Vec<ColGroup>,
    /// Estimate provenance.
    pub source: StatSource,
}

impl ScanGroupEstimate {
    /// The column group of the applied predicates, if any predicates exist.
    pub fn colgroup(&self, block: &jits_query::QueryBlock) -> Option<ColGroup> {
        if self.pred_indices.is_empty() {
            None
        } else {
            Some(block.colgroup_of(&self.pred_indices))
        }
    }
}

/// A join key: (left-side quantifier/column, right-side quantifier/column).
pub type JoinKey = ((usize, ColumnId), (usize, ColumnId));

/// A physical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full scan with all local predicates applied.
    SeqScan {
        /// Scan estimate and predicate bookkeeping.
        scan: ScanGroupEstimate,
        /// Node estimates.
        est: NodeEst,
    },
    /// Zone-map-pruned scan: every block's summary is probed, only blocks
    /// that may contain matching rows are read. All local predicates are
    /// still applied to every surviving row, so results are identical to a
    /// full scan.
    PrunedScan {
        /// Scan estimate and predicate bookkeeping.
        scan: ScanGroupEstimate,
        /// Estimated number of blocks surviving zone-map pruning.
        est_blocks: f64,
        /// Node estimates.
        est: NodeEst,
    },
    /// Index range/equality access on `index_column`, residual predicates
    /// applied afterwards.
    IndexScan {
        /// Scan estimate (covers the *full* predicate group).
        scan: ScanGroupEstimate,
        /// The indexed column driving the access.
        index_column: ColumnId,
        /// Estimated rows fetched from the index before residual filtering.
        index_rows: f64,
        /// Node estimates.
        est: NodeEst,
    },
    /// Hash join: build on the left child, probe with the right.
    HashJoin {
        /// Build side.
        build: Box<PhysicalPlan>,
        /// Probe side.
        probe: Box<PhysicalPlan>,
        /// Equality keys (build side first).
        keys: Vec<JoinKey>,
        /// Node estimates.
        est: NodeEst,
    },
    /// Index nested-loop join: for each outer tuple, probe the inner
    /// table's index on the join column.
    IndexNLJoin {
        /// Outer side.
        outer: Box<PhysicalPlan>,
        /// Inner base-table access description (predicates applied after
        /// each index probe).
        inner: ScanGroupEstimate,
        /// Inner index column (must equal the inner side of `keys[0]`).
        index_column: ColumnId,
        /// Equality keys (outer side first).
        keys: Vec<JoinKey>,
        /// Node estimates.
        est: NodeEst,
    },
    /// Nested-loop join (covers cross products and tiny inners).
    NLJoin {
        /// Outer side.
        outer: Box<PhysicalPlan>,
        /// Inner side.
        inner: Box<PhysicalPlan>,
        /// Equality keys, possibly empty (cross product).
        keys: Vec<JoinKey>,
        /// Node estimates.
        est: NodeEst,
    },
}

impl PhysicalPlan {
    /// Node estimates.
    pub fn est(&self) -> NodeEst {
        match self {
            PhysicalPlan::SeqScan { est, .. }
            | PhysicalPlan::PrunedScan { est, .. }
            | PhysicalPlan::IndexScan { est, .. }
            | PhysicalPlan::HashJoin { est, .. }
            | PhysicalPlan::IndexNLJoin { est, .. }
            | PhysicalPlan::NLJoin { est, .. } => *est,
        }
    }

    /// Quantifiers covered by this subtree, in tuple-layout order.
    pub fn quns(&self) -> Vec<usize> {
        match self {
            PhysicalPlan::SeqScan { scan, .. }
            | PhysicalPlan::PrunedScan { scan, .. }
            | PhysicalPlan::IndexScan { scan, .. } => {
                vec![scan.qun]
            }
            PhysicalPlan::HashJoin { build, probe, .. } => {
                let mut q = build.quns();
                q.extend(probe.quns());
                q
            }
            PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
                let mut q = outer.quns();
                q.push(inner.qun);
                q
            }
            PhysicalPlan::NLJoin { outer, inner, .. } => {
                let mut q = outer.quns();
                q.extend(inner.quns());
                q
            }
        }
    }

    /// All base-table access estimates in the tree (for feedback).
    pub fn scan_estimates(&self) -> Vec<&ScanGroupEstimate> {
        let mut out = Vec::new();
        self.collect_scans(&mut out);
        out
    }

    fn collect_scans<'a>(&'a self, out: &mut Vec<&'a ScanGroupEstimate>) {
        match self {
            PhysicalPlan::SeqScan { scan, .. }
            | PhysicalPlan::PrunedScan { scan, .. }
            | PhysicalPlan::IndexScan { scan, .. } => out.push(scan),
            PhysicalPlan::HashJoin { build, probe, .. } => {
                build.collect_scans(out);
                probe.collect_scans(out);
            }
            PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
                outer.collect_scans(out);
                out.push(inner);
            }
            PhysicalPlan::NLJoin { outer, inner, .. } => {
                outer.collect_scans(out);
                inner.collect_scans(out);
            }
        }
    }

    /// Renders an EXPLAIN-style tree.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let est = self.est();
        match self {
            PhysicalPlan::SeqScan { scan, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}SeqScan q{} [{} preds, sel {:.4}] rows={:.0} cost={:.0}",
                    scan.qun,
                    scan.pred_indices.len(),
                    scan.selectivity,
                    est.rows,
                    est.cost
                );
            }
            PhysicalPlan::PrunedScan {
                scan, est_blocks, ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}PrunedScan q{} [{} preds, sel {:.4}] blocks~{:.0} rows={:.0} cost={:.0}",
                    scan.qun,
                    scan.pred_indices.len(),
                    scan.selectivity,
                    est_blocks,
                    est.rows,
                    est.cost
                );
            }
            PhysicalPlan::IndexScan {
                scan, index_column, ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexScan q{} on {index_column} [{} preds, sel {:.4}] rows={:.0} cost={:.0}",
                    scan.qun,
                    scan.pred_indices.len(),
                    scan.selectivity,
                    est.rows,
                    est.cost
                );
            }
            PhysicalPlan::HashJoin {
                build, probe, keys, ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin [{} keys] rows={:.0} cost={:.0}",
                    keys.len(),
                    est.rows,
                    est.cost
                );
                build.explain_into(out, depth + 1);
                probe.explain_into(out, depth + 1);
            }
            PhysicalPlan::IndexNLJoin {
                outer,
                inner,
                index_column,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexNLJoin inner=q{} via {index_column} rows={:.0} cost={:.0}",
                    inner.qun, est.rows, est.cost
                );
                outer.explain_into(out, depth + 1);
            }
            PhysicalPlan::NLJoin {
                outer, inner, keys, ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}NLJoin [{} keys] rows={:.0} cost={:.0}",
                    keys.len(),
                    est.rows,
                    est.cost
                );
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
        }
    }
}

/// Compact plan description used in experiment logs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Join order as quantifier indices (left-deep rendering of the tree).
    pub qun_order: Vec<usize>,
    /// Estimated final cardinality.
    pub est_rows: f64,
    /// Estimated total cost.
    pub est_cost: f64,
}

impl From<&PhysicalPlan> for PlanSummary {
    fn from(p: &PhysicalPlan) -> Self {
        PlanSummary {
            qun_order: p.quns(),
            est_rows: p.est().rows,
            est_cost: p.est().cost,
        }
    }
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "order={:?} rows={:.0} cost={:.0}",
            self.qun_order, self.est_rows, self.est_cost
        )
    }
}
