//! Shared substrate for the JITS engine.
//!
//! This crate hosts the vocabulary types used by every other crate in the
//! workspace: typed [`Value`]s, [`Schema`] descriptions, identifier newtypes,
//! numeric [`Interval`] constraints, canonical [`ColGroup`] column-group
//! identities (the unit of statistics in the JITS paper), error types, and a
//! small dependency-free deterministic RNG used wherever reproducibility
//! matters.
//!
//! [`Value`]: value::Value
//! [`Schema`]: schema::Schema
//! [`Interval`]: interval::Interval
//! [`ColGroup`]: colgroup::ColGroup

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colgroup;
pub mod error;
pub mod fault;
pub mod ids;
pub mod interval;
pub mod rng;
pub mod schema;
pub mod testpath;
pub mod value;

pub use colgroup::ColGroup;
pub use error::{JitsError, Result};
pub use fault::{fault_key, FaultPlane, FaultSchedule, FaultSpec};
pub use ids::{ColumnId, TableId};
pub use interval::{Bound, Interval};
pub use rng::SplitMix64;
pub use schema::{ColumnDef, Schema};
pub use testpath::TestDir;
pub use value::{DataType, Value};
