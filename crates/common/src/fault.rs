//! Deterministic fault-injection plane.
//!
//! Chaos testing a statistics pipeline only pays off when a failing run can
//! be replayed bit-identically, so fault decisions here are *pure functions*
//! of `(fault seed, fault point, decision key, attempt)` — never wall clock,
//! never mutable counters shared across threads. A collection pass that
//! degrades table 3 at statement 17 degrades exactly that table at exactly
//! that statement whether the run uses 1 worker thread or 8.
//!
//! A [`FaultPlane`] is either *disabled* (the default: an `Option::None`
//! that inlines to a constant-false check, so production paths pay nothing)
//! or *enabled* with a seed and a set of [`FaultSpec`] schedules parsed from
//! a compact text grammar:
//!
//! ```text
//! point=mode:arg[:attempts][,point=mode:arg[:attempts]...]
//!
//! sample.draw=once:5          fire when the decision key equals 5
//! archive.read=every:3        fire on ~1/3 of keys (salted by the seed)
//! collect.worker=after:10     fire on every key >= 10
//! history.read=once:2:inf     persistent: retries never clear it
//! ```
//!
//! The optional `attempts` suffix bounds how many retry attempts observe the
//! fault (default 1: the fault is transient and the first retry succeeds);
//! `inf` makes it persistent so bounded retry exhausts and the caller must
//! degrade. The `every:k` schedule hashes the key with a per-point salt
//! derived from the seeded RNG stream, so different points firing "every 3"
//! do not fire on the same keys.
//!
//! Decision keys are supplied by the caller and must themselves be
//! deterministic: statement-scoped points use the statement clock, while
//! table- or group-scoped points combine the clock with the quantifier or
//! candidate ordinal via [`fault_key`].

use crate::rng::SplitMix64;

/// Fault point: a sample draw inside table collection.
pub const FP_SAMPLE_DRAW: &str = "sample.draw";
/// Fault point: committing drawn samples into the sample cache.
pub const FP_SAMPLECACHE_COMMIT: &str = "samplecache.commit";
/// Fault point: a whole collection worker failing on a table.
pub const FP_COLLECT_WORKER: &str = "collect.worker";
/// Fault point: reading (validating) an archive entry.
pub const FP_ARCHIVE_READ: &str = "archive.read";
/// Fault point: writing (refining) an archive entry.
pub const FP_ARCHIVE_WRITE: &str = "archive.write";
/// Fault point: reading the feedback history.
pub const FP_HISTORY_READ: &str = "history.read";
/// Fault point: a crash before any byte of a WAL record is written. The
/// statement's effects are durably absent; re-running it after recovery
/// reproduces the never-crashed state.
pub const FP_WAL_BEFORE_APPEND: &str = "wal.before_append";
/// Fault point: a crash after the record bytes reached the file but before
/// `fsync` made them durable — the unsynced tail is lost, so on disk this
/// is indistinguishable from [`FP_WAL_BEFORE_APPEND`].
pub const FP_WAL_AFTER_APPEND: &str = "wal.after_append_before_fsync";
/// Fault point: a crash mid-record — a torn tail of partial record bytes is
/// left in the log for recovery's truncation scan to find.
pub const FP_WAL_TORN_TAIL: &str = "wal.torn_tail";
/// Fault point: a crash while writing a checkpoint segment, leaving a
/// partial temp segment that recovery must ignore in favor of the previous
/// complete checkpoint.
pub const FP_WAL_MID_CHECKPOINT: &str = "wal.mid_checkpoint";

/// All fault points the pipeline exposes, in a fixed order (used by tests
/// and by spec validation).
pub const FAULT_POINTS: [&str; 10] = [
    FP_SAMPLE_DRAW,
    FP_SAMPLECACHE_COMMIT,
    FP_COLLECT_WORKER,
    FP_ARCHIVE_READ,
    FP_ARCHIVE_WRITE,
    FP_HISTORY_READ,
    FP_WAL_BEFORE_APPEND,
    FP_WAL_AFTER_APPEND,
    FP_WAL_TORN_TAIL,
    FP_WAL_MID_CHECKPOINT,
];

/// Upper bound on retry attempts at transient fault points. Attempt numbers
/// run `0..RETRY_LIMIT`; a fault that still fires at attempt
/// `RETRY_LIMIT - 1` exhausts the retry budget and the caller degrades.
pub const RETRY_LIMIT: u32 = 3;

/// Builds the decision key for a point scoped below the statement level:
/// `clock` identifies the statement, `unit` the quantifier / candidate
/// ordinal within it. The multiplier keeps per-statement units disjoint for
/// any realistic unit count.
#[inline]
pub fn fault_key(clock: u64, unit: u64) -> u64 {
    clock.wrapping_mul(1024).wrapping_add(unit)
}

/// When, within the key stream of one fault point, the fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Fire exactly when the decision key equals `n`.
    Once(u64),
    /// Fire on roughly one key in `k`, selected by a salted hash of the key
    /// so distinct points (and distinct seeds) pick distinct key sets.
    EveryK(u64),
    /// Fire on every key `>= n`.
    AfterN(u64),
}

/// One parsed `point=mode:arg[:attempts]` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The named fault point this clause arms.
    pub point: String,
    /// When the fault fires within the point's key stream.
    pub schedule: FaultSchedule,
    /// How many retry attempts observe the fault before it clears.
    /// `u32::MAX` (spelled `inf` in the grammar) never clears.
    pub max_attempts: u32,
}

#[derive(Debug)]
struct ArmedPoint {
    spec: FaultSpec,
    /// Per-point salt drawn from the seeded RNG stream; decorrelates
    /// `every:k` key selection across points sharing a seed.
    salt: u64,
}

#[derive(Debug)]
struct Inner {
    points: Vec<ArmedPoint>,
}

/// Handle threaded through the pipeline's context structs. Cloning is an
/// `Option<Arc>` copy; the disabled plane is a `None` whose checks compile
/// to constant false.
#[derive(Debug, Clone, Default)]
pub struct FaultPlane {
    inner: Option<std::sync::Arc<Inner>>,
}

/// FNV-1a over the point name: stable, dependency-free hash for deriving
/// per-point salt streams from the plane seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mixes a decision key through SplitMix64's finalizer (one fixed step of
/// the stream seeded at `key ^ salt`), giving `every:k` selection that is
/// uniform and point-specific.
fn mix(key: u64, salt: u64) -> u64 {
    SplitMix64::new(key ^ salt).next_u64()
}

impl FaultPlane {
    /// The no-op plane: every `fires` check is constant false.
    #[inline]
    pub fn disabled() -> Self {
        FaultPlane { inner: None }
    }

    /// Arms the plane with parsed specs. Per-point salts are drawn from the
    /// seeded RNG stream (`SplitMix64::new(seed ^ fnv(point))`), keeping
    /// every downstream decision a pure function of the seed.
    pub fn enabled(seed: u64, specs: Vec<FaultSpec>) -> Self {
        let points = specs
            .into_iter()
            .map(|spec| {
                let salt = SplitMix64::new(seed ^ fnv1a(&spec.point)).next_u64();
                ArmedPoint { spec, salt }
            })
            .collect();
        FaultPlane {
            inner: Some(std::sync::Arc::new(Inner { points })),
        }
    }

    /// Parses a comma-separated spec string and arms the plane. Returns a
    /// human-readable error naming the offending clause on bad input.
    pub fn from_spec(seed: u64, spec: &str) -> Result<Self, String> {
        Ok(FaultPlane::enabled(seed, parse_spec(spec)?))
    }

    /// True when at least one fault point is armed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Does `point` fail on `key` at retry `attempt`? Pure in all three
    /// arguments (plus the construction seed); thread-count independent by
    /// construction. Attempt numbers start at 0; transient faults (default
    /// `max_attempts` 1) clear on the first retry, persistent faults
    /// (`inf`) never clear.
    #[inline]
    pub fn fires(&self, point: &str, key: u64, attempt: u32) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        inner.points.iter().any(|p| {
            p.spec.point == point
                && attempt < p.spec.max_attempts
                && match p.spec.schedule {
                    FaultSchedule::Once(n) => key == n,
                    FaultSchedule::EveryK(k) => mix(key, p.salt).is_multiple_of(k),
                    FaultSchedule::AfterN(n) => key >= n,
                }
        })
    }

    /// Runs the bounded-retry protocol for a transient point: returns
    /// `(cleared, attempts_used)` where `attempts_used` counts the failed
    /// attempts (0 when the point never fired). `cleared == false` means
    /// the fault persisted through [`RETRY_LIMIT`] attempts and the caller
    /// must take its degradation path. Deterministic backoff is the
    /// caller's job: charge `1 << attempt` work units per failed attempt —
    /// never sleep.
    #[inline]
    pub fn retry(&self, point: &str, key: u64) -> (bool, u32) {
        if self.inner.is_none() {
            return (true, 0);
        }
        for attempt in 0..RETRY_LIMIT {
            if !self.fires(point, key, attempt) {
                return (true, attempt);
            }
        }
        (false, RETRY_LIMIT)
    }
}

/// Parses the `point=mode:arg[:attempts]` grammar (comma-separated
/// clauses). Unknown points, modes, and malformed numbers are errors; the
/// message names the offending clause so CLI users can fix their flag.
pub fn parse_spec(spec: &str) -> Result<Vec<FaultSpec>, String> {
    let mut out = Vec::new();
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (point, rest) = clause
            .split_once('=')
            .ok_or_else(|| format!("fault clause `{clause}`: expected point=mode:arg"))?;
        let point = point.trim();
        if !FAULT_POINTS.contains(&point) {
            return Err(format!(
                "fault clause `{clause}`: unknown point `{point}` (expected one of {})",
                FAULT_POINTS.join(", ")
            ));
        }
        let mut parts = rest.split(':');
        let mode = parts.next().unwrap_or("").trim();
        let arg = parts
            .next()
            .ok_or_else(|| format!("fault clause `{clause}`: missing `:arg` after mode"))?
            .trim();
        let n: u64 = arg
            .parse()
            .map_err(|_| format!("fault clause `{clause}`: bad number `{arg}`"))?;
        let schedule = match mode {
            "once" => FaultSchedule::Once(n),
            "every" => {
                if n == 0 {
                    return Err(format!("fault clause `{clause}`: every:k needs k >= 1"));
                }
                FaultSchedule::EveryK(n)
            }
            "after" => FaultSchedule::AfterN(n),
            other => {
                return Err(format!(
                    "fault clause `{clause}`: unknown mode `{other}` (expected once/every/after)"
                ))
            }
        };
        let max_attempts = match parts.next().map(str::trim) {
            None => 1,
            Some("inf") => u32::MAX,
            Some(a) => a
                .parse::<u32>()
                .map_err(|_| format!("fault clause `{clause}`: bad attempts `{a}`"))?,
        };
        if let Some(extra) = parts.next() {
            return Err(format!(
                "fault clause `{clause}`: trailing `:{extra}` not understood"
            ));
        }
        out.push(FaultSpec {
            point: point.to_string(),
            schedule,
            max_attempts,
        });
    }
    if out.is_empty() {
        return Err("fault spec is empty".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_never_fires() {
        let plane = FaultPlane::disabled();
        assert!(!plane.is_enabled());
        for point in FAULT_POINTS {
            for key in 0..64 {
                assert!(!plane.fires(point, key, 0));
            }
        }
        assert_eq!(plane.retry(FP_SAMPLE_DRAW, 7), (true, 0));
    }

    #[test]
    fn once_fires_on_exact_key_only() {
        let plane = FaultPlane::from_spec(1, "sample.draw=once:5").unwrap();
        for key in 0..32 {
            assert_eq!(plane.fires(FP_SAMPLE_DRAW, key, 0), key == 5);
        }
        // other points untouched
        assert!(!plane.fires(FP_ARCHIVE_READ, 5, 0));
    }

    #[test]
    fn after_fires_from_threshold_on() {
        let plane = FaultPlane::from_spec(1, "collect.worker=after:10").unwrap();
        for key in 0..32 {
            assert_eq!(plane.fires(FP_COLLECT_WORKER, key, 0), key >= 10);
        }
    }

    #[test]
    fn every_k_is_seed_stable_and_roughly_one_in_k() {
        let a = FaultPlane::from_spec(42, "archive.read=every:4").unwrap();
        let b = FaultPlane::from_spec(42, "archive.read=every:4").unwrap();
        let mut hits = 0;
        for key in 0..4000 {
            let fa = a.fires(FP_ARCHIVE_READ, key, 0);
            assert_eq!(fa, b.fires(FP_ARCHIVE_READ, key, 0), "key {key}");
            hits += fa as u32;
        }
        // expect ~1000; tolerate wide slack (hash, not stratified)
        assert!((700..1300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn every_k_decorrelates_across_points_and_seeds() {
        let plane = FaultPlane::from_spec(7, "sample.draw=every:3,archive.read=every:3").unwrap();
        let other_seed = FaultPlane::from_spec(8, "sample.draw=every:3").unwrap();
        let mut same_point = 0;
        let mut same_seed = 0;
        for key in 0..512 {
            let s = plane.fires(FP_SAMPLE_DRAW, key, 0);
            same_point += (s == plane.fires(FP_ARCHIVE_READ, key, 0)) as u32;
            same_seed += (s == other_seed.fires(FP_SAMPLE_DRAW, key, 0)) as u32;
        }
        // identical salts would agree on all 512 keys
        assert!(same_point < 512, "points share firing keys");
        assert!(same_seed < 512, "seeds share firing keys");
    }

    #[test]
    fn transient_fault_clears_on_first_retry() {
        let plane = FaultPlane::from_spec(3, "history.read=once:2").unwrap();
        assert!(plane.fires(FP_HISTORY_READ, 2, 0));
        assert!(!plane.fires(FP_HISTORY_READ, 2, 1));
        assert_eq!(plane.retry(FP_HISTORY_READ, 2), (true, 1));
        assert_eq!(plane.retry(FP_HISTORY_READ, 3), (true, 0));
    }

    #[test]
    fn persistent_fault_exhausts_retry() {
        let plane = FaultPlane::from_spec(3, "history.read=once:2:inf").unwrap();
        for attempt in 0..10 {
            assert!(plane.fires(FP_HISTORY_READ, 2, attempt));
        }
        assert_eq!(plane.retry(FP_HISTORY_READ, 2), (false, RETRY_LIMIT));
    }

    #[test]
    fn bounded_attempts_clear_exactly_when_specified() {
        let plane = FaultPlane::from_spec(3, "archive.read=once:4:2").unwrap();
        assert!(plane.fires(FP_ARCHIVE_READ, 4, 0));
        assert!(plane.fires(FP_ARCHIVE_READ, 4, 1));
        assert!(!plane.fires(FP_ARCHIVE_READ, 4, 2));
        assert_eq!(plane.retry(FP_ARCHIVE_READ, 4), (true, 2));
    }

    #[test]
    fn spec_parser_rejects_malformed_clauses() {
        for bad in [
            "",
            "sample.draw",
            "sample.draw=once",
            "sample.draw=sometimes:3",
            "sample.draw=once:x",
            "sample.draw=every:0",
            "sample.draw=once:1:maybe",
            "sample.draw=once:1:2:3",
            "nosuch.point=once:1",
        ] {
            assert!(parse_spec(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn spec_parser_accepts_full_grammar() {
        let specs =
            parse_spec("sample.draw=once:5, archive.write=every:3:inf,history.read=after:2:2")
                .unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].schedule, FaultSchedule::Once(5));
        assert_eq!(specs[0].max_attempts, 1);
        assert_eq!(specs[1].schedule, FaultSchedule::EveryK(3));
        assert_eq!(specs[1].max_attempts, u32::MAX);
        assert_eq!(specs[2].schedule, FaultSchedule::AfterN(2));
        assert_eq!(specs[2].max_attempts, 2);
    }

    #[test]
    fn fault_key_separates_statement_and_unit() {
        assert_ne!(fault_key(1, 0), fault_key(2, 0));
        assert_ne!(fault_key(1, 0), fault_key(1, 1));
        assert_eq!(fault_key(3, 7), 3 * 1024 + 7);
    }
}
