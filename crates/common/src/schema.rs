//! Table schemas.

use crate::error::{JitsError, Result};
use crate::ids::ColumnId;
use crate::value::DataType;

/// A column definition inside a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-insensitive lookups, stored lower-case).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl ColumnDef {
    /// Builds a column definition; names are normalized to lower-case.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into().to_ascii_lowercase(),
            dtype,
        }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(JitsError::AlreadyExists(format!(
                    "duplicate column name '{}'",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect())
            .expect("static schema must not contain duplicates")
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All column definitions, in ordinal order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Definition of the column at `id`.
    pub fn column(&self, id: ColumnId) -> Option<&ColumnDef> {
        self.columns.get(id.index())
    }

    /// Resolves a column name (case-insensitive) to its id.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        let lower = name.to_ascii_lowercase();
        self.columns
            .iter()
            .position(|c| c.name == lower)
            .map(|i| ColumnId(i as u32))
    }

    /// Resolves a column name or returns a binding error.
    pub fn require_column(&self, name: &str) -> Result<ColumnId> {
        self.column_id(name)
            .ok_or_else(|| JitsError::Binding(format!("unknown column '{name}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("make", DataType::Str),
            ("price", DataType::Float),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = demo();
        assert_eq!(s.column_id("MAKE"), Some(ColumnId(1)));
        assert_eq!(s.column_id("Price"), Some(ColumnId(2)));
        assert_eq!(s.column_id("missing"), None);
        assert!(s.require_column("missing").is_err());
    }

    #[test]
    fn duplicates_rejected() {
        let err = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("A", DataType::Str),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn column_access() {
        let s = demo();
        assert_eq!(s.len(), 3);
        assert_eq!(s.column(ColumnId(1)).unwrap().name, "make");
        assert_eq!(s.column(ColumnId(1)).unwrap().dtype, DataType::Str);
        assert!(s.column(ColumnId(9)).is_none());
    }
}
