//! Deterministic temp-file paths for tests and benches.
//!
//! Every test or bench that needs files on disk (WAL directories, flight
//! dumps, chaos artifacts) routes its paths through [`TestDir`]: one
//! deterministic subdirectory per test name under `target/testtmp/`, wiped
//! on creation and removed again by a drop guard. Deterministic names — not
//! `mktemp` randomness — mean a failing run always leaves its debris at the
//! same place for inspection, while per-name isolation keeps repeated-loop
//! CI jobs and concurrently running tests from colliding as long as each
//! caller picks a unique name (the convention is the test function's name).

use std::path::{Path, PathBuf};

/// A per-test scratch directory with a drop-guard cleanup.
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
    keep: bool,
}

/// The shared root for all test scratch directories: `target/testtmp/`
/// next to the workspace's build artifacts (honoring `CARGO_TARGET_DIR`).
fn testtmp_root() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        });
    target.join("testtmp")
}

impl TestDir {
    /// Creates (or wipes and recreates) `target/testtmp/<name>`. Non-path
    /// characters in `name` are replaced with `-`, so test names like
    /// `module::case` are valid inputs.
    pub fn new(name: &str) -> TestDir {
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        let path = testtmp_root().join(safe);
        // Start from a clean slate: a previous crashed run may have left
        // debris behind (that is the point of deterministic names).
        let _ = std::fs::remove_dir_all(&path);
        // test scaffolding: an unusable scratch directory must fail the
        // test loudly, not limp on
        // jits-lint: allow(panic-surface)
        std::fs::create_dir_all(&path).expect("create test scratch directory");
        TestDir { path, keep: false }
    }

    /// The scratch directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `rel` inside the scratch directory.
    pub fn file(&self, rel: &str) -> PathBuf {
        self.path.join(rel)
    }

    /// Disarms the drop-guard cleanup, leaving the directory on disk — used
    /// by failure paths that want the artifacts inspectable after the test
    /// process exits.
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_cleans_and_isolates() {
        let marker;
        {
            let dir = TestDir::new("common::testpath smoke/a");
            assert!(dir.path().is_dir());
            assert!(dir.path().ends_with("common--testpath-smoke-a"));
            marker = dir.file("marker.txt");
            std::fs::write(&marker, b"x").unwrap();
            // re-creating the same name wipes prior contents
            let again = TestDir::new("common::testpath smoke/a");
            assert!(!marker.exists());
            std::fs::write(again.file("other.txt"), b"y").unwrap();
        }
        assert!(!marker.parent().unwrap().exists(), "drop guard must clean");
    }

    #[test]
    fn keep_disarms_cleanup() {
        let path;
        {
            let mut dir = TestDir::new("common::testpath keep");
            dir.keep();
            path = dir.path().to_path_buf();
        }
        assert!(path.is_dir(), "kept directory must survive drop");
        let _ = std::fs::remove_dir_all(path);
    }
}
