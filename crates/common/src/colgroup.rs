//! Canonical column-group identity.
//!
//! A *column group* — a table plus a sorted set of its columns — is the unit
//! of statistics in the JITS paper: candidate predicate groups, StatHistory
//! entries, and QSS-archive histograms are all keyed by one. Keeping the
//! identity canonical (columns sorted, deduplicated) lets every layer agree
//! that the group for `make = 'Toyota' AND model = 'Camry'` is the same
//! regardless of predicate order.

use crate::ids::{ColumnId, TableId};
use std::fmt;

/// A table and a canonical (sorted, deduplicated) set of its columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColGroup {
    table: TableId,
    columns: Vec<ColumnId>,
}

impl ColGroup {
    /// Builds a canonical group from any column ordering.
    pub fn new(table: TableId, mut columns: Vec<ColumnId>) -> Self {
        columns.sort_unstable();
        columns.dedup();
        ColGroup { table, columns }
    }

    /// Single-column group.
    pub fn single(table: TableId, column: ColumnId) -> Self {
        ColGroup {
            table,
            columns: vec![column],
        }
    }

    /// The owning table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The sorted column set.
    pub fn columns(&self) -> &[ColumnId] {
        &self.columns
    }

    /// Number of columns in the group.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// True if `other` covers a subset of this group's columns
    /// (same table required).
    pub fn contains(&self, other: &ColGroup) -> bool {
        self.table == other.table
            && other
                .columns
                .iter()
                .all(|c| self.columns.binary_search(c).is_ok())
    }

    /// True if the two groups share no columns (same table required for a
    /// meaningful answer; different tables are trivially disjoint).
    pub fn is_disjoint(&self, other: &ColGroup) -> bool {
        self.table != other.table
            || other
                .columns
                .iter()
                .all(|c| self.columns.binary_search(c).is_err())
    }

    /// Columns of `self` not present in `other`.
    pub fn difference(&self, other: &ColGroup) -> Vec<ColumnId> {
        if self.table != other.table {
            return self.columns.clone();
        }
        self.columns
            .iter()
            .filter(|c| other.columns.binary_search(c).is_err())
            .copied()
            .collect()
    }
}

impl fmt::Display for ColGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.table)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(t: u32, cols: &[u32]) -> ColGroup {
        ColGroup::new(TableId(t), cols.iter().map(|c| ColumnId(*c)).collect())
    }

    #[test]
    fn canonicalization() {
        assert_eq!(g(1, &[3, 1, 2]), g(1, &[1, 2, 3]));
        assert_eq!(g(1, &[2, 2, 1]), g(1, &[1, 2]));
        assert_ne!(g(1, &[1]), g(2, &[1]));
    }

    #[test]
    fn containment() {
        assert!(g(1, &[1, 2, 3]).contains(&g(1, &[2])));
        assert!(g(1, &[1, 2, 3]).contains(&g(1, &[1, 3])));
        assert!(!g(1, &[1, 2]).contains(&g(1, &[3])));
        assert!(!g(1, &[1, 2]).contains(&g(2, &[1])));
        // every group contains itself and the empty group
        assert!(g(1, &[1, 2]).contains(&g(1, &[1, 2])));
        assert!(g(1, &[1, 2]).contains(&g(1, &[])));
    }

    #[test]
    fn disjointness_and_difference() {
        assert!(g(1, &[1, 2]).is_disjoint(&g(1, &[3, 4])));
        assert!(!g(1, &[1, 2]).is_disjoint(&g(1, &[2, 3])));
        assert!(g(1, &[1]).is_disjoint(&g(2, &[1])));
        assert_eq!(
            g(1, &[1, 2, 3]).difference(&g(1, &[2])),
            vec![ColumnId(1), ColumnId(3)]
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(g(1, &[2, 0]).to_string(), "T1(c0,c2)");
    }
}
