//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, JitsError>;

/// Errors surfaced by any layer of the engine.
///
/// A single enum keeps error plumbing simple across the crate graph; each
/// variant carries a human-readable message with enough context to diagnose
/// the failure without a backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitsError {
    /// SQL text failed to lex or parse.
    Parse(String),
    /// A name in a query did not resolve against the catalog.
    Binding(String),
    /// A value was used with an incompatible type.
    TypeMismatch(String),
    /// A table, column, or index was not found.
    NotFound(String),
    /// An object already exists (e.g. `CREATE TABLE` duplicate).
    AlreadyExists(String),
    /// The optimizer could not produce a plan.
    Plan(String),
    /// A runtime failure during execution.
    Execution(String),
    /// The durability plane failed: a write-ahead-log append or fsync did
    /// not complete, a checkpoint segment or log tail failed its CRC, or
    /// recovery found state it cannot replay. The in-memory engine may be
    /// ahead of durable state; only reopening from disk continues safely.
    Recovery(String),
    /// An invalid argument or internal invariant violation.
    Internal(String),
}

impl JitsError {
    /// Shorthand constructor for [`JitsError::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        JitsError::Internal(msg.into())
    }
}

impl fmt::Display for JitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitsError::Parse(m) => write!(f, "parse error: {m}"),
            JitsError::Binding(m) => write!(f, "binding error: {m}"),
            JitsError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            JitsError::NotFound(m) => write!(f, "not found: {m}"),
            JitsError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            JitsError::Plan(m) => write!(f, "planning error: {m}"),
            JitsError::Execution(m) => write!(f, "execution error: {m}"),
            JitsError::Recovery(m) => write!(f, "recovery error: {m}"),
            JitsError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for JitsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = JitsError::NotFound("table CAR".into());
        assert_eq!(e.to_string(), "not found: table CAR");
        let e = JitsError::internal("boom");
        assert_eq!(e.to_string(), "internal error: boom");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(JitsError::Parse("x".into()), JitsError::Parse("x".into()));
        assert_ne!(JitsError::Parse("x".into()), JitsError::Binding("x".into()));
    }
}
