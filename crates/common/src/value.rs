//! Typed runtime values.
//!
//! The engine supports three scalar types (64-bit integers, 64-bit floats and
//! strings) plus NULL. Histograms operate on a numeric axis, so every value
//! can be projected onto `f64` via [`Value::to_axis`]; strings use an
//! order-preserving prefix encoding (the "mapping function" the JITS paper
//! mentions for categorical data, enabling interpolation inside histogram
//! buckets).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{JitsError, Result};

/// The type of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (categorical / character data).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STRING"),
        }
    }
}

/// A runtime scalar value.
///
/// `Str` uses `Arc<str>` so cloning values during execution is cheap.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer literal or column value.
    Int(i64),
    /// Float literal or column value.
    Float(f64),
    /// String literal or column value.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if the value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, coercing Int to Float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value (no coercion from Float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Projects the value onto the histogram axis.
    ///
    /// * numbers map to themselves (ints exactly up to 2^53),
    /// * strings map through [`lex_code`], which preserves order on the
    ///   first eight bytes — sufficient for bucket placement and
    ///   interpolation over categorical domains,
    /// * NULL has no axis position.
    pub fn to_axis(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(s) => Some(lex_code(s)),
        }
    }

    /// Total-order comparison used by indexes and sort operators.
    ///
    /// NULL sorts first; cross-type numeric comparisons coerce to f64;
    /// comparing a number with a string is a type error surfaced as `None`
    /// by [`Value::try_cmp`] — this infallible variant orders by type tag
    /// instead so collections stay totally ordered.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        self.try_cmp(other).unwrap_or_else(|| {
            fn rank(v: &Value) -> u8 {
                match v {
                    Value::Null => 0,
                    Value::Int(_) | Value::Float(_) => 1,
                    Value::Str(_) => 2,
                }
            }
            rank(self).cmp(&rank(other))
        })
    }

    /// Comparison between compatible values; `None` when types are
    /// incomparable (number vs string).
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, _) => Some(Ordering::Less),
            (_, Value::Null) => Some(Ordering::Greater),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Equality respecting SQL semantics for the engine's predicate
    /// evaluation: NULL equals nothing (including NULL).
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.try_cmp(other) == Some(Ordering::Equal)
    }

    /// Coerces the value to `dtype`, used when loading literals into typed
    /// columns.
    pub fn coerce(self, dtype: DataType) -> Result<Value> {
        match (self, dtype) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Int(_), DataType::Int) => Ok(v),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (v @ Value::Float(_), DataType::Float) => Ok(v),
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 => Ok(Value::Int(f as i64)),
            (v @ Value::Str(_), DataType::Str) => Ok(v),
            (v, t) => Err(JitsError::TypeMismatch(format!("cannot coerce {v} to {t}"))),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.try_cmp(other) == Some(Ordering::Equal),
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Int and Float hash consistently with the numeric equality above:
        // integral floats hash as the integer they equal.
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 2f64.powi(62) {
                    1u8.hash(state);
                    (*f as i64).hash(state);
                } else {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Order-preserving numeric encoding of a string.
///
/// The first eight bytes are packed big-endian into a `u64` and converted to
/// `f64`. Ordering is preserved for strings that differ within their first
/// ~6–7 bytes (f64 has a 53-bit mantissa), which is ample for the categorical
/// domains histograms care about (makes, models, cities, countries).
pub fn lex_code(s: &str) -> f64 {
    let mut buf = [0u8; 8];
    let bytes = s.as_bytes();
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality_and_hash() {
        assert_eq!(Value::Int(5), Value::Float(5.0));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Float(5.0)));
        assert_ne!(Value::Int(5), Value::Float(5.5));
    }

    #[test]
    fn null_semantics() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Int(1).sql_eq(&Value::Null));
        assert_eq!(Value::Null, Value::Null); // engine-level (hashing) equality
        assert!(Value::Null.is_null());
    }

    #[test]
    fn try_cmp_rejects_mixed_string_number() {
        assert_eq!(Value::Int(1).try_cmp(&Value::str("a")), None);
        // but total order is still defined
        assert_eq!(Value::Int(1).cmp_total(&Value::str("a")), Ordering::Less);
    }

    #[test]
    fn coerce_rules() {
        assert_eq!(
            Value::Int(3).coerce(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.0).coerce(DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert!(Value::Float(3.5).coerce(DataType::Int).is_err());
        assert!(Value::str("x").coerce(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn axis_projection() {
        assert_eq!(Value::Int(10).to_axis(), Some(10.0));
        assert_eq!(Value::Null.to_axis(), None);
        assert!(Value::str("Toyota").to_axis().unwrap() > 0.0);
    }

    #[test]
    fn lex_code_orders_common_strings() {
        let names = ["Audi", "BMW", "Camry", "Corolla", "Honda", "Toyota"];
        for w in names.windows(2) {
            assert!(lex_code(w[0]) < lex_code(w[1]), "{} < {}", w[0], w[1]);
        }
    }

    proptest! {
        #[test]
        fn lex_code_preserves_order_on_short_strings(
            a in "[A-Za-z]{0,6}",
            b in "[A-Za-z]{0,6}",
        ) {
            // Within 6 ASCII bytes the 53-bit mantissa is exact, so the
            // encoding must agree with lexicographic order exactly.
            let (ca, cb) = (lex_code(&a), lex_code(&b));
            match a.cmp(&b) {
                Ordering::Less => prop_assert!(ca <= cb),
                Ordering::Greater => prop_assert!(ca >= cb),
                Ordering::Equal => prop_assert_eq!(ca, cb),
            }
        }

        #[test]
        fn cmp_total_is_antisymmetric(x in -1000i64..1000, y in -1000i64..1000) {
            let (a, b) = (Value::Int(x), Value::Int(y));
            prop_assert_eq!(a.cmp_total(&b), b.cmp_total(&a).reverse());
        }

        #[test]
        fn eq_implies_same_hash(x in -100i64..100) {
            let a = Value::Int(x);
            let b = Value::Float(x as f64);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }
}
