//! Identifier newtypes.
//!
//! Tables and columns are referred to by dense integer ids throughout the
//! engine; newtypes prevent accidentally mixing the two.

use std::fmt;

/// Identifies a base table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifies a column *within* a table (its ordinal position in the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl TableId {
    /// Ordinal as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ColumnId {
    /// Ordinal as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_and_display() {
        assert!(TableId(1) < TableId(2));
        assert!(ColumnId(0) < ColumnId(5));
        assert_eq!(TableId(3).to_string(), "T3");
        assert_eq!(ColumnId(7).to_string(), "c7");
        assert_eq!(TableId(3).index(), 3);
    }
}
