//! Value intervals — the normalized form of local predicates.
//!
//! Every local predicate the engine supports (`=`, `<`, `<=`, `>`, `>=`,
//! `BETWEEN`) normalizes to a per-column [`Interval`]. Intervals are what
//! sampling evaluates against rows and what histograms convert to numeric
//! regions, so the whole statistics pipeline speaks one language.

use crate::value::Value;
use std::fmt;

/// One end of an interval.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// Unbounded on this side.
    Unbounded,
    /// Bounded, including the endpoint.
    Inclusive(Value),
    /// Bounded, excluding the endpoint.
    Exclusive(Value),
}

impl Bound {
    /// The endpoint value, if bounded.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Bound::Unbounded => None,
            Bound::Inclusive(v) | Bound::Exclusive(v) => Some(v),
        }
    }
}

/// A one-dimensional constraint `low <=/< x <=/< high`.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub low: Bound,
    /// Upper bound.
    pub high: Bound,
}

impl Interval {
    /// The unconstrained interval `(-inf, +inf)`.
    pub fn unbounded() -> Self {
        Interval {
            low: Bound::Unbounded,
            high: Bound::Unbounded,
        }
    }

    /// The point interval `x = v`.
    pub fn point(v: Value) -> Self {
        Interval {
            low: Bound::Inclusive(v.clone()),
            high: Bound::Inclusive(v),
        }
    }

    /// `x >= v` (inclusive) or `x > v`.
    pub fn at_least(v: Value, inclusive: bool) -> Self {
        Interval {
            low: if inclusive {
                Bound::Inclusive(v)
            } else {
                Bound::Exclusive(v)
            },
            high: Bound::Unbounded,
        }
    }

    /// `x <= v` (inclusive) or `x < v`.
    pub fn at_most(v: Value, inclusive: bool) -> Self {
        Interval {
            low: Bound::Unbounded,
            high: if inclusive {
                Bound::Inclusive(v)
            } else {
                Bound::Exclusive(v)
            },
        }
    }

    /// `low <= x <= high` (SQL BETWEEN).
    pub fn between(low: Value, high: Value) -> Self {
        Interval {
            low: Bound::Inclusive(low),
            high: Bound::Inclusive(high),
        }
    }

    /// True if this is a single-point (equality) interval.
    pub fn is_point(&self) -> bool {
        match (&self.low, &self.high) {
            (Bound::Inclusive(a), Bound::Inclusive(b)) => a == b,
            _ => false,
        }
    }

    /// Whether `v` satisfies the constraint. NULL never matches.
    pub fn contains(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        let low_ok = match &self.low {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => matches!(
                v.try_cmp(b),
                Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
            ),
            Bound::Exclusive(b) => matches!(v.try_cmp(b), Some(std::cmp::Ordering::Greater)),
        };
        if !low_ok {
            return false;
        }
        match &self.high {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => matches!(
                v.try_cmp(b),
                Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
            ),
            Bound::Exclusive(b) => matches!(v.try_cmp(b), Some(std::cmp::Ordering::Less)),
        }
    }

    /// Intersects with another interval on the same column (conjunction of
    /// two predicates); returns the tighter combined interval.
    pub fn intersect(&self, other: &Interval) -> Interval {
        fn tighter_low(a: &Bound, b: &Bound) -> Bound {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
                _ => {
                    let (va, vb) = (a.value().unwrap(), b.value().unwrap());
                    match va.try_cmp(vb) {
                        Some(std::cmp::Ordering::Greater) => a.clone(),
                        Some(std::cmp::Ordering::Less) => b.clone(),
                        _ => {
                            // equal endpoints: exclusive wins (tighter)
                            if matches!(a, Bound::Exclusive(_)) {
                                a.clone()
                            } else {
                                b.clone()
                            }
                        }
                    }
                }
            }
        }
        fn tighter_high(a: &Bound, b: &Bound) -> Bound {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
                _ => {
                    let (va, vb) = (a.value().unwrap(), b.value().unwrap());
                    match va.try_cmp(vb) {
                        Some(std::cmp::Ordering::Less) => a.clone(),
                        Some(std::cmp::Ordering::Greater) => b.clone(),
                        _ => {
                            if matches!(a, Bound::Exclusive(_)) {
                                a.clone()
                            } else {
                                b.clone()
                            }
                        }
                    }
                }
            }
        }
        Interval {
            low: tighter_low(&self.low, &other.low),
            high: tighter_high(&self.high, &other.high),
        }
    }

    /// Converts the interval to a half-open numeric range on the histogram
    /// axis. Point and inclusive bounds are widened by `eps` so the range
    /// has positive measure; the histogram layer treats `[lo, hi)` buckets.
    pub fn to_axis_range(&self, eps: f64) -> (f64, f64) {
        let lo = match &self.low {
            Bound::Unbounded => f64::NEG_INFINITY,
            Bound::Inclusive(v) => v.to_axis().unwrap_or(f64::NEG_INFINITY),
            Bound::Exclusive(v) => v.to_axis().unwrap_or(f64::NEG_INFINITY) + eps,
        };
        let hi = match &self.high {
            Bound::Unbounded => f64::INFINITY,
            Bound::Inclusive(v) => v.to_axis().unwrap_or(f64::INFINITY) + eps,
            Bound::Exclusive(v) => v.to_axis().unwrap_or(f64::INFINITY),
        };
        (lo, hi)
    }

    /// Type-aware variant of [`Interval::to_axis_range`]: the widening
    /// epsilon is chosen per bound so the half-open range has positive width
    /// at the bound's magnitude.
    ///
    /// * `Int` — 1 (so `x <= 5` covers exactly the integers up to 5),
    /// * `Str` — a few ulps of the lexicographic code (string codes are
    ///   huge, so a constant epsilon would vanish in rounding),
    /// * `Float` — a relative sliver.
    pub fn to_axis_range_typed(&self, dtype: crate::value::DataType) -> (f64, f64) {
        let eps_at = |x: f64| axis_eps(dtype, x);
        let lo = match &self.low {
            Bound::Unbounded => f64::NEG_INFINITY,
            Bound::Inclusive(v) => v.to_axis().unwrap_or(f64::NEG_INFINITY),
            Bound::Exclusive(v) => {
                let x = v.to_axis().unwrap_or(f64::NEG_INFINITY);
                x + eps_at(x)
            }
        };
        let hi = match &self.high {
            Bound::Unbounded => f64::INFINITY,
            Bound::Inclusive(v) => {
                let x = v.to_axis().unwrap_or(f64::INFINITY);
                x + eps_at(x)
            }
            Bound::Exclusive(v) => v.to_axis().unwrap_or(f64::INFINITY),
        };
        (lo, hi)
    }
}

/// The axis-widening epsilon for a value of type `dtype` at magnitude `at`.
pub fn axis_eps(dtype: crate::value::DataType, at: f64) -> f64 {
    match dtype {
        crate::value::DataType::Int => 1.0,
        // String codes sit near 2^60; widen by a handful of ulps so the
        // range survives f64 rounding without swallowing neighbors that
        // differ within their first ~6 bytes.
        crate::value::DataType::Str => (at.abs() * f64::EPSILON * 4.0).max(1.0),
        crate::value::DataType::Float => (at.abs() * 1e-9).max(1e-12),
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.low {
            Bound::Unbounded => write!(f, "(-inf")?,
            Bound::Inclusive(v) => write!(f, "[{v}")?,
            Bound::Exclusive(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.high {
            Bound::Unbounded => write!(f, "+inf)"),
            Bound::Inclusive(v) => write!(f, "{v}]"),
            Bound::Exclusive(v) => write!(f, "{v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_contains_only_itself() {
        let i = Interval::point(Value::Int(5));
        assert!(i.is_point());
        assert!(i.contains(&Value::Int(5)));
        assert!(!i.contains(&Value::Int(6)));
        assert!(!i.contains(&Value::Null));
    }

    #[test]
    fn open_and_closed_bounds() {
        let gt = Interval::at_least(Value::Int(10), false);
        assert!(!gt.contains(&Value::Int(10)));
        assert!(gt.contains(&Value::Int(11)));
        let ge = Interval::at_least(Value::Int(10), true);
        assert!(ge.contains(&Value::Int(10)));
        let lt = Interval::at_most(Value::Int(10), false);
        assert!(lt.contains(&Value::Int(9)));
        assert!(!lt.contains(&Value::Int(10)));
    }

    #[test]
    fn between_is_inclusive() {
        let b = Interval::between(Value::Int(1), Value::Int(3));
        assert!(b.contains(&Value::Int(1)));
        assert!(b.contains(&Value::Int(3)));
        assert!(!b.contains(&Value::Int(0)));
        assert!(!b.contains(&Value::Int(4)));
    }

    #[test]
    fn string_intervals() {
        let i = Interval::point(Value::str("Toyota"));
        assert!(i.contains(&Value::str("Toyota")));
        assert!(!i.contains(&Value::str("Honda")));
    }

    #[test]
    fn intersection_tightens() {
        let a = Interval::at_least(Value::Int(5), true);
        let b = Interval::at_most(Value::Int(10), true);
        let c = a.intersect(&b);
        assert!(c.contains(&Value::Int(5)));
        assert!(c.contains(&Value::Int(10)));
        assert!(!c.contains(&Value::Int(4)));
        assert!(!c.contains(&Value::Int(11)));

        // overlapping lows: tighter one wins
        let d = Interval::at_least(Value::Int(7), false).intersect(&a);
        assert!(!d.contains(&Value::Int(7)));
        assert!(d.contains(&Value::Int(8)));
    }

    #[test]
    fn axis_range_orients_correctly() {
        let (lo, hi) = Interval::between(Value::Int(2), Value::Int(4)).to_axis_range(0.5);
        assert_eq!(lo, 2.0);
        assert_eq!(hi, 4.5);
        let (lo, hi) = Interval::at_least(Value::Int(3), false).to_axis_range(0.5);
        assert_eq!(lo, 3.5);
        assert_eq!(hi, f64::INFINITY);
    }

    proptest! {
        #[test]
        fn intersect_agrees_with_conjunction(
            a in -50i64..50, b in -50i64..50, x in -60i64..60
        ) {
            let i1 = Interval::at_least(Value::Int(a), true);
            let i2 = Interval::at_most(Value::Int(b), true);
            let both = i1.intersect(&i2);
            let v = Value::Int(x);
            prop_assert_eq!(
                both.contains(&v),
                i1.contains(&v) && i2.contains(&v)
            );
        }

        #[test]
        fn intersect_is_commutative(
            a in -50i64..50, b in -50i64..50, x in -60i64..60
        ) {
            let i1 = Interval::between(Value::Int(a.min(b)), Value::Int(a.max(b)));
            let i2 = Interval::at_least(Value::Int(b), false);
            let v = Value::Int(x);
            prop_assert_eq!(
                i1.intersect(&i2).contains(&v),
                i2.intersect(&i1).contains(&v)
            );
        }
    }
}

#[cfg(test)]
mod typed_axis_tests {
    use super::*;
    use crate::value::{DataType, Value};

    #[test]
    fn integer_bounds_widen_by_one() {
        let iv = Interval::at_most(Value::Int(5), true);
        let (lo, hi) = iv.to_axis_range_typed(DataType::Int);
        assert_eq!(lo, f64::NEG_INFINITY);
        assert_eq!(hi, 6.0, "x <= 5 covers the integers up to 5");
        let iv = Interval::at_least(Value::Int(5), false);
        let (lo, _) = iv.to_axis_range_typed(DataType::Int);
        assert_eq!(lo, 6.0, "x > 5 starts at 6 for integers");
    }

    #[test]
    fn string_point_has_positive_width() {
        let iv = Interval::point(Value::str("Toyota"));
        let (lo, hi) = iv.to_axis_range_typed(DataType::Str);
        assert!(hi > lo, "string point must survive f64 rounding");
        // and the width is small relative to typical inter-string gaps
        let other = Value::str("Toyotb").to_axis().unwrap();
        assert!(hi < other, "epsilon must not swallow a neighbor");
    }

    #[test]
    fn float_point_has_positive_width() {
        let iv = Interval::point(Value::Float(1234.5));
        let (lo, hi) = iv.to_axis_range_typed(DataType::Float);
        assert!(hi > lo);
        assert!(hi - lo < 0.001);
    }

    #[test]
    fn axis_eps_scales_with_magnitude() {
        assert_eq!(axis_eps(DataType::Int, 1e18), 1.0);
        assert!(axis_eps(DataType::Str, 6e18) >= 1.0);
        // at string-code magnitudes the epsilon must exceed one ulp
        let at = 6e18f64;
        let ulp = at.to_bits();
        let next = f64::from_bits(ulp + 1) - at;
        assert!(axis_eps(DataType::Str, at) > next);
    }
}
