//! Dependency-free deterministic RNG.
//!
//! SplitMix64 (Steele, Lea & Flood 2014): tiny state, full 64-bit period per
//! stream, excellent statistical quality for the engine's needs (sampling,
//! synthetic data generation, test shuffling). Being dependency-free keeps
//! `jits-common` at the bottom of the crate graph; crates that need the
//! richer `rand` distributions layer it on top of seeds drawn from here.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams on
    /// every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The generator's current internal state, for checkpointing. Feeding
    /// it back through [`SplitMix64::from_state`] resumes the stream at
    /// exactly the next output.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at a checkpointed [`SplitMix64::state`].
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize index in `[0, len)`. `len` must be non-zero.
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_bounded(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child stream (for giving each table/worker its
    /// own generator without correlated sequences).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Reservoir-samples `k` items from an iterator of unknown length,
    /// uniformly without replacement.
    pub fn reservoir_sample<T, I: IntoIterator<Item = T>>(&mut self, iter: I, k: usize) -> Vec<T> {
        let mut out: Vec<T> = Vec::with_capacity(k);
        if k == 0 {
            return out;
        }
        for (seen, item) in iter.into_iter().enumerate() {
            if out.len() < k {
                out.push(item);
            } else {
                let j = self.next_bounded((seen + 1) as u64) as usize;
                if j < k {
                    out[j] = item;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = SplitMix64::new(9);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_bounded(10) as usize] += 1;
        }
        for &c in &counts {
            // each bin expects 10_000; allow 5% deviation
            assert!((9_500..10_500).contains(&c), "bin count {c}");
        }
    }

    #[test]
    fn reservoir_sample_size_and_membership() {
        let mut r = SplitMix64::new(3);
        let s = r.reservoir_sample(0..1000, 50);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|&x| x < 1000));
        // sampling more than available returns everything
        let s = r.reservoir_sample(0..10, 50);
        assert_eq!(s.len(), 10);
        let s: Vec<i32> = r.reservoir_sample(0..10, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn reservoir_sample_is_unbiased() {
        // item 0 of 0..100 should appear in a k=10 sample ~10% of the time
        let mut hits = 0;
        for seed in 0..2000u64 {
            let mut r = SplitMix64::new(seed);
            if r.reservoir_sample(0..100, 10).contains(&0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / 2000.0;
        assert!((0.07..0.13).contains(&rate), "rate {rate}");
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should permute");
    }

    proptest! {
        #[test]
        fn bounded_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut r = SplitMix64::new(seed);
            for _ in 0..20 {
                prop_assert!(r.next_bounded(bound) < bound);
            }
        }
    }
}
