//! Axis-aligned N-dimensional regions on the histogram axis.
//!
//! A region is the numeric form of a predicate group: one half-open range
//! `[lo, hi)` per dimension (unconstrained dimensions use infinite bounds).
//! Regions are what max-entropy constraints and selectivity queries are
//! expressed in.

use std::fmt;

/// An axis-aligned box, one `[lo, hi)` range per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    ranges: Vec<(f64, f64)>,
}

impl Region {
    /// Builds a region from per-dimension half-open ranges.
    ///
    /// Empty-or-inverted ranges are normalized to zero-width at `lo`.
    pub fn new(ranges: Vec<(f64, f64)>) -> Self {
        let ranges = ranges
            .into_iter()
            .map(|(lo, hi)| if hi < lo { (lo, lo) } else { (lo, hi) })
            .collect();
        Region { ranges }
    }

    /// The fully unbounded region of `dims` dimensions.
    pub fn unbounded(dims: usize) -> Self {
        Region {
            ranges: vec![(f64::NEG_INFINITY, f64::INFINITY); dims],
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.ranges.len()
    }

    /// Per-dimension ranges.
    pub fn ranges(&self) -> &[(f64, f64)] {
        &self.ranges
    }

    /// The range along dimension `d`.
    pub fn range(&self, d: usize) -> (f64, f64) {
        self.ranges[d]
    }

    /// True if any dimension has zero width.
    pub fn is_empty(&self) -> bool {
        self.ranges.iter().any(|(lo, hi)| hi <= lo)
    }

    /// True if the point lies inside (half-open semantics).
    pub fn contains(&self, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dims());
        self.ranges
            .iter()
            .zip(point)
            .all(|((lo, hi), x)| x >= lo && x < hi)
    }

    /// Intersection with another region of equal dimensionality.
    pub fn intersect(&self, other: &Region) -> Region {
        debug_assert_eq!(self.dims(), other.dims());
        Region::new(
            self.ranges
                .iter()
                .zip(&other.ranges)
                .map(|((alo, ahi), (blo, bhi))| (alo.max(*blo), ahi.min(*bhi)))
                .collect(),
        )
    }

    /// Clamps infinite bounds to a finite frame (same dimensionality).
    pub fn clamp_to(&self, frame: &Region) -> Region {
        self.intersect(frame)
    }

    /// Volume of the region; meaningful only after clamping to a finite
    /// frame. Zero-width dimensions yield zero volume.
    pub fn volume(&self) -> f64 {
        self.ranges
            .iter()
            .map(|(lo, hi)| (hi - lo).max(0.0))
            .product()
    }

    /// Fraction of this region's volume that overlaps `other`
    /// (0 when this region has zero volume).
    pub fn overlap_fraction(&self, other: &Region) -> f64 {
        let v = self.volume();
        if v <= 0.0 || !v.is_finite() {
            return 0.0;
        }
        self.intersect(other).volume() / v
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (lo, hi)) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, " x ")?;
            }
            write!(f, "[{lo}, {hi})")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contains_half_open() {
        let r = Region::new(vec![(0.0, 10.0), (5.0, 6.0)]);
        assert!(r.contains(&[0.0, 5.0]));
        assert!(!r.contains(&[10.0, 5.0]));
        assert!(!r.contains(&[5.0, 6.0]));
    }

    #[test]
    fn inverted_ranges_normalize_empty() {
        let r = Region::new(vec![(5.0, 2.0)]);
        assert!(r.is_empty());
        assert_eq!(r.volume(), 0.0);
    }

    #[test]
    fn intersection_and_volume() {
        let a = Region::new(vec![(0.0, 10.0), (0.0, 10.0)]);
        let b = Region::new(vec![(5.0, 15.0), (-5.0, 5.0)]);
        let i = a.intersect(&b);
        assert_eq!(i.ranges(), &[(5.0, 10.0), (0.0, 5.0)]);
        assert_eq!(i.volume(), 25.0);
        assert_eq!(a.overlap_fraction(&b), 0.25);
    }

    #[test]
    fn clamp_infinite_bounds() {
        let frame = Region::new(vec![(0.0, 100.0)]);
        let r = Region::new(vec![(20.0, f64::INFINITY)]).clamp_to(&frame);
        assert_eq!(r.ranges(), &[(20.0, 100.0)]);
        let u = Region::unbounded(1).clamp_to(&frame);
        assert_eq!(u.ranges(), frame.ranges());
    }

    proptest! {
        #[test]
        fn intersect_commutes(
            a in (-100.0f64..100.0, -100.0f64..100.0),
            b in (-100.0f64..100.0, -100.0f64..100.0),
        ) {
            let r1 = Region::new(vec![(a.0.min(a.1), a.0.max(a.1))]);
            let r2 = Region::new(vec![(b.0.min(b.1), b.0.max(b.1))]);
            prop_assert_eq!(r1.intersect(&r2), r2.intersect(&r1));
        }

        #[test]
        fn intersection_volume_bounded(
            a in (-100.0f64..100.0, -100.0f64..100.0),
            b in (-100.0f64..100.0, -100.0f64..100.0),
        ) {
            let r1 = Region::new(vec![(a.0.min(a.1), a.0.max(a.1))]);
            let r2 = Region::new(vec![(b.0.min(b.1), b.0.max(b.1))]);
            let v = r1.intersect(&r2).volume();
            prop_assert!(v <= r1.volume() + 1e-9);
            prop_assert!(v <= r2.volume() + 1e-9);
            prop_assert!(v >= 0.0);
        }
    }
}
